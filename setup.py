"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on environments whose setuptools/pip
combination lacks PEP 660 editable-install support (no ``wheel`` package
available offline).
"""

from setuptools import setup

setup()
