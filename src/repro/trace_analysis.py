"""``repro trace``: critical-path analysis over recorded span trees.

The span layer (:mod:`repro.telemetry.spans`) records *what happened*;
this module answers *why it took that long*.  Input is one or more span
JSONL files — the daemon's ``serve --spans-out``, the workers'
``worker --spans-out``, or a traced CLI run — merged into one set (span
ids are globally unique, so merging is concatenation).  Lines that are
not span records (e.g. interleaved :class:`~repro.telemetry.tracing.
RoundTracer` events sharing a file) are skipped, not errors.

The report, per trace (one trace = one root span = one logical request):

* **tree summary** — span count, depth, orphan count (an orphan is a span
  whose parent id is not in the merged set: a missing file, or a worker
  killed before its spans flushed).  CI greps this line to assert the
  fabric smoke run produced one *connected* tree.
* **critical path** — the chain root → (child with the latest end time)
  → … → leaf.  Its span names how the wall-clock was actually spent;
  parallel work off this path did not determine the finish time.
* **per-shard timeline** — an ASCII Gantt chart of lease/compute spans,
  which makes a requeued shard (expired lease, then a second attempt)
  visible as two bars on one row.
* **lease churn** — attempts per shard, expired leases, and the
  requeue links tying a replacement lease to the lease it replaced.
* **time split** — queueing vs compute vs commit totals, the
  queue-depth-or-store question answered in one stanza.
* **slowest points** — the top-N ``sweep.point`` spans by duration.

Everything here is read-only analysis of already-recorded floats — no
clocks, no RNG — so this module stays on the deterministic-lint path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, TextIO

from .errors import TelemetryError
from .telemetry.spans import SPAN_KIND, Span

__all__ = ["TraceForest", "load_spans", "render_report"]


def load_spans(paths: Iterable[str | os.PathLike[str]]) -> list[Span]:
    """Read and merge span records from JSONL files.

    Non-span lines (round-trace events, blank lines) are skipped; a file
    that yields *no* spans at all is reported, since silently analysing
    the wrong file is worse than an error.
    """
    spans: list[Span] = []
    for path in paths:
        path = os.fspath(path)
        found = 0
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as error:
                    raise TelemetryError(
                        f"{path}:{lineno}: not JSON: {error}") from None
                if not isinstance(payload, dict) \
                        or payload.get("kind") != SPAN_KIND:
                    continue
                spans.append(Span.from_dict(payload))
                found += 1
        if found == 0:
            raise TelemetryError(
                f"{path} holds no span records (is it a --spans-out "
                "file? round-trace files alone have nothing to analyse)")
    return spans


@dataclass
class TraceForest:
    """The reconstructed span trees of a merged span set."""

    spans: list[Span]
    by_id: dict[str, Span] = field(default_factory=dict)
    children: dict[str, list[Span]] = field(default_factory=dict)
    #: Root spans (no parent id), oldest first.
    roots: list[Span] = field(default_factory=list)
    #: Spans whose parent id is missing from the set — a disconnected
    #: tree, usually a span file that was not merged in.
    orphans: list[Span] = field(default_factory=list)

    @classmethod
    def build(cls, spans: list[Span]) -> "TraceForest":
        forest = cls(spans=sorted(spans, key=lambda span: span.start))
        for span in forest.spans:
            forest.by_id[span.span_id] = span
        for span in forest.spans:
            if span.parent_id is None:
                forest.roots.append(span)
            elif span.parent_id in forest.by_id:
                forest.children.setdefault(span.parent_id, []).append(span)
            else:
                forest.orphans.append(span)
        return forest

    # ------------------------------------------------------------ queries
    def named(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def depth(self, span: Span) -> int:
        deepest = 0
        for child in self.children.get(span.span_id, ()):
            deepest = max(deepest, self.depth(child))
        return deepest + 1

    def subtree_size(self, span: Span) -> int:
        return 1 + sum(self.subtree_size(child)
                       for child in self.children.get(span.span_id, ()))

    def subtree_end(self, span: Span) -> float:
        """Latest end time anywhere under ``span`` (itself included).

        Children may outlive their parents here — a submit span ends when
        the HTTP response goes out, but the job it created keeps running —
        so a trace's true makespan is the subtree maximum, not the root's
        own end.
        """
        latest = span.end if span.end is not None else span.start
        for child in self.children.get(span.span_id, ()):
            latest = max(latest, self.subtree_end(child))
        return latest

    def makespan(self, root: Span) -> float:
        """Wall-clock seconds from the root's start to the last span end
        anywhere in its tree — what the critical path must account for."""
        return max(0.0, self.subtree_end(root) - root.start)

    def critical_path(self, root: Span) -> list[Span]:
        """Root → … chain through the latest-*finishing* subtrees.

        At each node, descend into the child whose subtree holds the
        latest end time: that chain is what gated the trace's finish —
        work that ended earlier overlapped it and could not have delayed
        it.  The chain's last span ends at :meth:`subtree_end` of the
        root, so the path accounts for the full makespan.
        """
        path = [root]
        node = root
        while True:
            candidates = self.children.get(node.span_id, ())
            if not candidates:
                return path
            node = max(candidates, key=self.subtree_end)
            path.append(node)

    def time_split(self, root: Span) -> dict[str, float]:
        """Queue / compute / commit second totals under one root.

        * ``queue`` — gaps between a job's submission and its execution
          start (local pool wait) plus, for remote jobs, each lease
          span's start minus the job span's start for *first* attempts —
          the time a shard sat pending on the board.
        * ``compute`` — summed ``sweep.point`` durations (the actual
          dynamics; cached points contribute their lookup time).
        * ``commit`` — summed ``store.commit`` durations.

        Totals are summed across parallel workers, so they can exceed the
        root's wall clock — they answer "where did the *work* go", while
        the critical path answers "where did the *wall clock* go".
        """
        split = {"queue": 0.0, "compute": 0.0, "commit": 0.0}

        def walk(span: Span) -> None:
            if span.name == "sweep.point":
                split["compute"] += span.duration
            elif span.name == "store.commit":
                split["commit"] += span.duration
            elif span.name == "job.execute":
                submit = (self.by_id.get(span.parent_id)
                          if span.parent_id else None)
                if submit is not None and submit.name == "job.submit":
                    split["queue"] += max(0.0, span.start - submit.start)
            elif span.name == "shard.lease":
                parent = (self.by_id.get(span.parent_id)
                          if span.parent_id else None)
                if parent is not None and span.attrs.get("attempt") == 1:
                    split["queue"] += max(0.0, span.start - parent.start)
            for child in self.children.get(span.span_id, ()):
                walk(child)

        walk(root)
        return split

    def lease_churn(self) -> dict[str, Any]:
        """Lease accounting: attempts per shard, expiries, requeue links."""
        leases = self.named("shard.lease")
        by_shard: dict[str, list[Span]] = {}
        for lease in leases:
            by_shard.setdefault(
                str(lease.attrs.get("shard_id")), []).append(lease)
        expired = [lease for lease in leases if lease.status == "expired"]
        linked = [lease for lease in leases
                  if any(link.get("reason") == "requeued"
                         for link in lease.links)]
        # A requeue link is *resolved* when the lease it points to is in
        # the merged set — the replacement is attributable to its kill.
        resolved = [lease for lease in linked
                    if any(link.get("span_id") in self.by_id
                           for link in lease.links
                           if link.get("reason") == "requeued")]
        return {
            "shards": len(by_shard),
            "leases": len(leases),
            "expired": len(expired),
            "requeued_linked": len(linked),
            "requeued_resolved": len(resolved),
            "retried_shards": {shard_id: len(attempts)
                               for shard_id, attempts in by_shard.items()
                               if len(attempts) > 1},
        }


# ---------------------------------------------------------------- report


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1000.0:7.2f}ms"


def _span_label(span: Span) -> str:
    extra = ""
    for key in ("route", "job_id", "shard_id", "point_key", "worker"):
        value = span.attrs.get(key)
        if value is not None:
            extra = f" {key}={value}"
            break
    status = "" if span.status == "ok" else f" [{span.status}]"
    return f"{span.name}{extra}{status}"


def _shard_label(forest: TraceForest, span: Span) -> str:
    """The ``shard_id`` of a span, inherited from ancestors if needed
    (a worker-side ``sweep.shard`` carries no shard attr of its own)."""
    node: Span | None = span
    while node is not None:
        value = node.attrs.get("shard_id")
        if value is not None:
            return str(value)
        node = (forest.by_id.get(node.parent_id)
                if node.parent_id else None)
    return span.name


def _timeline(forest: TraceForest, root: Span, *, width: int,
              out: TextIO) -> None:
    """ASCII Gantt of the lease/compute bars under one root."""
    bars = [span for span in forest.spans
            if span.trace_id == root.trace_id and span.end is not None
            and span.name in ("shard.lease", "worker.shard", "sweep.shard")]
    if not bars:
        return
    t0 = min(span.start for span in bars)
    t1 = max(span.end for span in bars)
    scale = (t1 - t0) or 1e-9
    out.write("  per-shard timeline "
              f"(span {_fmt_seconds(scale).strip()} wall):\n")
    for span in sorted(bars, key=lambda span: (
            _shard_label(forest, span), span.start)):
        left = int((span.start - t0) / scale * width)
        length = max(1, int(span.duration / scale * width))
        bar = " " * min(left, width - 1) + "#" * min(length, width - left)
        out.write(f"    {_shard_label(forest, span):<16s} "
                  f"|{bar:<{width}s}| {_fmt_seconds(span.duration)} "
                  f"{_span_label(span)}\n")


def render_report(forest: TraceForest, *, top: int = 5, width: int = 48,
                  all_traces: bool = False, out: TextIO) -> None:
    """Write the full ``repro trace`` text report to ``out``.

    Traces of one or two spans (idle lease polls, health checks) are
    tallied but not expanded unless ``all_traces`` — the report is about
    the sweeps, not the chatter around them.
    """
    out.write(f"spans: {len(forest.spans)}  traces: {len(forest.roots)}  "
              f"orphans: {len(forest.orphans)}\n")
    if forest.orphans:
        out.write("  disconnected parents (merge the missing span file?):\n")
        for span in forest.orphans[:top]:
            out.write(f"    {span.span_id} {_span_label(span)} "
                      f"-> missing parent {span.parent_id}\n")
    connected = "yes" if not forest.orphans and forest.roots else "no"
    out.write(f"connected tree: {connected}\n")

    roots = sorted(forest.roots, key=forest.subtree_size, reverse=True)
    if not all_traces:
        trivial = [root for root in roots if forest.subtree_size(root) <= 2]
        roots = [root for root in roots if forest.subtree_size(root) > 2]
        if trivial:
            out.write(f"({len(trivial)} short traces of <=2 spans folded "
                      "away; --all expands them)\n")

    for root in roots:
        wall = forest.makespan(root)
        out.write(f"\ntrace {root.trace_id} — {_span_label(root)}\n")
        out.write(f"  spans: {forest.subtree_size(root)}  "
                  f"depth: {forest.depth(root)}  "
                  f"wall: {_fmt_seconds(wall).strip()}\n")

        path = forest.critical_path(root)
        out.write(f"  critical path ({len(path)} spans, "
                  f"{_fmt_seconds(wall).strip()} total):\n")
        for step, span in enumerate(path):
            out.write(f"    {'  ' * step}{_fmt_seconds(span.duration)} "
                      f"{_span_label(span)}\n")

        split = forest.time_split(root)
        busy = sum(split.values()) or 1e-9
        out.write("  time split (summed across workers):\n")
        for bucket in ("queue", "compute", "commit"):
            share = split[bucket] / busy * 100.0
            out.write(f"    {bucket:<8s} {_fmt_seconds(split[bucket])} "
                      f"({share:5.1f}%)\n")

        _timeline(forest, root, width=width, out=out)

        points = sorted(
            (span for span in forest.spans
             if span.trace_id == root.trace_id
             and span.name == "sweep.point" and span.end is not None),
            key=lambda span: span.duration, reverse=True)
        if points:
            out.write(f"  slowest points (top {min(top, len(points))} "
                      f"of {len(points)}):\n")
            for span in points[:top]:
                out.write(f"    {_fmt_seconds(span.duration)} "
                          f"{span.attrs.get('point_key', '?')} "
                          f"[{span.status}]\n")

    churn = forest.lease_churn()
    if churn["leases"]:
        out.write(f"\nlease churn: {churn['leases']} leases over "
                  f"{churn['shards']} shards  expired: {churn['expired']}  "
                  f"requeued leases linked: {churn['requeued_linked']} "
                  f"(resolved: {churn['requeued_resolved']})\n")
        for shard_id, attempts in sorted(churn["retried_shards"].items()):
            out.write(f"  {shard_id}: {attempts} attempts\n")


def run_trace_analysis(paths: list[str], *, top: int = 5, width: int = 48,
                       all_traces: bool = False, out: TextIO) -> int:
    """CLI entry: load, reconstruct, report.  Returns the exit code."""
    forest = TraceForest.build(load_spans(paths))
    render_report(forest, top=top, width=width, all_traces=all_traces,
                  out=out)
    return 0 if not forest.orphans else 1
