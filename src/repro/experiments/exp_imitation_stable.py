"""E1 — Convergence to imitation-stable states (Theorem 4, Corollary 3).

The paper proves that the IMITATION PROTOCOL makes the Rosenthal potential a
super-martingale and therefore converges (in expected pseudopolynomial time)
to an imitation-stable state.  The experiment runs the protocol on three game
families — linear singleton, quadratic singleton and the Braess network —
for growing player counts and reports

* the mean number of rounds until an imitation-stable state,
* the fraction of realised rounds in which the potential *increased*
  (expected to be small: individual rounds may fluctuate, the expectation
  must not),
* the potential drop achieved relative to the potential minimum.
"""

from __future__ import annotations

import numpy as np

from ..analysis.convergence import measure_imitation_stable_times
from ..analysis.martingale import potential_increase_rate
from ..core.imitation import ImitationProtocol
from ..rng import derive_rng
from ..games.generators import random_linear_singleton, random_monomial_singleton
from ..games.network import braess_network_game
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_imitation_stable_experiment"]


def _game_families(num_players: int, seed: int):
    """The three instance families of the E1 table."""
    return {
        "linear-singleton(m=8)": lambda: random_linear_singleton(
            num_players, 8, rng=seed),
        "quadratic-singleton(m=8)": lambda: random_monomial_singleton(
            num_players, 8, 2.0, rng=seed),
        "braess-network": lambda: braess_network_game(num_players),
    }


@register(
    "E1",
    "Convergence to imitation-stable states",
    "Theorem 4 / Corollary 3: the potential is a super-martingale and the "
    "dynamics reach an imitation-stable state in finite expected time.",
)
def run_imitation_stable_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    engine: str = "batch",
) -> ExperimentResult:
    """Run experiment E1 and return its result table."""
    trials = trials if trials is not None else pick(quick, 3, 10)
    player_counts = pick_list(quick, [32, 64], [32, 64, 128, 256, 512])
    max_rounds = DEFAULTS.max_rounds(quick)
    protocol = ImitationProtocol()

    rows: list[dict] = []
    notes: list[str] = []
    for num_players in player_counts:
        for family_name, factory in _game_families(num_players, seed).items():
            hitting = measure_imitation_stable_times(
                factory, protocol, trials=trials, max_rounds=max_rounds,
                rng=derive_rng(seed, num_players, family_name), engine=engine,
            )
            game = factory()
            drift = potential_increase_rate(
                game, protocol, rounds=pick(quick, 50, 200), trials=min(trials, 3),
                rng=(seed + 1),
            )
            minimum_potential = game.minimum_potential(exhaustive_limit=pick(quick, 20_000, 100_000))
            rows.append({
                "game": family_name,
                "n": num_players,
                "mean_rounds_to_stable": hitting.summary.mean,
                "max_rounds_to_stable": hitting.summary.maximum,
                "censored_trials": hitting.censored,
                "potential_increase_rate": drift["increase_rate"],
                "mean_net_potential_drop": drift["mean_net_drop"],
                "min_potential": minimum_potential,
            })

    increase_rates = np.array([row["potential_increase_rate"] for row in rows])
    notes.append(
        f"realised per-round potential increases occurred in "
        f"{float(np.mean(increase_rates)):.3f} of rounds on average "
        "(the supermartingale statement constrains the expectation, not every sample path)"
    )
    all_converged = all(row["censored_trials"] == 0 for row in rows)
    notes.append(
        "all trials reached an imitation-stable state within the round budget"
        if all_converged else
        "some trials exhausted the round budget before stabilising (expected for "
        "pseudopolynomial worst cases; the paper's bound is also pseudopolynomial)"
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Convergence to imitation-stable states",
        claim="Theorem 4 / Corollary 3",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "player_counts": player_counts, "max_rounds": max_rounds,
                    "engine": engine},
    )
