"""E9 — Exploration, imitation and their combination (Section 6, Theorem 15).

Pure imitation can stabilise away from a Nash equilibrium when attractive
strategies have no users (it is not innovative).  The EXPLORATION PROTOCOL
samples strategies directly and therefore converges to an exact Nash
equilibrium (Theorem 15), but its damping makes it slow; the half-and-half
mixture inherits the best of both (fast approximate convergence *and*
eventual Nash convergence).

The experiment starts all protocols from a deliberately bad state — every
player on the slowest link, so that the good links are initially unused — and
reports, per protocol, whether a Nash equilibrium is reached, the number of
rounds used, and the final social cost relative to the optimum.
"""

from __future__ import annotations

import numpy as np

from ..core.ensemble import EnsembleDynamics, batch_stop_at_nash
from ..core.exploration import ExplorationProtocol
from ..core.hybrid import make_hybrid_protocol
from ..core.imitation import ImitationProtocol
from ..core.run import run_until_nash
from ..games.nash import is_nash
from ..games.optimum import compute_social_optimum
from ..games.singleton import make_linear_singleton
from ..games.state import GameState, batch_broadcast
from ..rng import derive_rng, spawn_rngs
from .config import DEFAULTS, pick
from .registry import ExperimentResult, register

__all__ = ["run_exploration_nash_experiment"]


@register(
    "E9",
    "Convergence to Nash equilibria: imitation vs exploration vs hybrid",
    "Section 6 / Theorem 15: exploration (and any mixture containing it) "
    "converges to a Nash equilibrium even from states where good strategies "
    "are unused; pure imitation cannot, and pure exploration is slower than "
    "the mixture.",
)
def run_exploration_nash_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, engine: str = "batch",
) -> ExperimentResult:
    """Run experiment E9 and return its result table."""
    trials = trials if trials is not None else pick(quick, 3, 10)
    num_players = num_players if num_players is not None else pick(quick, 40, 120)
    max_rounds = pick(quick, 30_000, 300_000)
    coefficients = [1.0, 2.0, 4.0, 8.0]
    game = make_linear_singleton(num_players, coefficients)
    optimum = compute_social_optimum(game)

    # Adversarial start: everybody on the slowest link, all other links unused.
    slowest = int(np.argmax(coefficients))
    start_counts = np.zeros(len(coefficients), dtype=np.int64)
    start_counts[slowest] = num_players
    start = GameState(start_counts)

    protocols = {
        "imitation": ImitationProtocol(use_nu_threshold=False),
        "exploration": ExplorationProtocol(),
        "hybrid (0.5/0.5)": make_hybrid_protocol(use_nu_threshold=False),
    }

    rows: list[dict] = []
    for protocol_name, protocol in protocols.items():
        rounds_used: list[float] = []
        reached_nash: list[bool] = []
        final_costs: list[float] = []
        if engine == "batch":
            dynamics = EnsembleDynamics(
                game, protocol, rng=derive_rng(seed, "e9", protocol_name))
            ensemble = dynamics.run(
                batch_broadcast(start, trials),
                max_rounds=max_rounds,
                stop_condition=batch_stop_at_nash(),
            )
            rounds_used = [float(r) for r in ensemble.rounds]
            reached_nash = [bool(is_nash(game, state)) for state in ensemble.final_states]
            final_costs = [float(c) for c in game.social_cost_batch(ensemble.final_states)]
        else:
            generators = spawn_rngs(derive_rng(seed, "e9", protocol_name), trials)
            for generator in generators:
                result = run_until_nash(
                    game, protocol, initial_state=start, max_rounds=max_rounds, rng=generator,
                )
                rounds_used.append(float(result.rounds))
                reached_nash.append(bool(is_nash(game, result.final_state)))
                final_costs.append(float(game.social_cost(result.final_state)))
        rows.append({
            "protocol": protocol_name,
            "trials": trials,
            "nash_reached_fraction": float(np.mean(reached_nash)),
            "mean_rounds": float(np.mean(rounds_used)),
            "max_rounds_budget": max_rounds,
            "mean_final_cost": float(np.mean(final_costs)),
            "optimum_cost": optimum.social_cost,
            "final_cost_over_opt": float(np.mean(final_costs)) / optimum.social_cost,
        })

    by_name = {row["protocol"]: row for row in rows}
    notes: list[str] = []
    notes.append(
        "pure imitation never reaches a Nash equilibrium from the all-on-one start "
        f"(fraction {by_name['imitation']['nash_reached_fraction']:.2f}) because the unused "
        "links can never be sampled"
    )
    notes.append(
        "exploration and the hybrid protocol reach a Nash equilibrium "
        f"(fractions {by_name['exploration']['nash_reached_fraction']:.2f} and "
        f"{by_name['hybrid (0.5/0.5)']['nash_reached_fraction']:.2f})"
    )
    if by_name["hybrid (0.5/0.5)"]["mean_rounds"] <= by_name["exploration"]["mean_rounds"]:
        notes.append("the hybrid protocol needs no more rounds than pure exploration, as Section 6 "
                     "predicts (imitation accelerates the bulk of the convergence)")
    return ExperimentResult(
        experiment_id="E9",
        title="Imitation vs exploration vs hybrid",
        claim="Section 6 / Theorem 15",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "num_players": num_players, "coefficients": coefficients,
                    "max_rounds": max_rounds, "engine": engine},
    )
