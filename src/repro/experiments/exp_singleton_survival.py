"""E7 — Strategy survival in singleton games (Theorem 9).

Theorem 9: fix latency functions ``l_e`` on ``[0, 1]`` with ``l_e(0) = 0``
and consider the singleton game with ``n`` players over the normalised
functions ``l_e^n(x) = l_e(x / n)``.  Starting from the random
initialisation, the probability that the IMITATION PROTOCOL empties *any*
edge within poly(n) rounds is ``2^{-Omega(n)}``.

The experiment instantiates a fixed family of base latencies (a mix of linear
and quadratic speeds), scales it to growing ``n``, runs the protocol for a
polynomial number of rounds and reports the empirical extinction probability
(with a rule-of-three upper bound when no extinction is observed) and the
minimum edge congestion ever seen.  The reproduced shape: extinction events
vanish rapidly as ``n`` grows, and the minimum congestion stays bounded away
from zero proportionally to ``n``.
"""

from __future__ import annotations

from ..analysis.survival import estimate_extinction_probability
from ..core.imitation import ImitationProtocol
from ..games.latency import LinearLatency, MonomialLatency
from ..games.singleton import make_scaled_singleton
from ..rng import derive_rng
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_singleton_survival_experiment"]

#: Base latencies on [0, 1] with l(0) = 0: three linear speeds and one
#: quadratic link.
BASE_LATENCIES = (
    LinearLatency(1.0, 0.0),
    LinearLatency(2.0, 0.0),
    LinearLatency(4.0, 0.0),
    MonomialLatency(2.0, 2.0),
)


@register(
    "E7",
    "Probability of emptying an edge in scaled singleton games",
    "Theorem 9: with random initialisation the probability that any edge "
    "becomes unused within poly(n) rounds is exponentially small in n.",
)
def run_singleton_survival_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    rounds_per_player: int = 5, engine: str = "batch",
) -> ExperimentResult:
    """Run experiment E7 and return its result table."""
    trials = trials if trials is not None else pick(quick, 30, 200)
    player_counts = pick_list(quick, [8, 16, 32, 64], [8, 16, 32, 64, 128, 256])
    # The nu threshold shrinks with n for the scaled family, and Theorem 9 is
    # precisely the statement that lets the protocol drop it; run without it.
    protocol = ImitationProtocol(use_nu_threshold=False)

    rows: list[dict] = []
    for num_players in player_counts:
        rounds = rounds_per_player * num_players

        def factory(n=num_players):
            return make_scaled_singleton(n, BASE_LATENCIES)

        estimate = estimate_extinction_probability(
            factory, protocol, rounds=rounds, trials=trials,
            rng=derive_rng(seed, "survival", num_players), engine=engine,
        )
        rows.append({
            "n": num_players,
            "rounds": rounds,
            "trials": int(estimate["trials"]),
            "extinctions": int(estimate["extinctions"]),
            "extinction_probability": estimate["probability"],
            "probability_upper_bound": estimate["probability_upper_bound"],
            "min_congestion_seen": estimate["min_congestion"],
            "min_congestion_per_n": estimate["min_congestion"] / num_players,
        })

    notes: list[str] = []
    probabilities = [row["extinction_probability"] for row in rows]
    notes.append(
        "extinction probability by n: "
        + ", ".join(f"n={row['n']}: {row['extinction_probability']:.3f}" for row in rows)
    )
    if probabilities[-1] <= probabilities[0]:
        notes.append("the extinction probability is non-increasing in n and hits 0 for large n, "
                     "matching the 2^{-Omega(n)} claim")
    notes.append(
        "the minimum observed edge congestion grows proportionally to n "
        f"(last row: {rows[-1]['min_congestion_per_n']:.3f} * n), i.e. edges stay far from empty"
    )
    return ExperimentResult(
        experiment_id="E7",
        title="Strategy survival in scaled singleton games",
        claim="Theorem 9",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "rounds_per_player": rounds_per_player,
                    "player_counts": player_counts, "engine": engine},
    )
