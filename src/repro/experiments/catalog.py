"""Import side-effect module that loads every experiment.

Importing :mod:`repro.experiments.catalog` executes all ``@register(...)``
decorators, populating the registry used by the CLI, the benchmark harness
and the EXPERIMENTS.md generator.
"""

from . import (  # noqa: F401
    exp_elasticity_sweep,
    exp_eps_delta_sweep,
    exp_error_terms,
    exp_exploration_nash,
    exp_imitation_stable,
    exp_lambda_ablation,
    exp_last_agent_lower_bound,
    exp_logn_scaling,
    exp_network_scaling,
    exp_overshooting,
    exp_price_of_imitation,
    exp_protocol_comparison,
    exp_sequential_lower_bound,
    exp_singleton_survival,
    exp_virtual_agents,
)

__all__ = [
    "exp_elasticity_sweep",
    "exp_eps_delta_sweep",
    "exp_error_terms",
    "exp_exploration_nash",
    "exp_imitation_stable",
    "exp_lambda_ablation",
    "exp_last_agent_lower_bound",
    "exp_logn_scaling",
    "exp_network_scaling",
    "exp_overshooting",
    "exp_price_of_imitation",
    "exp_protocol_comparison",
    "exp_sequential_lower_bound",
    "exp_singleton_survival",
    "exp_virtual_agents",
]
