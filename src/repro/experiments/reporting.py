"""Plain-text and markdown table rendering for experiment results.

Every experiment produces a list of row dictionaries; this module turns them
into aligned plain-text tables (printed by the CLI and the benchmark harness)
and into markdown tables (pasted into ``EXPERIMENTS.md``).  It also hosts
:func:`find_row`, the checked row lookup experiments use when they build
their summary notes (a missing row names the missing key instead of raising
an opaque ``StopIteration``).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..errors import ExperimentError

__all__ = ["find_row", "format_value", "render_table", "render_markdown_table"]


def find_row(rows: Sequence[Mapping[str, object]], **criteria: object
             ) -> Mapping[str, object]:
    """Return the first row whose columns match all ``criteria``.

    Replaces the bare ``next(r for r in rows if ...)`` pattern: when no row
    matches, the raised :class:`~repro.errors.ExperimentError` names the
    missing key and the values the table actually contains, instead of an
    opaque ``StopIteration``/``RuntimeError``.
    """
    for row in rows:
        if all(column in row and row[column] == wanted
               for column, wanted in criteria.items()):
            return row
    wanted_text = ", ".join(f"{column}={value!r}"
                            for column, value in sorted(criteria.items()))
    available: dict[str, list] = {}
    for column in criteria:
        seen: list = []
        for row in rows:
            if column in row and row[column] not in seen:
                seen.append(row[column])
        available[column] = seen
    available_text = "; ".join(f"{column} in {values!r}"
                               for column, values in sorted(available.items()))
    raise ExperimentError(
        f"no result row matches ({wanted_text}); "
        f"available values: {available_text or 'none (empty table)'}"
    )


def format_value(value: object, *, precision: int = 4) -> str:
    """Format one cell: floats compactly, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def _columns_from_rows(rows: Sequence[Mapping[str, object]],
                       columns: Optional[Sequence[str]]) -> list[str]:
    if columns is not None:
        return list(columns)
    seen: list[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    cols = _columns_from_rows(rows, columns)
    cells = [[format_value(row.get(col, ""), precision=precision) for col in cols]
             for row in rows]
    widths = [max(len(col), *(len(line[idx]) for line in cells)) for idx, col in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(width) for col, width in zip(cols, widths))
    separator = "-+-".join("-" * width for width in widths)
    lines.append(header)
    lines.append(separator)
    for line in cells:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def render_markdown_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no rows)"
    cols = _columns_from_rows(rows, columns)
    lines = ["| " + " | ".join(cols) + " |",
             "|" + "|".join("---" for _ in cols) + "|"]
    for row in rows:
        lines.append(
            "| " + " | ".join(format_value(row.get(col, ""), precision=precision)
                              for col in cols) + " |"
        )
    return "\n".join(lines)
