"""Bridge between experiments and the sweep kernels' loop engine.

The ported experiments (E5, E11, E13, F1) express their grids as
:class:`~repro.sweeps.spec.SweepSpec` objects.  Their default
``engine="batch"`` path goes through :func:`repro.sweeps.run_sweep` (sharded
workers, resumable store); the ``engine="loop"`` parity path runs the *same*
points through the *same* kernels in-process, but with the kernels' scalar
loop engine.  Because both engines derive identical per-replica random
streams from the point seeds and share the migration-sampling code, the two
paths return bit-identical rows — the contract the engine-parity tests
pin down.  ``engine="native"`` runs the same points through the fused
round kernel instead (allclose parity tier — same distribution, different
sample paths; see :mod:`repro.engines`).
"""

from __future__ import annotations

from typing import Any

from ..engines import validate_engine
from ..sweeps.kernels import run_point
from ..sweeps.spec import SweepSpec

__all__ = ["run_spec_points"]


def run_spec_points(spec: SweepSpec, *, engine: str = "loop") -> list[dict[str, Any]]:
    """Run every point of ``spec`` in-process under the given engine.

    Returns the rows in point-expansion order (the order ``run_sweep``
    returns after sorting), without sharding, worker pools, or a store —
    the debuggable single-process twin of the batch path.
    """
    validate_engine(engine, context="run_spec_points")
    spec.validate()
    points = spec.expand()
    sequences = spec.point_seed_sequences()
    return [run_point(spec, point, sequence, engine=engine)
            for point, sequence in zip(points, sequences)]
