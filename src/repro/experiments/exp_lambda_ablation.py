"""E12 (extension) — sensitivity to the damping constant ``lambda``.

The paper's proofs need a very small migration constant ``lambda`` (e.g.
``lambda < 1/512`` in Lemma 2's case analysis), but nothing in the protocol
prevents larger values — they simply risk more concurrency error.  This
ablation sweeps ``lambda`` over two orders of magnitude and measures, on a
fixed instance,

* the number of rounds to a (delta, eps, nu)-equilibrium (smaller lambda =
  slower, the trade-off the constant controls),
* the fraction of realised rounds in which the potential increased and the
  empirical ratio of the error terms to the virtual potential gain (larger
  lambda = more concurrency error; Lemma 2's 1/2 bound is the reference
  line).

The design-choice conclusion documented in DESIGN.md: moderate values
(``lambda ~ 0.25``) converge an order of magnitude faster than the proof-safe
constants while keeping the error ratio well below 1/2, which is why the
library defaults to 0.25.
"""

from __future__ import annotations

import numpy as np

from ..analysis.convergence import measure_approx_equilibrium_times
from ..analysis.martingale import potential_increase_rate
from ..core.dynamics import sample_migration_matrix
from ..core.imitation import ImitationProtocol
from ..core.potential import potential_breakdown
from ..games.singleton import make_linear_singleton
from ..rng import derive_rng
from .config import DEFAULTS, pick, pick_list
from .exp_logn_scaling import LINK_COEFFICIENTS
from .registry import ExperimentResult, register

__all__ = ["run_lambda_ablation_experiment"]


def _error_ratio(game, protocol, *, samples: int, rng) -> float:
    """Empirical mean of (sum F_e) / |sum V_PQ| over sampled rounds."""
    state = game.uniform_random_state(rng)
    probabilities = protocol.switch_probabilities(game, state)
    ratios: list[float] = []
    for _ in range(samples):
        migration = sample_migration_matrix(state.counts, probabilities.matrix, rng)
        breakdown = potential_breakdown(game, state, migration)
        if breakdown.virtual_gain < -1e-12:
            ratios.append(breakdown.error_term / abs(breakdown.virtual_gain))
    return float(np.mean(ratios)) if ratios else 0.0


@register(
    "E12",
    "Sensitivity to the damping constant lambda (extension)",
    "Design-choice ablation: larger lambda converges faster but incurs more "
    "concurrency error; the Lemma 2 guarantee (error <= half the virtual gain) "
    "holds comfortably for the moderate default used by the library.",
)
def run_lambda_ablation_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, delta: float = 0.2, epsilon: float = 0.2,
    engine: str = "batch",
) -> ExperimentResult:
    """Run experiment E12 and return its result table."""
    trials = trials if trials is not None else pick(quick, 4, 15)
    num_players = num_players if num_players is not None else pick(quick, 256, 1024)
    max_rounds = DEFAULTS.max_rounds(quick)
    lambdas = pick_list(quick, [0.01, 0.0625, 0.25, 1.0],
                        [0.01, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0])

    def factory():
        return make_linear_singleton(num_players, LINK_COEFFICIENTS)

    rows: list[dict] = []
    for lambda_ in lambdas:
        protocol = ImitationProtocol(lambda_=lambda_, use_nu_threshold=False)
        hitting = measure_approx_equilibrium_times(
            factory, protocol, delta, epsilon,
            trials=trials, max_rounds=max_rounds,
            rng=derive_rng(seed, "e12-time", int(lambda_ * 10_000)), engine=engine,
        )
        game = factory()
        drift = potential_increase_rate(
            game, protocol, rounds=pick(quick, 40, 150), trials=3,
            rng=derive_rng(seed, "e12-drift", int(lambda_ * 10_000)),
        )
        error_ratio = _error_ratio(
            game, protocol, samples=pick(quick, 100, 400),
            rng=derive_rng(seed, "e12-error", int(lambda_ * 10_000)),
        )
        rows.append({
            "lambda": lambda_,
            "mean_rounds_to_approx_eq": hitting.summary.mean,
            "censored_trials": hitting.censored,
            "potential_increase_rate": drift["increase_rate"],
            "error_over_virtual_gain": error_ratio,
            "lemma2_reference": 0.5,
        })

    notes: list[str] = []
    fastest = min(rows, key=lambda row: row["mean_rounds_to_approx_eq"])
    slowest = max(rows, key=lambda row: row["mean_rounds_to_approx_eq"])
    notes.append(
        f"convergence time ranges from {fastest['mean_rounds_to_approx_eq']:.1f} rounds at "
        f"lambda={fastest['lambda']} to {slowest['mean_rounds_to_approx_eq']:.1f} rounds at "
        f"lambda={slowest['lambda']} — the damping constant trades speed for concurrency error"
    )
    if all(row["error_over_virtual_gain"] <= 0.5 for row in rows):
        notes.append("the empirical error-to-virtual-gain ratio stays below the Lemma 2 "
                     "reference of 1/2 for every lambda tested, including lambda = 1")
    else:
        exceeded = [row["lambda"] for row in rows if row["error_over_virtual_gain"] > 0.5]
        notes.append(f"the error ratio exceeds 1/2 for lambda in {exceeded} — the proof-safe "
                     "regime requires smaller constants, as the paper's analysis anticipates")
    return ExperimentResult(
        experiment_id="E12",
        title="Sensitivity to the damping constant lambda",
        claim="Design-choice ablation (extension; relates to Lemma 2's constant)",
        rows=rows,
        notes=notes,
        parameters={"engine": engine, "quick": quick, "seed": seed, "trials": trials,
                    "num_players": num_players, "delta": delta, "epsilon": epsilon,
                    "lambdas": lambdas, "max_rounds": max_rounds},
    )
