"""E14 — Selfish routing at scale and the Braess paradox (Section 1).

The paper's motivating scenario is selfish routing: players pick ``s``-``t``
paths in a network and imitate better-off players.  This experiment opens
that workload to the batched ensemble + sweep layer at sizes where the
classical construction breaks down:

* **Scaling table** — the IMITATION PROTOCOL on complete layered DAGs of
  growing depth.  A ``width``-wide, ``layers``-deep complete layered DAG has
  ``width ** layers`` simple ``s``-``t`` paths, so already moderate depths
  blow past any exhaustive-enumeration cap (the default
  ``max_paths=10_000``); the games are built through the bounded
  ``"dag-sample"`` strategy sampler instead (``k_paths`` uniform random
  paths plus the free-flow shortest path, deterministic per sweep point).
  The table reports convergence of the dynamics to an approximate
  equilibrium as the depth — and therefore the size of the *unsampled*
  strategy space — grows.
* **Braess table** — the classic four-node Braess network with and without
  its shortcut edge.  Adding the shortcut draws the whole population onto
  one route and *raises* the average latency: the Braess paradox, emerging
  from pure imitation.

Both tables are :class:`~repro.sweeps.spec.SweepSpec` grids
(:func:`network_scaling_spec`, :func:`braess_paradox_spec`; CLI
``--preset network-scaling``) driving the ``network_convergence`` kernel.
``engine="batch"`` (default) runs replicas through the ensemble engine with
per-replica ``rng_streams``; ``engine="loop"`` replays the same streams
through the scalar engine — the two tables are bit-identical (the
engine-parity tests assert this on the Braess and grid topologies).
``engine="native"`` executes the sweep through the fused round kernel
(allclose parity tier); the engine is folded into the spec, so native rows
get their own store keys.
"""

from __future__ import annotations

import importlib.util
from dataclasses import replace

from ..engines import validate_engine
from ..sweeps import SweepSpec, run_sweep
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register
from .reporting import find_row
from .sweep_bridge import run_spec_points

__all__ = ["run_network_scaling_experiment", "network_scaling_spec",
           "braess_paradox_spec"]

#: Width of every internal layer of the scaling DAGs: the complete layered
#: DAG then has exactly ``NETWORK_WIDTH ** layers`` simple s-t paths.
NETWORK_WIDTH = 4

#: The default exhaustive-enumeration cap the scaling grid is measured
#: against (``NetworkCongestionGame``'s default ``max_paths``).
ENUMERATION_CAP = 10_000

#: Pin the sparse-incidence evaluation in the scaling spec when scipy is
#: present (an explicit True hard-fails without it).  The flag is part of
#: the spec, so the two environments get different content hashes — a
#: shared store never mixes sparse- and dense-computed rows.
_SPARSE_AVAILABLE = importlib.util.find_spec("scipy") is not None


def network_scaling_spec(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, k_paths: int | None = None,
) -> SweepSpec:
    """The E14 depth-scaling grid on complete layered DAGs.

    Every point samples ``k_paths`` strategies from a ``width ** layers``
    path space; the deeper rows of the grid could not be constructed by
    exhaustive enumeration at all.
    """
    trials = trials if trials is not None else pick(quick, 3, 10)
    num_players = num_players if num_players is not None else pick(quick, 60, 200)
    layer_values = pick_list(quick, [4, 8], [4, 8, 12, 16])
    return SweepSpec(
        name="e14-network-scaling",
        game="layered-network",
        protocol="imitation",
        measure="network_convergence",
        axes={"layers": layer_values},
        base={"n": num_players, "width": NETWORK_WIDTH, "edge_probability": 1.0,
              "strategy_mode": "dag-sample",
              "sparse_incidence": _SPARSE_AVAILABLE,
              "k_paths": k_paths if k_paths is not None else pick(quick, 24, 64),
              "delta": 0.05, "epsilon": 0.05},
        replicas=trials,
        max_rounds=pick(quick, 400, 2_000),
        seed=seed,
    )


def braess_paradox_spec(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None,
) -> SweepSpec:
    """The E14 Braess comparison: the same network with and without the
    shortcut edge, on identical per-replica streams."""
    trials = trials if trials is not None else pick(quick, 3, 10)
    num_players = num_players if num_players is not None else pick(quick, 40, 100)
    return SweepSpec(
        name="e14-braess",
        game="braess",
        protocol="imitation",
        measure="network_convergence",
        axes={"with_shortcut": [False, True]},
        base={"n": num_players, "delta": 0.02, "epsilon": 0.02},
        replicas=trials,
        max_rounds=pick(quick, 2_000, 20_000),
        seed=seed,
    )


def _table_row(topology: str, paths_total: int, row: dict) -> dict:
    return {
        "topology": topology,
        "paths_total": paths_total,
        "paths_sampled": row["num_paths"],
        "num_edges": row["num_edges"],
        "converged_fraction": row["converged_fraction"],
        "mean_rounds_converged": row["mean_rounds_converged"],
        "non_converged_trials": row["non_converged_trials"],
        "mean_final_cost": row["mean_final_cost"],
    }


def _scaling_row(row: dict) -> dict:
    layers = int(row["layers"])
    return _table_row(f"layered {layers}x{NETWORK_WIDTH}",
                      NETWORK_WIDTH ** layers, row)


def _braess_row(row: dict) -> dict:
    if row["with_shortcut"]:
        return _table_row("braess + shortcut", 3, row)
    return _table_row("braess (no shortcut)", 2, row)


@register(
    "E14",
    "Selfish routing at scale: sampled path strategy sets and the Braess paradox",
    "Section 1 motivating scenario: imitation dynamics on s-t routing networks "
    "converge on strategy spaces far beyond exhaustive path enumeration, and "
    "reproduce the Braess paradox (adding a shortcut edge raises the emergent "
    "average latency).",
)
def run_network_scaling_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, k_paths: int | None = None,
    engine: str = "batch", workers: int = 1, store=None,
) -> ExperimentResult:
    """Run experiment E14 and return its result table."""
    validate_engine(engine, context="E14")
    scaling_spec = network_scaling_spec(quick=quick, seed=seed, trials=trials,
                                        num_players=num_players, k_paths=k_paths)
    braess_spec = braess_paradox_spec(quick=quick, seed=seed, trials=trials,
                                      num_players=num_players)

    if engine in ("batch", "native"):
        scaling_spec = replace(scaling_spec, engine=engine)
        braess_spec = replace(braess_spec, engine=engine)
        scaling_rows = run_sweep(scaling_spec, workers=workers, store=store).rows
        braess_rows = run_sweep(braess_spec, workers=workers, store=store).rows
    else:
        scaling_rows = run_spec_points(scaling_spec, engine=engine)
        braess_rows = run_spec_points(braess_spec, engine=engine)

    rows = ([_scaling_row(row) for row in scaling_rows]
            + [_braess_row(row) for row in braess_rows])

    deepest = max(int(row["layers"]) for row in scaling_rows)
    deepest_paths = NETWORK_WIDTH ** deepest
    notes = [
        f"the deepest grid ({deepest} layers) has {deepest_paths} simple s-t "
        f"paths — {deepest_paths / ENUMERATION_CAP:.0f}x past the "
        f"max_paths={ENUMERATION_CAP} enumeration cap; its strategy set is "
        f"built by the seeded dag-sample strategy sampler instead"
    ]
    with_shortcut = find_row(rows, topology="braess + shortcut")
    without_shortcut = find_row(rows, topology="braess (no shortcut)")
    cost_with = with_shortcut["mean_final_cost"]
    cost_without = without_shortcut["mean_final_cost"]
    if cost_with is None or cost_without is None:
        notes.append(
            "Braess comparison inconclusive: some replicas did not reach the "
            "approximate equilibrium within the round budget (see "
            "non_converged_trials); raise max_rounds for a cost comparison"
        )
    else:
        notes.append(
            f"Braess paradox: adding the shortcut edge changes the emergent "
            f"average latency from {cost_without:.2f} to {cost_with:.2f} "
            f"({cost_with / cost_without:.2f}x) — extra capacity hurts "
            f"everybody"
        )
    return ExperimentResult(
        experiment_id="E14",
        title="Network routing at scale (sampled strategy sets, Braess paradox)",
        claim="Section 1 motivating scenario: selfish routing under imitation",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": scaling_spec.replicas,
                    "num_players": scaling_spec.base["n"],
                    "braess_players": braess_spec.base["n"],
                    "width": NETWORK_WIDTH,
                    "layers": list(scaling_spec.axes["layers"]),
                    "k_paths": scaling_spec.base["k_paths"],
                    "engine": engine, "workers": workers,
                    "scaling_spec_hash": scaling_spec.content_hash(),
                    "braess_spec_hash": braess_spec.content_hash()},
    )
