"""E11 (extension) — concurrent imitation versus the sequential baselines.

The related-work discussion of the paper contrasts the concurrent IMITATION
PROTOCOL with the classical sequential dynamics: best response (Rosenthal),
epsilon-greedy better response (Chien-Sinclair) and randomized local search
(Goldberg).  A sequential process performs one player move per step, so it
needs at least Omega(n) steps just to let every player move once, whereas the
concurrent protocol revises all players per round and Theorem 7 bounds its
*round* count logarithmically in n.

This extension experiment runs all four dynamics on the same instances and
start states for growing n and reports the work each needs (rounds for the
concurrent protocol, individual moves/probes for the sequential ones) and the
quality of the final state.  It is not a claim of the paper in itself, but it
quantifies the comparison the introduction makes.

The (n, dynamics) grid is a :class:`~repro.sweeps.spec.SweepSpec`
(:func:`protocol_comparison_spec`, CLI ``--preset protocol-work``) driving
the ``dynamics_work`` kernel.  ``engine="batch"`` (default) advances the
concurrent protocol's replicas through the ensemble engine with per-replica
random streams; ``engine="loop"`` replays the same streams through the
scalar engine — bit-identical tables.  The sequential baselines execute one
move at a time in either engine (that is what makes them the comparison).
Non-converged replicas are excluded from the work/cost means and counted in
``non_converged_trials``.
"""

from __future__ import annotations

from ..sweeps import SweepSpec, run_sweep
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register
from .reporting import find_row
from .sweep_bridge import run_spec_points

__all__ = ["run_protocol_comparison_experiment", "protocol_comparison_spec"]

#: Sweep-axis dynamics identifiers -> experiment-table display labels.
DYNAMICS_LABELS = {
    "imitation": "imitation (rounds)",
    "best-response": "best-response (moves)",
    "epsilon-greedy": "epsilon-greedy (moves)",
    "goldberg": "goldberg (probes)",
}


def protocol_comparison_spec(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    delta: float = 0.1, epsilon: float = 0.1,
) -> SweepSpec:
    """The E11 grid as a declarative sweep over (n, dynamics)."""
    trials = trials if trials is not None else pick(quick, 3, 10)
    player_counts = pick_list(quick, [100, 400], [100, 400, 1600])
    return SweepSpec(
        name="e11-protocol-work",
        game="linear-singleton",
        protocol="imitation",
        measure="dynamics_work",
        axes={"n": player_counts, "dynamics": list(DYNAMICS_LABELS)},
        base={"links": 8, "delta": delta, "epsilon": epsilon},
        replicas=trials,
        max_rounds=DEFAULTS.max_rounds(quick),
        seed=seed,
    )


@register(
    "E11",
    "Concurrent imitation versus sequential baselines (extension)",
    "Related-work comparison: the concurrent protocol needs a near-constant "
    "number of rounds while every sequential dynamics needs at least Omega(n) "
    "individual moves to reach a comparable state.",
)
def run_protocol_comparison_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    delta: float = 0.1, epsilon: float = 0.1, engine: str = "batch",
    workers: int = 1, store=None,
) -> ExperimentResult:
    """Run experiment E11 and return its result table."""
    spec = protocol_comparison_spec(quick=quick, seed=seed, trials=trials,
                                    delta=delta, epsilon=epsilon)
    player_counts = list(spec.axes["n"])

    if engine == "batch":
        sweep_rows = run_sweep(spec, workers=workers, store=store).rows
    else:
        sweep_rows = run_spec_points(spec, engine=engine)

    rows = [{
        "n": row["n"],
        "dynamics": DYNAMICS_LABELS[row["dynamics"]],
        "mean_work": row["mean_work"],
        "work_per_player": row["work_per_player"],
        "mean_final_cost": row["mean_final_cost"],
        "cost_over_optimum": row["cost_over_optimum"],
        "non_converged_trials": row["non_converged_trials"],
    } for row in sweep_rows]

    notes: list[str] = []
    for num_players in player_counts:
        imitation_row = find_row(rows, n=num_players,
                                 dynamics=DYNAMICS_LABELS["imitation"])
        best_response_row = find_row(rows, n=num_players,
                                     dynamics=DYNAMICS_LABELS["best-response"])
        if imitation_row["mean_work"] is None or best_response_row["mean_work"] is None:
            notes.append(f"n={num_players}: no converged replicas for one of the "
                         "compared dynamics — work comparison unavailable")
            continue
        notes.append(
            f"n={num_players}: imitation used {imitation_row['mean_work']:.1f} rounds "
            f"({imitation_row['work_per_player']:.3f} per player) while best response used "
            f"{best_response_row['mean_work']:.1f} moves "
            f"({best_response_row['work_per_player']:.3f} per player)"
        )
    imitation_rows = [r for r in rows if r["dynamics"].startswith("imitation")
                      and r["mean_work"] is not None]
    if imitation_rows and imitation_rows[-1]["mean_work"] <= 4 * imitation_rows[0]["mean_work"]:
        notes.append("the concurrent round count is essentially flat in n, while every "
                     "sequential baseline's move count grows proportionally to n")
    truncated = sum(row["non_converged_trials"] for row in rows)
    if truncated:
        notes.append(f"{truncated} replica run(s) exhausted their budget without "
                     "converging and are excluded from the work/cost means")
    return ExperimentResult(
        experiment_id="E11",
        title="Concurrent imitation versus sequential baselines",
        claim="Related-work comparison (extension; not a numbered theorem)",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": spec.replicas,
                    "delta": delta, "epsilon": epsilon,
                    "player_counts": player_counts, "num_links": 8,
                    "engine": engine, "workers": workers,
                    "sweep_spec_hash": spec.content_hash()},
    )
