"""E11 (extension) — concurrent imitation versus the sequential baselines.

The related-work discussion of the paper contrasts the concurrent IMITATION
PROTOCOL with the classical sequential dynamics: best response (Rosenthal),
epsilon-greedy better response (Chien-Sinclair) and randomized local search
(Goldberg).  A sequential process performs one player move per step, so it
needs at least Omega(n) steps just to let every player move once, whereas the
concurrent protocol revises all players per round and Theorem 7 bounds its
*round* count logarithmically in n.

This extension experiment runs all four dynamics on the same instances and
start states for growing n and reports the work each needs (rounds for the
concurrent protocol, individual moves/probes for the sequential ones) and the
quality of the final state.  It is not a claim of the paper in itself, but it
quantifies the comparison the introduction makes.
"""

from __future__ import annotations

import numpy as np

from ..baselines.best_response import run_best_response_baseline
from ..baselines.epsilon_greedy import run_epsilon_greedy_baseline
from ..baselines.goldberg import run_goldberg_baseline
from ..core.imitation import ImitationProtocol
from ..core.run import run_until_approx_equilibrium
from ..games.generators import random_linear_singleton
from ..games.optimum import compute_social_optimum
from ..rng import derive_rng, spawn_rngs
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_protocol_comparison_experiment"]


@register(
    "E11",
    "Concurrent imitation versus sequential baselines (extension)",
    "Related-work comparison: the concurrent protocol needs a near-constant "
    "number of rounds while every sequential dynamics needs at least Omega(n) "
    "individual moves to reach a comparable state.",
)
def run_protocol_comparison_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    delta: float = 0.1, epsilon: float = 0.1,
) -> ExperimentResult:
    """Run experiment E11 and return its result table."""
    trials = trials if trials is not None else pick(quick, 3, 10)
    player_counts = pick_list(quick, [100, 400], [100, 400, 1600])
    num_links = 8
    max_rounds = DEFAULTS.max_rounds(quick)

    rows: list[dict] = []
    for num_players in player_counts:
        game = random_linear_singleton(num_players, num_links,
                                       rng=derive_rng(seed, "e11-instance", num_players))
        optimum = compute_social_optimum(game)
        generators = spawn_rngs(derive_rng(seed, "e11", num_players), trials)
        work = {"imitation (rounds)": [], "best-response (moves)": [],
                "epsilon-greedy (moves)": [], "goldberg (probes)": []}
        costs = {key: [] for key in work}
        for generator in generators:
            start = game.uniform_random_state(generator)
            imitation = run_until_approx_equilibrium(
                game, ImitationProtocol(), delta, epsilon,
                initial_state=start, max_rounds=max_rounds, rng=generator)
            work["imitation (rounds)"].append(imitation.rounds)
            costs["imitation (rounds)"].append(game.social_cost(imitation.final_state))

            best_response = run_best_response_baseline(game, initial_state=start, rng=generator)
            work["best-response (moves)"].append(best_response.steps)
            costs["best-response (moves)"].append(game.social_cost(best_response.final_state))

            eps_greedy = run_epsilon_greedy_baseline(game, epsilon, initial_state=start,
                                                     rng=generator)
            work["epsilon-greedy (moves)"].append(eps_greedy.steps)
            costs["epsilon-greedy (moves)"].append(game.social_cost(eps_greedy.final_state))

            goldberg = run_goldberg_baseline(game, initial_state=start,
                                             max_steps=200 * num_players, rng=generator)
            work["goldberg (probes)"].append(goldberg.steps)
            costs["goldberg (probes)"].append(game.social_cost(goldberg.final_state))

        for dynamics_name in work:
            rows.append({
                "n": num_players,
                "dynamics": dynamics_name,
                "mean_work": float(np.mean(work[dynamics_name])),
                "work_per_player": float(np.mean(work[dynamics_name])) / num_players,
                "mean_final_cost": float(np.mean(costs[dynamics_name])),
                "cost_over_optimum": float(np.mean(costs[dynamics_name])) / optimum.social_cost,
            })

    notes: list[str] = []
    for num_players in player_counts:
        imitation_row = next(r for r in rows if r["n"] == num_players
                             and r["dynamics"].startswith("imitation"))
        best_response_row = next(r for r in rows if r["n"] == num_players
                                 and r["dynamics"].startswith("best-response"))
        notes.append(
            f"n={num_players}: imitation used {imitation_row['mean_work']:.1f} rounds "
            f"({imitation_row['work_per_player']:.3f} per player) while best response used "
            f"{best_response_row['mean_work']:.1f} moves "
            f"({best_response_row['work_per_player']:.3f} per player)"
        )
    imitation_rows = [r for r in rows if r["dynamics"].startswith("imitation")]
    if imitation_rows[-1]["mean_work"] <= 4 * imitation_rows[0]["mean_work"]:
        notes.append("the concurrent round count is essentially flat in n, while every "
                     "sequential baseline's move count grows proportionally to n")
    return ExperimentResult(
        experiment_id="E11",
        title="Concurrent imitation versus sequential baselines",
        claim="Related-work comparison (extension; not a numbered theorem)",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "delta": delta, "epsilon": epsilon,
                    "player_counts": player_counts, "num_links": num_links},
    )
