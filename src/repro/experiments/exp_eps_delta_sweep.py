"""E3 — Dependence of the hitting time on the approximation parameters.

Theorem 7 bounds the expected hitting time of a (delta, eps, nu)-equilibrium
by ``O(d / (eps^2 delta) * log(Phi(x0)/Phi*))``: halving ``delta`` should at
most double the time, halving ``eps`` should at most quadruple it.  The
experiment fixes the instance and the player count, sweeps ``eps`` with
``delta`` fixed and then ``delta`` with ``eps`` fixed, and reports the mean
hitting time next to the value of ``1/(eps^2 delta)`` so the two growth
curves can be compared directly.
"""

from __future__ import annotations

from ..analysis.convergence import measure_approx_equilibrium_times
from ..core.imitation import ImitationProtocol
from ..games.singleton import make_linear_singleton
from ..rng import derive_rng
from .config import DEFAULTS, pick, pick_list
from .exp_logn_scaling import LINK_COEFFICIENTS
from .registry import ExperimentResult, register

__all__ = ["run_eps_delta_sweep_experiment"]


@register(
    "E3",
    "Hitting time versus the approximation parameters eps and delta",
    "Theorem 7: the expected convergence time is polynomial in 1/eps and "
    "1/delta (the bound scales as 1/(eps^2 delta)).",
)
def run_eps_delta_sweep_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, engine: str = "batch",
) -> ExperimentResult:
    """Run experiment E3 and return its result table."""
    trials = trials if trials is not None else pick(quick, 5, 20)
    num_players = num_players if num_players is not None else pick(quick, 256, 1024)
    max_rounds = DEFAULTS.max_rounds(quick)
    protocol = ImitationProtocol()

    epsilons = pick_list(quick, [0.4, 0.2, 0.1], [0.4, 0.3, 0.2, 0.1, 0.05])
    deltas = pick_list(quick, [0.4, 0.2, 0.1], [0.4, 0.3, 0.2, 0.1, 0.05])
    fixed_delta = 0.25
    fixed_epsilon = 0.25

    def factory():
        return make_linear_singleton(num_players, LINK_COEFFICIENTS)

    rows: list[dict] = []
    for epsilon in epsilons:
        hitting = measure_approx_equilibrium_times(
            factory, protocol, fixed_delta, epsilon,
            trials=trials, max_rounds=max_rounds,
            rng=derive_rng(seed, "eps-sweep", int(epsilon * 1000)), engine=engine,
        )
        rows.append({
            "sweep": "epsilon",
            "epsilon": epsilon,
            "delta": fixed_delta,
            "bound_term_1/(eps^2*delta)": 1.0 / (epsilon ** 2 * fixed_delta),
            "mean_rounds": hitting.summary.mean,
            "max_rounds": hitting.summary.maximum,
            "censored_trials": hitting.censored,
        })
    for delta in deltas:
        hitting = measure_approx_equilibrium_times(
            factory, protocol, delta, fixed_epsilon,
            trials=trials, max_rounds=max_rounds,
            rng=derive_rng(seed, "delta-sweep", int(delta * 1000)), engine=engine,
        )
        rows.append({
            "sweep": "delta",
            "epsilon": fixed_epsilon,
            "delta": delta,
            "bound_term_1/(eps^2*delta)": 1.0 / (fixed_epsilon ** 2 * delta),
            "mean_rounds": hitting.summary.mean,
            "max_rounds": hitting.summary.maximum,
            "censored_trials": hitting.censored,
        })

    eps_rows = [row for row in rows if row["sweep"] == "epsilon"]
    delta_rows = [row for row in rows if row["sweep"] == "delta"]
    notes = []
    eps_growth = eps_rows[-1]["mean_rounds"] / max(eps_rows[0]["mean_rounds"], 1e-9)
    eps_bound_growth = (eps_rows[-1]["bound_term_1/(eps^2*delta)"]
                        / eps_rows[0]["bound_term_1/(eps^2*delta)"])
    notes.append(
        f"tightening eps from {eps_rows[0]['epsilon']} to {eps_rows[-1]['epsilon']} grew the "
        f"measured time by x{eps_growth:.2f} while the bound term grew by x{eps_bound_growth:.1f} "
        "(measured growth stays below the bound's growth, as expected for an upper bound)"
    )
    delta_growth = delta_rows[-1]["mean_rounds"] / max(delta_rows[0]["mean_rounds"], 1e-9)
    delta_bound_growth = (delta_rows[-1]["bound_term_1/(eps^2*delta)"]
                          / delta_rows[0]["bound_term_1/(eps^2*delta)"])
    notes.append(
        f"tightening delta from {delta_rows[0]['delta']} to {delta_rows[-1]['delta']} grew the "
        f"measured time by x{delta_growth:.2f} (bound term x{delta_bound_growth:.1f})"
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Hitting time versus eps and delta",
        claim="Theorem 7 (polynomial dependence on 1/eps, 1/delta)",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "num_players": num_players, "max_rounds": max_rounds,
                    "engine": engine},
    )
