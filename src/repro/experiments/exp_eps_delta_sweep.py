"""E3 — Dependence of the hitting time on the approximation parameters.

Theorem 7 bounds the expected hitting time of a (delta, eps, nu)-equilibrium
by ``O(d / (eps^2 delta) * log(Phi(x0)/Phi*))``: halving ``delta`` should at
most double the time, halving ``eps`` should at most quadruple it.  The
experiment fixes the instance and the player count, sweeps ``eps`` with
``delta`` fixed and then ``delta`` with ``eps`` fixed, and reports the mean
hitting time next to the value of ``1/(eps^2 delta)`` so the two growth
curves can be compared directly.

Both parameter lines are expressed as
:class:`~repro.sweeps.spec.SweepSpec`s (:func:`eps_sweep_spec`,
:func:`delta_sweep_spec`) and executed through the sweep scheduler, so the
experiment shards across worker processes (``workers=``) and caches point
results in a :class:`~repro.sweeps.store.SweepStore` (``store=``).
:func:`eps_delta_grid_spec` additionally exposes the *full* eps × delta
product grid — the CLI's ``sweep --preset eps-delta`` — which the paper's
two-line protocol never measured but the sweep engine makes cheap.
"""

from __future__ import annotations

from dataclasses import replace

from ..analysis.convergence import measure_approx_equilibrium_times
from ..core.imitation import ImitationProtocol
from ..engines import validate_engine
from ..games.singleton import make_linear_singleton
from ..rng import derive_rng
from ..sweeps import SweepSpec, run_sweep
from .config import DEFAULTS, pick, pick_list
from .exp_logn_scaling import LINK_COEFFICIENTS
from .registry import ExperimentResult, register

__all__ = ["run_eps_delta_sweep_experiment", "eps_sweep_spec",
           "delta_sweep_spec", "eps_delta_grid_spec"]

_FIXED_DELTA = 0.25
_FIXED_EPSILON = 0.25


def _epsilons(quick: bool) -> list[float]:
    return pick_list(quick, [0.4, 0.2, 0.1], [0.4, 0.3, 0.2, 0.1, 0.05])


def _deltas(quick: bool) -> list[float]:
    return pick_list(quick, [0.4, 0.2, 0.1], [0.4, 0.3, 0.2, 0.1, 0.05])


def _base_spec(name: str, axes: dict, base: dict, *, quick: bool, seed: int,
               trials: int | None, num_players: int | None) -> SweepSpec:
    trials = trials if trials is not None else pick(quick, 5, 20)
    num_players = num_players if num_players is not None else pick(quick, 256, 1024)
    return SweepSpec(
        name=name,
        game="linear-singleton",
        protocol="imitation",
        measure="approx_equilibrium_time",
        axes=axes,
        base={"n": num_players, "coeffs": LINK_COEFFICIENTS, **base},
        replicas=trials,
        max_rounds=DEFAULTS.max_rounds(quick),
        seed=seed,
    )


def eps_sweep_spec(*, quick: bool = True, seed: int = DEFAULTS.seed,
                   trials: int | None = None, num_players: int | None = None
                   ) -> SweepSpec:
    """The E3 epsilon line (``delta`` fixed) as a declarative sweep."""
    return _base_spec("e3-eps-sweep", {"epsilon": _epsilons(quick)},
                      {"delta": _FIXED_DELTA}, quick=quick, seed=seed,
                      trials=trials, num_players=num_players)


def delta_sweep_spec(*, quick: bool = True, seed: int = DEFAULTS.seed,
                     trials: int | None = None, num_players: int | None = None
                     ) -> SweepSpec:
    """The E3 delta line (``epsilon`` fixed) as a declarative sweep."""
    return _base_spec("e3-delta-sweep", {"delta": _deltas(quick)},
                      {"epsilon": _FIXED_EPSILON}, quick=quick, seed=seed,
                      trials=trials, num_players=num_players)


def eps_delta_grid_spec(*, quick: bool = True, seed: int = DEFAULTS.seed,
                        trials: int | None = None, num_players: int | None = None
                        ) -> SweepSpec:
    """The full eps × delta product grid (the CLI ``eps-delta`` preset)."""
    return _base_spec("eps-delta-grid",
                      {"epsilon": _epsilons(quick), "delta": _deltas(quick)},
                      {}, quick=quick, seed=seed, trials=trials,
                      num_players=num_players)


def _legacy_row(sweep_name: str, row: dict) -> dict:
    """Map a sweep row onto E3's historical column names."""
    epsilon, delta = row["epsilon"], row["delta"]
    return {
        "sweep": sweep_name,
        "epsilon": epsilon,
        "delta": delta,
        "bound_term_1/(eps^2*delta)": 1.0 / (epsilon ** 2 * delta),
        "mean_rounds": row["rounds_mean"],
        "max_rounds": row["rounds_max"],
        "censored_trials": row["censored"],
    }


@register(
    "E3",
    "Hitting time versus the approximation parameters eps and delta",
    "Theorem 7: the expected convergence time is polynomial in 1/eps and "
    "1/delta (the bound scales as 1/(eps^2 delta)).",
)
def run_eps_delta_sweep_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, engine: str = "batch",
    workers: int = 1, store=None,
) -> ExperimentResult:
    """Run experiment E3 and return its result table."""
    specs = [
        ("epsilon", eps_sweep_spec(quick=quick, seed=seed, trials=trials,
                                   num_players=num_players)),
        ("delta", delta_sweep_spec(quick=quick, seed=seed, trials=trials,
                                   num_players=num_players)),
    ]
    resolved_trials = specs[0][1].replicas
    resolved_players = specs[0][1].base["n"]
    max_rounds = specs[0][1].max_rounds

    rows: list[dict] = []
    validate_engine(engine, context="E3")
    if engine in ("batch", "native"):
        specs = [(name, replace(spec, engine=engine)) for name, spec in specs]
        for sweep_name, spec in specs:
            result = run_sweep(spec, workers=workers, store=store)
            rows.extend(_legacy_row(sweep_name, row) for row in result.rows)
    else:
        protocol = ImitationProtocol()

        def factory():
            return make_linear_singleton(resolved_players, LINK_COEFFICIENTS)

        for epsilon in _epsilons(quick):
            hitting = measure_approx_equilibrium_times(
                factory, protocol, _FIXED_DELTA, epsilon,
                trials=resolved_trials, max_rounds=max_rounds,
                rng=derive_rng(seed, "eps-sweep", int(epsilon * 1000)),
                engine="loop",
            )
            rows.append(_legacy_row("epsilon", {
                "epsilon": epsilon, "delta": _FIXED_DELTA,
                "rounds_mean": hitting.summary.mean,
                "rounds_max": hitting.summary.maximum,
                "censored": hitting.censored,
            }))
        for delta in _deltas(quick):
            hitting = measure_approx_equilibrium_times(
                factory, protocol, delta, _FIXED_EPSILON,
                trials=resolved_trials, max_rounds=max_rounds,
                rng=derive_rng(seed, "delta-sweep", int(delta * 1000)),
                engine="loop",
            )
            rows.append(_legacy_row("delta", {
                "epsilon": _FIXED_EPSILON, "delta": delta,
                "rounds_mean": hitting.summary.mean,
                "rounds_max": hitting.summary.maximum,
                "censored": hitting.censored,
            }))

    eps_rows = [row for row in rows if row["sweep"] == "epsilon"]
    delta_rows = [row for row in rows if row["sweep"] == "delta"]
    notes = []
    eps_growth = eps_rows[-1]["mean_rounds"] / max(eps_rows[0]["mean_rounds"], 1e-9)
    eps_bound_growth = (eps_rows[-1]["bound_term_1/(eps^2*delta)"]
                        / eps_rows[0]["bound_term_1/(eps^2*delta)"])
    notes.append(
        f"tightening eps from {eps_rows[0]['epsilon']} to {eps_rows[-1]['epsilon']} grew the "
        f"measured time by x{eps_growth:.2f} while the bound term grew by x{eps_bound_growth:.1f} "
        "(measured growth stays below the bound's growth, as expected for an upper bound)"
    )
    delta_growth = delta_rows[-1]["mean_rounds"] / max(delta_rows[0]["mean_rounds"], 1e-9)
    delta_bound_growth = (delta_rows[-1]["bound_term_1/(eps^2*delta)"]
                          / delta_rows[0]["bound_term_1/(eps^2*delta)"])
    notes.append(
        f"tightening delta from {delta_rows[0]['delta']} to {delta_rows[-1]['delta']} grew the "
        f"measured time by x{delta_growth:.2f} (bound term x{delta_bound_growth:.1f})"
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Hitting time versus eps and delta",
        claim="Theorem 7 (polynomial dependence on 1/eps, 1/delta)",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": resolved_trials,
                    "num_players": resolved_players, "max_rounds": max_rounds,
                    "engine": engine, "workers": workers,
                    "sweep_spec_hashes": [spec.content_hash()
                                          for _, spec in specs]},
    )
