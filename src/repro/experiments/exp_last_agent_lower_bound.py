"""E10 — The Omega(n) lower bound for fully satisfied populations (Section 4).

At the end of Section 4 the paper explains why the relaxation to "all but a
delta fraction" of the players is necessary: on an instance with ``n = 2m``
players and ``m`` identical linear links, loaded ``(3, 1, 2, 2, ..., 2)``,
exactly one improvement move exists (a player on the overloaded link moving
to the underloaded one) and any protocol that works by sampling a strategy or
a player finds it with probability at most ``O(1/n)`` per round — so reaching
a state in which *every* player is approximately satisfied takes Omega(n)
rounds in expectation.

The experiment builds exactly that instance for growing ``m``, runs the
IMITATION PROTOCOL (without the ``nu`` threshold, which would otherwise
freeze the gain-1 move entirely) until the unique Nash equilibrium
``(2, ..., 2)`` is reached, and checks that the measured expected hitting
time grows linearly in ``n`` — in sharp contrast to the logarithmic growth
measured for delta > 0 in experiment E2.
"""

from __future__ import annotations

import numpy as np

from ..analysis.convergence import (
    fit_linear,
    fit_power_law,
    measure_hitting_times,
    measure_hitting_times_ensemble,
)
from ..core.ensemble import batch_stop_at_nash
from ..core.imitation import ImitationProtocol
from ..core.run import run_until_nash
from ..games.generators import identical_links_game
from ..games.state import GameState, batch_broadcast
from ..rng import derive_rng
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_last_agent_lower_bound_experiment"]


def _section4_start(num_links: int) -> GameState:
    """The start state (3, 1, 2, 2, ..., 2) of the Section 4 example."""
    counts = np.full(num_links, 2, dtype=np.int64)
    counts[0] = 3
    counts[1] = 1
    return GameState(counts)


@register(
    "E10",
    "Omega(n) rounds to satisfy the last player (delta = 0)",
    "Section 4 (closing remark): any sampling protocol needs Omega(n) expected "
    "rounds to reach a state where *all* players are approximately satisfied.",
)
def run_last_agent_lower_bound_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    engine: str = "batch",
) -> ExperimentResult:
    """Run experiment E10 and return its result table."""
    trials = trials if trials is not None else pick(quick, 10, 40)
    link_counts = pick_list(quick, [8, 16, 32, 64], [8, 16, 32, 64, 128, 256])
    protocol = ImitationProtocol(lambda_=1.0, use_nu_threshold=False)

    rows: list[dict] = []
    mean_times: list[float] = []
    ns: list[int] = []
    for num_links in link_counts:
        num_players = 2 * num_links
        game = identical_links_game(num_players, num_links)
        start = _section4_start(num_links)
        max_rounds = 200 * num_players

        if engine == "batch":
            hitting = measure_hitting_times_ensemble(
                game, protocol, batch_stop_at_nash(),
                trials=trials, max_rounds=max_rounds,
                rng=derive_rng(seed, "e10", num_links),
                initial_states=batch_broadcast(start, trials),
            )
        else:
            def run_one(generator, game=game, start=start, max_rounds=max_rounds):
                return run_until_nash(
                    game, protocol, initial_state=start, max_rounds=max_rounds, rng=generator,
                )

            hitting = measure_hitting_times(
                run_one, trials=trials, rng=derive_rng(seed, "e10", num_links),
            )
        ns.append(num_players)
        mean_times.append(hitting.summary.mean)
        rows.append({
            "links_m": num_links,
            "players_n": num_players,
            "mean_rounds_to_nash": hitting.summary.mean,
            "median_rounds": hitting.summary.median,
            "rounds_per_player": hitting.summary.mean / num_players,
            "censored_trials": hitting.censored,
        })

    notes: list[str] = []
    linear_fit = fit_linear(ns, mean_times)
    power_fit = fit_power_law(ns, [max(t, 1e-9) for t in mean_times])
    notes.append(
        f"linear fit: {linear_fit.coefficients[1]:.3f} rounds per player "
        f"(r^2={linear_fit.r_squared:.3f}); power-law exponent {power_fit.coefficients[1]:.2f} "
        "(~1 confirms the Omega(n) growth)"
    )
    notes.append(
        "rounds per player stays roughly constant across n — the hitting time is linear in n, "
        "in contrast to the logarithmic growth measured for delta > 0 in E2"
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Omega(n) lower bound for delta = 0",
        claim="Section 4, closing remark",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "link_counts": link_counts, "engine": engine},
    )
