"""E6 — Length of sequential imitation dynamics (Theorem 6).

Theorem 6 states that there are symmetric network congestion games (obtained
by lifting quadratic threshold games built from hard local-MaxCut instances)
in which *every* sequence of sequential imitation moves that reaches an
imitation-stable state is exponentially long.

Reproduction scope (documented substitution): the full PLS reduction chain
(MaxCut -> threshold -> asymmetric -> symmetric network game) of Ackermann,
Roeglin and Voecking is not materialised as a network; the experiment works
at the quadratic-threshold-game level, which is where the combinatorial
hardness lives, and applies the paper's three-copies-per-player lifting so
that best-response moves become imitation moves.  Two quantities are
reported for geometrically weighted instances of growing size:

* ``longest_improvement_sequence`` — the *exact* worst-case length of an
  improving-flip schedule of the underlying local-MaxCut game, computed by
  exhaustive longest-path search over all ``2^k`` cuts and maximised over a
  pool of random weight matrices (this is the quantity the hand-crafted hard
  instances of [1] blow up exponentially; random instances of these small
  sizes exhibit clearly super-linear — though not yet exponential — growth,
  which is the measurable signature at laptop scale);
* ``imitation_moves`` — the number of single-player imitation moves an
  adversarial (smallest-gain-first) scheduler performs on the *lifted*
  three-copy game built from the worst weight matrix found, maximised over
  several initial cuts.

The reproduced shape: both counts grow clearly faster than the number of
players, while every run still terminates at an imitation-stable state
(the potential argument of Section 3).

The inner move loop is inherently serial, so the engine migration
parallelises over *replicas*: the candidate start cuts of an instance fan
out across the sweep scheduler's worker pool through
:func:`repro.core.sequential.run_sequential_ensemble`, with per-replica
seed sequences spawned up front — the table is bit-identical for any
``workers`` value.  Runs truncated by ``max_steps`` are excluded from the
stability verdict and counted in ``truncated_runs``.
"""

from __future__ import annotations

import numpy as np

from ..core.sequential import run_sequential_ensemble
from ..games.threshold import (
    lift_for_imitation,
    longest_improvement_sequence,
    random_weight_matrix,
)
from ..rng import derive_rng
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_sequential_lower_bound_experiment"]


def _max_imitation_moves(game, base_players: int, *, candidate_cuts: int,
                         max_steps: int, rng, workers: int = 1
                         ) -> tuple[int, bool, int]:
    """Maximum min-gain imitation sequence length over several start cuts.

    The start cuts' trajectories run as one replica ensemble over the worker
    pool.  Returns ``(max moves, all converged runs imitation-stable,
    truncated runs)``.
    """
    cuts = [np.zeros(base_players, dtype=np.int64), np.ones(base_players, dtype=np.int64)]
    for _ in range(candidate_cuts):
        cuts.append(rng.integers(0, 2, size=base_players).astype(np.int64))
    profiles = [game.profile_from_cut_lifted(cut) for cut in cuts]
    ensemble = run_sequential_ensemble(
        game, profiles, pivot="min-gain", max_steps=max_steps, rng=rng,
        workers=workers,
    )
    best_moves = int(ensemble.steps.max())
    all_stable = all(game.is_imitation_stable(result.final)
                     for result in ensemble.results if result.converged)
    return best_moves, all_stable, ensemble.num_truncated


@register(
    "E6",
    "Length of sequential imitation dynamics on lifted threshold games",
    "Theorem 6: there are instances on which every sequential imitation "
    "sequence to an imitation-stable state is exponentially long.",
)
def run_sequential_lower_bound_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, max_steps: int | None = None,
    workers: int = 1,
) -> ExperimentResult:
    """Run experiment E6 and return its result table."""
    base_player_counts = pick_list(quick, [3, 4, 5, 6], [3, 4, 5, 6, 7, 8, 9, 10])
    max_steps = max_steps if max_steps is not None else pick(quick, 50_000, 1_000_000)
    candidate_cuts = pick(quick, 4, 16)
    instance_pool = pick(quick, 10, 40)

    rows: list[dict] = []
    longest: list[float] = []
    total_truncated = 0
    for base_players in base_player_counts:
        gen = derive_rng(seed, "e6", base_players)
        # Search a pool of random weight matrices for the one with the longest
        # worst-case improvement schedule (stand-in for the crafted hard
        # instances of the PLS reduction).
        worst_case = -1
        worst_weights = None
        for _ in range(instance_pool):
            weights = random_weight_matrix(base_players, rng=gen)
            length = longest_improvement_sequence(weights)
            if length > worst_case:
                worst_case = length
                worst_weights = weights
        assert worst_weights is not None
        game = lift_for_imitation(worst_weights)
        moves, stable, truncated = _max_imitation_moves(
            game, base_players, candidate_cuts=candidate_cuts,
            max_steps=max_steps, rng=gen, workers=workers,
        )
        total_truncated += truncated
        longest.append(float(worst_case))
        rows.append({
            "base_players": base_players,
            "lifted_players": game.num_players,
            "longest_improvement_sequence": worst_case,
            "sequence_per_player": worst_case / base_players,
            "imitation_moves": moves,
            "final_imitation_stable": stable,
            "truncated_runs": truncated,
        })

    notes: list[str] = []
    ratios = [longest[i + 1] / max(longest[i], 1.0) for i in range(len(longest) - 1)]
    notes.append(
        "growth factors of the exact worst-case sequence length per extra player: "
        + ", ".join(f"{r:.2f}" for r in ratios)
    )
    per_player = [row["sequence_per_player"] for row in rows]
    if per_player[-1] > per_player[0]:
        notes.append(
            "the worst-case sequence length grows super-linearly in the number of players "
            f"({per_player[0]:.1f} moves/player at k={rows[0]['base_players']} vs "
            f"{per_player[-1]:.1f} at k={rows[-1]['base_players']}) — the qualitative signature "
            "of the Theorem 6 lower bound at these instance sizes"
        )
    if total_truncated:
        notes.append(
            f"{total_truncated} sequential run(s) hit the {max_steps}-step budget "
            "before reaching an imitation-stable state; they are counted in "
            "truncated_runs and excluded from the stability verdict"
        )
    notes.append(
        "substitution: the measurement is performed on (lifted) quadratic threshold games — "
        "the PLS-hard core of the construction — built from the worst of a pool of random "
        "weight matrices rather than from the hand-crafted exponential instances of [1]; "
        "random instances of these sizes show super-linear (not yet exponential) growth; "
        "see DESIGN.md"
    )
    return ExperimentResult(
        experiment_id="E6",
        title="Sequential imitation lower bound",
        claim="Theorem 6",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "max_steps": max_steps,
                    "base_player_counts": base_player_counts,
                    "candidate_cuts": candidate_cuts,
                    "instance_pool": instance_pool,
                    "workers": workers},
    )
