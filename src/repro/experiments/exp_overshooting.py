"""E5 — Overshooting and the role of the 1/d damping (Section 2.3).

The paper motivates the ``1/d`` factor in the migration probability with a
two-link instance: link 1 has constant latency ``c`` and link 2 has latency
``x**d``.  When link 2 currently offers a latency advantage ``b = c - x_2**d``,
an *undamped* proportional imitation rule attracts an expected inflow that
raises the latency of link 2 by ``Theta(b * d)`` — overshooting the
anticipated gain ``b`` by a factor of roughly ``d`` (for ``d > 1`` the
migrants end up *worse* than before).  The damped IMITATION PROTOCOL keeps
the expected latency increase below ``b``.

The experiment prepares, for each degree ``d``, the state in which link 2
carries the load whose latency is 70% of ``c`` (so the gap ``b = 0.3 c``), and
measures over many independent single rounds

* the realised latency increase of link 2 divided by the gap ``b`` (the
  *overshoot ratio* — approximately ``lambda * 0.7 * d`` undamped versus
  ``lambda * 0.7`` damped),
* whether the post-round latency of link 2 exceeds ``c`` (migrants worse off),
* the realised one-round potential change,
* the rate of potential increases along a longer trajectory.

The (degree, protocol) grid is a :class:`~repro.sweeps.spec.SweepSpec`
(:func:`overshoot_spec`, CLI ``--preset overshoot``) driving the
``overshoot_ratio`` kernel.  ``engine="batch"`` (default) draws all trial
rounds as one stacked multinomial and runs the drift trajectories through
the ensemble engine; ``engine="loop"`` replays the same per-replica random
streams through the scalar engine — the two tables are bit-identical (the
engine-parity tests assert this).
"""

from __future__ import annotations

from ..sweeps import SweepSpec, run_sweep
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register
from .reporting import find_row
from .sweep_bridge import run_spec_points

__all__ = ["run_overshooting_experiment", "overshoot_spec"]

#: Fraction of the constant latency that link 2 offers in the prepared start
#: state (the latency gap is therefore 30% of c).
START_LATENCY_FRACTION = 0.7

#: Sweep-axis protocol identifiers -> experiment-table display labels.
PROTOCOL_LABELS = {
    "imitation": "imitation (1/d damped)",
    "proportional": "proportional (undamped)",
}


def overshoot_spec(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, drift_trials: int = 3,
) -> SweepSpec:
    """The E5 grid as a declarative sweep over (degree, protocol)."""
    trials = trials if trials is not None else pick(quick, 20, 100)
    num_players = num_players if num_players is not None else pick(quick, 1000, 4000)
    degrees = pick_list(quick, [1, 2, 4], [1, 2, 4, 6, 8])
    return SweepSpec(
        name="e5-overshoot",
        game="two-link",
        protocol="imitation",
        measure="overshoot_ratio",
        axes={"degree": degrees, "protocol": ["imitation", "proportional"]},
        base={"n": num_players, "lambda_": 1.0, "use_nu_threshold": False,
              "start_latency_fraction": START_LATENCY_FRACTION,
              "drift_rounds": pick(quick, 30, 100), "drift_trials": drift_trials},
        replicas=trials,
        max_rounds=pick(quick, 30, 100),
        seed=seed,
    )


@register(
    "E5",
    "Overshooting of undamped proportional imitation versus the 1/d-damped protocol",
    "Section 2.3: without the 1/d damping the expected latency increase on the "
    "fast link is Theta(b*d), overshooting the anticipated gain b by a factor "
    "of about d; with the damping it stays below b.",
)
def run_overshooting_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, drift_trials: int = 3, engine: str = "batch",
    workers: int = 1, store=None,
) -> ExperimentResult:
    """Run experiment E5 and return its result table."""
    spec = overshoot_spec(quick=quick, seed=seed, trials=trials,
                          num_players=num_players, drift_trials=drift_trials)
    degrees = list(spec.axes["degree"])

    if engine == "batch":
        sweep_rows = run_sweep(spec, workers=workers, store=store).rows
    else:
        sweep_rows = run_spec_points(spec, engine=engine)

    rows = [{
        "degree_d": row["degree"],
        "protocol": PROTOCOL_LABELS[row["protocol"]],
        "latency_gap_b": row["latency_gap_b"],
        "mean_overshoot_ratio": row["mean_overshoot_ratio"],
        "migrants_worse_off_fraction": row["migrants_worse_off_fraction"],
        "mean_potential_change_1_round": row["mean_potential_change_1_round"],
        "potential_increase_rate_long_run": row["potential_increase_rate_long_run"],
    } for row in sweep_rows]

    notes: list[str] = []
    for degree in degrees:
        damped = find_row(rows, degree_d=degree,
                          protocol=PROTOCOL_LABELS["imitation"])
        undamped = find_row(rows, degree_d=degree,
                            protocol=PROTOCOL_LABELS["proportional"])
        notes.append(
            f"d={degree}: latency increase / anticipated gain = "
            f"{undamped['mean_overshoot_ratio']:.2f} (undamped) vs "
            f"{damped['mean_overshoot_ratio']:.2f} (damped)"
        )
    damped_max = max(r["mean_overshoot_ratio"] for r in rows
                     if r["protocol"].startswith("imitation"))
    notes.append(
        f"the damped protocol's latency increase never exceeds the anticipated gain "
        f"(max ratio {damped_max:.2f} <= 1) while the undamped ratio grows roughly "
        "linearly in d — the Theta(b*d) overshoot of Section 2.3"
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Overshooting ablation (1/d damping)",
        claim="Section 2.3 overshooting example",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": spec.replicas,
                    "num_players": spec.base["n"], "degrees": degrees,
                    "start_latency_fraction": START_LATENCY_FRACTION,
                    "engine": engine, "workers": workers,
                    "sweep_spec_hash": spec.content_hash()},
    )
