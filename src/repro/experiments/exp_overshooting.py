"""E5 — Overshooting and the role of the 1/d damping (Section 2.3).

The paper motivates the ``1/d`` factor in the migration probability with a
two-link instance: link 1 has constant latency ``c`` and link 2 has latency
``x**d``.  When link 2 currently offers a latency advantage ``b = c - x_2**d``,
an *undamped* proportional imitation rule attracts an expected inflow that
raises the latency of link 2 by ``Theta(b * d)`` — overshooting the
anticipated gain ``b`` by a factor of roughly ``d`` (for ``d > 1`` the
migrants end up *worse* than before).  The damped IMITATION PROTOCOL keeps
the expected latency increase below ``b``.

The experiment prepares, for each degree ``d``, the state in which link 2
carries the load whose latency is 70% of ``c`` (so the gap ``b = 0.3 c``), and
measures over many independent single rounds

* the realised latency increase of link 2 divided by the gap ``b`` (the
  *overshoot ratio* — approximately ``lambda * 0.7 * d`` undamped versus
  ``lambda * 0.7`` damped),
* whether the post-round latency of link 2 exceeds ``c`` (migrants worse off),
* the realised one-round potential change,
* the rate of potential increases along a longer trajectory.
"""

from __future__ import annotations

import numpy as np

from ..analysis.martingale import potential_increase_rate
from ..baselines.proportional_sampling import ProportionalImitationProtocol
from ..core.dynamics import step
from ..core.imitation import ImitationProtocol
from ..games.generators import two_link_overshoot_game
from ..games.state import GameState
from ..rng import derive_rng, spawn_rngs
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_overshooting_experiment"]

#: Fraction of the constant latency that link 2 offers in the prepared start
#: state (the latency gap is therefore 30% of c).
START_LATENCY_FRACTION = 0.7


def _prepared_start(game, degree: float) -> GameState:
    """State in which link 2's latency is ``START_LATENCY_FRACTION * c``."""
    constant_latency = float(game.latencies[0].value(np.asarray(0.0)))
    target_latency = START_LATENCY_FRACTION * constant_latency
    # l_2(x) = x**degree  =>  x = target**(1/degree)
    power_load = int(round(target_latency ** (1.0 / degree)))
    power_load = min(max(power_load, 1), game.num_players - 1)
    counts = np.array([game.num_players - power_load, power_load], dtype=np.int64)
    return GameState(counts)


@register(
    "E5",
    "Overshooting of undamped proportional imitation versus the 1/d-damped protocol",
    "Section 2.3: without the 1/d damping the expected latency increase on the "
    "fast link is Theta(b*d), overshooting the anticipated gain b by a factor "
    "of about d; with the damping it stays below b.",
)
def run_overshooting_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None,
) -> ExperimentResult:
    """Run experiment E5 and return its result table."""
    trials = trials if trials is not None else pick(quick, 20, 100)
    num_players = num_players if num_players is not None else pick(quick, 1000, 4000)
    degrees = pick_list(quick, [1, 2, 4], [1, 2, 4, 6, 8])

    protocols = {
        "imitation (1/d damped)": lambda: ImitationProtocol(lambda_=1.0, use_nu_threshold=False),
        "proportional (undamped)": lambda: ProportionalImitationProtocol(
            lambda_=1.0, use_nu_threshold=False),
    }

    rows: list[dict] = []
    for degree in degrees:
        game = two_link_overshoot_game(num_players, float(degree))
        start = _prepared_start(game, float(degree))
        start_loads = game.congestion(start)
        constant_latency = float(game.latencies[0].value(np.asarray(0.0)))
        power_latency_before = float(game.latencies[1].value(np.asarray(start_loads[1])))
        gap = constant_latency - power_latency_before
        start_potential = game.potential(start)
        for protocol_name, protocol_factory in protocols.items():
            protocol = protocol_factory()
            generators = spawn_rngs(derive_rng(seed, "overshoot", degree, protocol_name), trials)
            overshoot_ratios: list[float] = []
            migrants_worse_off: list[bool] = []
            potential_changes: list[float] = []
            for generator in generators:
                outcome = step(game, protocol, start, rng=generator)
                loads = game.congestion(outcome.state)
                power_latency_after = float(game.latencies[1].value(np.asarray(loads[1])))
                overshoot_ratios.append((power_latency_after - power_latency_before) / gap)
                migrants_worse_off.append(power_latency_after > constant_latency)
                potential_changes.append(game.potential(outcome.state) - start_potential)
            drift = potential_increase_rate(
                game, protocol, rounds=pick(quick, 30, 100), trials=3,
                initial_state=start,
                rng=derive_rng(seed, "overshoot-run", degree, protocol_name),
            )
            rows.append({
                "degree_d": degree,
                "protocol": protocol_name,
                "latency_gap_b": gap,
                "mean_overshoot_ratio": float(np.mean(overshoot_ratios)),
                "migrants_worse_off_fraction": float(np.mean(migrants_worse_off)),
                "mean_potential_change_1_round": float(np.mean(potential_changes)),
                "potential_increase_rate_long_run": drift["increase_rate"],
            })

    notes: list[str] = []
    for degree in degrees:
        damped = next(r for r in rows if r["degree_d"] == degree
                      and r["protocol"].startswith("imitation"))
        undamped = next(r for r in rows if r["degree_d"] == degree
                        and r["protocol"].startswith("proportional"))
        notes.append(
            f"d={degree}: latency increase / anticipated gain = "
            f"{undamped['mean_overshoot_ratio']:.2f} (undamped) vs "
            f"{damped['mean_overshoot_ratio']:.2f} (damped)"
        )
    damped_max = max(r["mean_overshoot_ratio"] for r in rows
                     if r["protocol"].startswith("imitation"))
    notes.append(
        f"the damped protocol's latency increase never exceeds the anticipated gain "
        f"(max ratio {damped_max:.2f} <= 1) while the undamped ratio grows roughly "
        "linearly in d — the Theta(b*d) overshoot of Section 2.3"
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Overshooting ablation (1/d damping)",
        claim="Section 2.3 overshooting example",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "num_players": num_players, "degrees": degrees,
                    "start_latency_fraction": START_LATENCY_FRACTION},
    )
