"""E13 (extension) — virtual agents restore innovativeness (Section 6).

Section 6 lists three remedies for the non-innovativeness of imitation; the
second one adds a virtual agent to every strategy so that the sampling
probability of a strategy never drops to zero.  This extension experiment
starts from the adversarial all-on-the-slowest-link state (the same workload
as E9) and compares

* plain imitation (stuck forever),
* virtual-agent imitation (recovers the unused strategies through sampling),
* the exploration/imitation hybrid (the third remedy, for reference),

reporting whether a Nash equilibrium is reached, how many rounds it takes and
the final social cost.
"""

from __future__ import annotations

import numpy as np

from ..core.hybrid import make_hybrid_protocol
from ..core.imitation import ImitationProtocol
from ..core.run import run_until_nash
from ..core.virtual_agents import VirtualAgentImitationProtocol
from ..games.nash import is_nash
from ..games.optimum import compute_social_optimum
from ..games.singleton import make_linear_singleton
from ..games.state import GameState
from ..rng import derive_rng, spawn_rngs
from .config import DEFAULTS, pick
from .registry import ExperimentResult, register

__all__ = ["run_virtual_agents_experiment"]


@register(
    "E13",
    "Virtual agents restore innovativeness (extension)",
    "Section 6 (second alternative): adding a virtual agent to every strategy "
    "keeps the sampling probability of unused strategies positive, so the "
    "dynamics can rediscover them and converge to a Nash equilibrium.",
)
def run_virtual_agents_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None,
) -> ExperimentResult:
    """Run experiment E13 and return its result table."""
    trials = trials if trials is not None else pick(quick, 3, 10)
    num_players = num_players if num_players is not None else pick(quick, 40, 120)
    max_rounds = pick(quick, 50_000, 500_000)
    coefficients = [1.0, 2.0, 4.0, 8.0]
    game = make_linear_singleton(num_players, coefficients)
    optimum = compute_social_optimum(game)

    slowest = int(np.argmax(coefficients))
    start_counts = np.zeros(len(coefficients), dtype=np.int64)
    start_counts[slowest] = num_players
    start = GameState(start_counts)

    protocols = {
        "imitation (plain)": ImitationProtocol(use_nu_threshold=False),
        "imitation + virtual agents": VirtualAgentImitationProtocol(),
        "hybrid (imitation/exploration)": make_hybrid_protocol(use_nu_threshold=False),
    }

    rows: list[dict] = []
    for protocol_name, protocol in protocols.items():
        generators = spawn_rngs(derive_rng(seed, "e13", protocol_name), trials)
        reached: list[bool] = []
        rounds_used: list[float] = []
        final_costs: list[float] = []
        for generator in generators:
            result = run_until_nash(game, protocol, initial_state=start,
                                    max_rounds=max_rounds, rng=generator)
            reached.append(bool(is_nash(game, result.final_state)))
            rounds_used.append(float(result.rounds))
            final_costs.append(float(game.social_cost(result.final_state)))
        rows.append({
            "protocol": protocol_name,
            "trials": trials,
            "nash_reached_fraction": float(np.mean(reached)),
            "mean_rounds": float(np.mean(rounds_used)),
            "mean_final_cost": float(np.mean(final_costs)),
            "cost_over_optimum": float(np.mean(final_costs)) / optimum.social_cost,
        })

    by_name = {row["protocol"]: row for row in rows}
    notes: list[str] = []
    notes.append(
        "plain imitation never escapes the all-on-one-strategy start "
        f"(Nash fraction {by_name['imitation (plain)']['nash_reached_fraction']:.2f})"
    )
    notes.append(
        "virtual-agent imitation reaches a Nash equilibrium in "
        f"{by_name['imitation + virtual agents']['nash_reached_fraction']:.2f} of trials after "
        f"{by_name['imitation + virtual agents']['mean_rounds']:.0f} rounds on average — the "
        "Section 6 claim that a single virtual agent per strategy restores innovativeness"
    )
    return ExperimentResult(
        experiment_id="E13",
        title="Virtual agents restore innovativeness",
        claim="Section 6, second alternative (extension)",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "num_players": num_players, "coefficients": coefficients,
                    "max_rounds": max_rounds},
    )
