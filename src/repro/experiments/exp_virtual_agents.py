"""E13 (extension) — virtual agents restore innovativeness (Section 6).

Section 6 lists three remedies for the non-innovativeness of imitation; the
second one adds a virtual agent to every strategy so that the sampling
probability of a strategy never drops to zero.  This extension experiment
starts from the adversarial all-on-the-slowest-link state (the same workload
as E9) and compares

* plain imitation (stuck forever),
* virtual-agent imitation (recovers the unused strategies through sampling),
* the exploration/imitation hybrid (the third remedy, for reference),

reporting whether a Nash equilibrium is reached, how many rounds it takes and
the final social cost.

The protocol axis is a :class:`~repro.sweeps.spec.SweepSpec`
(:func:`virtual_agents_spec`, CLI ``--preset virtual-agents``) driving the
``virtual_agent_nash`` kernel.  ``engine="batch"`` (default) advances all
trials through the ensemble engine with per-replica random streams;
``engine="loop"`` replays the same streams through the scalar engine —
bit-identical tables.  ``mean_rounds`` averages over *converged* trials
only; trials that exhausted the round budget are counted in
``non_converged_trials``.
"""

from __future__ import annotations

from ..sweeps import SweepSpec, run_sweep
from .config import DEFAULTS, pick
from .registry import ExperimentResult, register
from .reporting import find_row
from .sweep_bridge import run_spec_points

__all__ = ["run_virtual_agents_experiment", "virtual_agents_spec"]

#: The fixed slowest-to-fastest link speeds of the E13 instance.
LINK_COEFFICIENTS = [1.0, 2.0, 4.0, 8.0]

#: Sweep-axis protocol identifiers -> experiment-table display labels.
PROTOCOL_LABELS = {
    "imitation": "imitation (plain)",
    "virtual-agents": "imitation + virtual agents",
    "hybrid": "hybrid (imitation/exploration)",
}


def virtual_agents_spec(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None,
) -> SweepSpec:
    """The E13 protocol comparison as a declarative sweep."""
    trials = trials if trials is not None else pick(quick, 3, 10)
    num_players = num_players if num_players is not None else pick(quick, 40, 120)
    return SweepSpec(
        name="e13-virtual-agents",
        game="linear-singleton",
        protocol="imitation",
        measure="virtual_agent_nash",
        axes={"protocol": list(PROTOCOL_LABELS)},
        base={"n": num_players, "coeffs": LINK_COEFFICIENTS,
              "use_nu_threshold": False},
        replicas=trials,
        max_rounds=pick(quick, 50_000, 500_000),
        seed=seed,
    )


@register(
    "E13",
    "Virtual agents restore innovativeness (extension)",
    "Section 6 (second alternative): adding a virtual agent to every strategy "
    "keeps the sampling probability of unused strategies positive, so the "
    "dynamics can rediscover them and converge to a Nash equilibrium.",
)
def run_virtual_agents_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, engine: str = "batch",
    workers: int = 1, store=None,
) -> ExperimentResult:
    """Run experiment E13 and return its result table."""
    spec = virtual_agents_spec(quick=quick, seed=seed, trials=trials,
                               num_players=num_players)

    if engine == "batch":
        sweep_rows = run_sweep(spec, workers=workers, store=store).rows
    else:
        sweep_rows = run_spec_points(spec, engine=engine)

    rows = [{
        "protocol": PROTOCOL_LABELS[row["protocol"]],
        "trials": row["trials"],
        "nash_reached_fraction": row["nash_reached_fraction"],
        "mean_rounds": row["mean_rounds_converged"],
        "non_converged_trials": row["non_converged_trials"],
        "mean_final_cost": row["mean_final_cost"],
        "cost_over_optimum": row["cost_over_optimum"],
    } for row in sweep_rows]

    plain = find_row(rows, protocol=PROTOCOL_LABELS["imitation"])
    virtual = find_row(rows, protocol=PROTOCOL_LABELS["virtual-agents"])
    notes: list[str] = []
    notes.append(
        "plain imitation never escapes the all-on-one-strategy start "
        f"(Nash fraction {plain['nash_reached_fraction']:.2f})"
    )
    notes.append(
        "virtual-agent imitation reaches a Nash equilibrium in "
        f"{virtual['nash_reached_fraction']:.2f} of trials after "
        f"{virtual['mean_rounds'] or 0:.0f} rounds on average — the "
        "Section 6 claim that a single virtual agent per strategy restores innovativeness"
    )
    truncated = sum(row["non_converged_trials"] for row in rows)
    if truncated:
        notes.append(f"{truncated} trial(s) exhausted the round budget without "
                     "converging and are excluded from the mean_rounds column")
    return ExperimentResult(
        experiment_id="E13",
        title="Virtual agents restore innovativeness",
        claim="Section 6, second alternative (extension)",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": spec.replicas,
                    "num_players": spec.base["n"],
                    "coefficients": LINK_COEFFICIENTS,
                    "max_rounds": spec.max_rounds,
                    "engine": engine, "workers": workers,
                    "sweep_spec_hash": spec.content_hash()},
    )
