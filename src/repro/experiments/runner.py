"""Run the whole experiment suite and render reports.

Used by the command-line interface (``python -m repro run-all``) and by the
documentation workflow that regenerates the measured tables in
``EXPERIMENTS.md``.  With ``jobs > 1`` the independent experiments are
distributed over the sweep scheduler's worker pool
(:func:`repro.sweeps.parallel_map`), so the suite parallelises the same way
a sharded parameter sweep does.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from ..errors import ExperimentError
from ..sweeps.scheduler import parallel_map
from ..telemetry import DEFAULT_DURATION_BUCKETS, MetricsRegistry
from .registry import ExperimentResult, list_experiments, run_experiment

__all__ = ["run_all", "render_report", "render_markdown_report"]


def _run_one(payload: tuple[str, dict]) -> ExperimentResult:
    """Pool worker: run one experiment and record its wall clock."""
    experiment_id, kwargs = payload
    started = time.perf_counter()
    result = run_experiment(experiment_id, **kwargs)
    elapsed = time.perf_counter() - started
    result.parameters.setdefault("wall_clock_seconds", round(elapsed, 2))
    return result


def run_all(
    *,
    quick: bool = True,
    seed: int = 2009,
    only: Optional[Iterable[str]] = None,
    verbose: bool = False,
    engine: str = "batch",
    jobs: int = 1,
    registry: Optional[MetricsRegistry] = None,
) -> dict[str, ExperimentResult]:
    """Run every registered experiment (or the subset in ``only``).

    ``engine`` selects the round engine ("batch" runs each experiment's
    replicas as one vectorized ensemble, "loop" one trajectory at a time) for
    every experiment that simulates concurrent rounds; ``jobs`` distributes
    independent experiments over that many worker processes.  Unknown
    identifiers in ``only`` raise :class:`~repro.errors.ExperimentError`
    listing the valid ones.  Returns a mapping from experiment identifier to
    its result, in registry order.

    ``registry`` (an optional :class:`~repro.telemetry.MetricsRegistry`)
    collects ``experiments_run_total`` and a per-experiment
    ``experiment_seconds{experiment=...}`` duration histogram — the same
    wall clocks recorded in each result's ``wall_clock_seconds``, exposed
    as mergeable metrics for embedding callers.
    """
    specs = list_experiments()
    known = {spec.experiment_id for spec in specs}
    wanted = {identifier.upper() for identifier in only} if only is not None else None
    if wanted is not None:
        unknown = sorted(wanted - known)
        if unknown:
            raise ExperimentError(
                f"unknown experiment id(s) {unknown}; "
                f"known: {', '.join(sorted(known, key=lambda k: (len(k), k)))}"
            )
    selected = [spec.experiment_id for spec in specs
                if wanted is None or spec.experiment_id in wanted]

    kwargs = {"quick": quick, "seed": seed, "engine": engine}
    payloads = [(experiment_id, kwargs) for experiment_id in selected]
    ordered: list[Optional[ExperimentResult]] = [None] * len(payloads)
    for index, result in parallel_map(_run_one, payloads, workers=jobs):
        ordered[index] = result
        if registry is not None:
            registry.counter("experiments_run_total",
                             "Experiments executed by run_all").inc()
            registry.histogram(
                "experiment_seconds", "Wall time per experiment",
                DEFAULT_DURATION_BUCKETS,
                experiment=result.experiment_id,
            ).observe(float(result.parameters.get("wall_clock_seconds", 0.0)))
        if verbose and jobs <= 1:
            print(result.render())
            print()
    results = {result.experiment_id: result for result in ordered
               if result is not None}
    if verbose and jobs > 1:
        for result in results.values():
            print(result.render())
            print()
    return results


def render_report(results: dict[str, ExperimentResult]) -> str:
    """Plain-text report over all experiment results."""
    parts = []
    for result in results.values():
        parts.append(result.render())
        parts.append("")
    return "\n".join(parts)


def render_markdown_report(results: dict[str, ExperimentResult]) -> str:
    """Markdown report over all experiment results (EXPERIMENTS.md body)."""
    parts = []
    for result in results.values():
        parts.append(result.render_markdown())
        parts.append("")
    return "\n".join(parts)
