"""Run the whole experiment suite and render reports.

Used by the command-line interface (``python -m repro run-all``) and by the
documentation workflow that regenerates the measured tables in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from .registry import ExperimentResult, list_experiments, run_experiment

__all__ = ["run_all", "render_report", "render_markdown_report"]


def run_all(
    *,
    quick: bool = True,
    seed: int = 2009,
    only: Optional[Iterable[str]] = None,
    verbose: bool = False,
    engine: str = "batch",
) -> dict[str, ExperimentResult]:
    """Run every registered experiment (or the subset in ``only``).

    ``engine`` selects the round engine ("batch" runs each experiment's
    replicas as one vectorized ensemble, "loop" one trajectory at a time) for
    every experiment that simulates concurrent rounds.  Returns a mapping
    from experiment identifier to its result, in registry order.
    """
    wanted = {identifier.upper() for identifier in only} if only is not None else None
    results: dict[str, ExperimentResult] = {}
    for spec in list_experiments():
        if wanted is not None and spec.experiment_id not in wanted:
            continue
        started = time.perf_counter()
        result = run_experiment(spec.experiment_id, quick=quick, seed=seed, engine=engine)
        elapsed = time.perf_counter() - started
        result.parameters.setdefault("wall_clock_seconds", round(elapsed, 2))
        results[spec.experiment_id] = result
        if verbose:
            print(result.render())
            print()
    return results


def render_report(results: dict[str, ExperimentResult]) -> str:
    """Plain-text report over all experiment results."""
    parts = []
    for result in results.values():
        parts.append(result.render())
        parts.append("")
    return "\n".join(parts)


def render_markdown_report(results: dict[str, ExperimentResult]) -> str:
    """Markdown report over all experiment results (EXPERIMENTS.md body)."""
    parts = []
    for result in results.values():
        parts.append(result.render_markdown())
        parts.append("")
    return "\n".join(parts)
