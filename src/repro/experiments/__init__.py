"""Experiment suite regenerating every quantitative claim of the paper.

See ``DESIGN.md`` (Section 5) for the experiment index and ``EXPERIMENTS.md``
for the paper-versus-measured record.  Experiments are registered under short
identifiers (E1..E10, F1) and run through :func:`run_experiment` /
:func:`run_all`.
"""

from .registry import (
    ExperimentResult,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    run_experiment,
)
from .reporting import render_markdown_table, render_table
from .runner import render_markdown_report, render_report, run_all

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "render_markdown_table",
    "render_table",
    "render_markdown_report",
    "render_report",
    "run_all",
]
