"""E4 — Dependence of the hitting time on the elasticity ``d``.

The Theorem 7 bound is ``O(d / (eps^2 delta) * log(Phi(x0)/Phi*))``.  When
sweeping monomial singleton games ``l_e(x) = a_e x**d`` the elasticity bound
is exactly ``d``, but the potential ratio ``Phi(x0)/Phi*`` also grows with
``d`` (steeper latencies amplify imbalances), so the full bound term is
``d * log(Phi(x0)/Phi*)``.  The experiment measures the hitting time of a
fixed (delta, eps, nu)-equilibrium for ``d = 1 .. d_max`` and reports it next
to both ``d`` and the full bound term.  The reproduced shape: the measured
time grows with ``d`` no faster than the bound term does (the ratio
measured / bound does not increase with ``d``).
"""

from __future__ import annotations

import numpy as np

from ..analysis.convergence import fit_linear, fit_power_law, measure_approx_equilibrium_times
from ..core.imitation import ImitationProtocol
from ..games.generators import random_monomial_singleton
from ..rng import derive_rng
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_elasticity_sweep_experiment"]


@register(
    "E4",
    "Hitting time versus the elasticity bound d",
    "Theorem 7: the expected convergence time grows (at most) linearly in the "
    "maximum elasticity d of the latency functions.",
)
def run_elasticity_sweep_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_players: int | None = None, engine: str = "batch", delta: float = 0.25, epsilon: float = 0.25,
) -> ExperimentResult:
    """Run experiment E4 and return its result table."""
    trials = trials if trials is not None else pick(quick, 5, 20)
    num_players = num_players if num_players is not None else pick(quick, 128, 512)
    max_rounds = DEFAULTS.max_rounds(quick)
    degrees = pick_list(quick, [1, 2, 4], [1, 2, 3, 4, 5, 6])

    rows: list[dict] = []
    mean_times: list[float] = []
    for degree in degrees:
        protocol = ImitationProtocol()

        def factory(d=degree):
            return random_monomial_singleton(num_players, 6, float(d), rng=seed)

        hitting = measure_approx_equilibrium_times(
            factory, protocol, delta, epsilon,
            trials=trials, max_rounds=max_rounds, rng=derive_rng(seed, "elasticity", degree),
            engine=engine,
        )
        game = factory()
        # Estimate the potential-ratio factor of the Theorem 7 bound: the
        # expected initial potential of the random initialisation over the
        # potential minimum.
        initial_potential = game.potential(game.uniform_random_state(derive_rng(seed, "phi", degree)))
        minimum_potential = game.minimum_potential(exhaustive_limit=pick(quick, 20_000, 100_000))
        log_ratio = float(np.log(max(initial_potential / max(minimum_potential, 1e-12), 1.0 + 1e-9)))
        bound_term = degree * log_ratio / (epsilon ** 2 * delta)
        mean_times.append(hitting.summary.mean)
        rows.append({
            "degree_d": degree,
            "elasticity_bound": game.elasticity_bound,
            "nu_bound": game.nu_bound,
            "log_phi_ratio": log_ratio,
            "bound_term_d*log/(eps^2*delta)": bound_term,
            "mean_rounds": hitting.summary.mean,
            "measured_over_bound": hitting.summary.mean / bound_term if bound_term > 0 else 0.0,
            "max_rounds": hitting.summary.maximum,
            "censored_trials": hitting.censored,
        })

    notes: list[str] = []
    if len(degrees) >= 3 and min(mean_times) > 0:
        linear_fit = fit_linear(degrees, mean_times)
        power_fit = fit_power_law(degrees, mean_times)
        notes.append(
            f"linear fit slope {linear_fit.coefficients[1]:.2f} rounds per unit of d "
            f"(r^2={linear_fit.r_squared:.3f}); power-law exponent {power_fit.coefficients[1]:.2f}"
        )
        ratios = [row["measured_over_bound"] for row in rows]
        if ratios[-1] <= ratios[0] * 1.5:
            notes.append(
                "the measured time grows no faster than the Theorem 7 bound term "
                f"d*log(Phi0/Phi*)/(eps^2*delta): measured/bound = {ratios[0]:.3f} at d={degrees[0]} "
                f"vs {ratios[-1]:.3f} at d={degrees[-1]}"
            )
        else:
            notes.append(
                "warning: the measured time grew faster than the Theorem 7 bound term — "
                "investigate (the bound is on expectations; increase the number of trials)"
            )
    return ExperimentResult(
        experiment_id="E4",
        title="Hitting time versus elasticity d",
        claim="Theorem 7 (linear dependence on d)",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "num_players": num_players, "delta": delta, "epsilon": epsilon,
                    "degrees": degrees, "max_rounds": max_rounds, "engine": engine},
    )
