"""Experiment registry.

Each experiment module registers a callable under a short identifier
(``"E1"``, ``"E7"``, ...).  The registry is what the CLI, the benchmark
harness and ``EXPERIMENTS.md`` regeneration iterate over, so every
quantitative claim of the paper has exactly one executable entry point.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..errors import ExperimentError
from .reporting import render_markdown_table, render_table

__all__ = ["ExperimentResult", "ExperimentSpec", "register", "get_experiment",
           "experiment_accepts", "list_experiments", "run_experiment"]


@dataclass
class ExperimentResult:
    """Uniform result object produced by every experiment.

    Attributes
    ----------
    experiment_id, title, claim:
        Identity of the experiment and the paper claim it reproduces.
    rows:
        The result table (one dictionary per row).
    notes:
        Free-form observations (fit qualities, pass/fail of the shape check).
    parameters:
        The parameters the experiment actually ran with (after quick-mode
        scaling), recorded for reproducibility.
    """

    experiment_id: str
    title: str
    claim: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    parameters: dict = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text report of this experiment."""
        parts = [f"[{self.experiment_id}] {self.title}",
                 f"claim: {self.claim}"]
        if self.parameters:
            params = ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            parts.append(f"parameters: {params}")
        parts.append(render_table(self.rows, title=None))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def render_markdown(self) -> str:
        """Markdown report of this experiment (for EXPERIMENTS.md)."""
        parts = [f"### {self.experiment_id} — {self.title}",
                 "",
                 f"*Claim:* {self.claim}",
                 "",
                 render_markdown_table(self.rows)]
        if self.notes:
            parts.append("")
            parts.extend(f"- {note}" for note in self.notes)
        return "\n".join(parts)


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment."""

    experiment_id: str
    title: str
    claim: str
    func: Callable[..., ExperimentResult]


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(experiment_id: str, title: str, claim: str
             ) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering an experiment function under ``experiment_id``."""

    def decorator(func: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"experiment {experiment_id!r} registered twice")
        _REGISTRY[experiment_id] = ExperimentSpec(experiment_id, title, claim, func)
        return func

    return decorator


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment (case-insensitive identifier)."""
    _ensure_loaded()
    key = experiment_id.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[key]


def list_experiments() -> list[ExperimentSpec]:
    """All registered experiments, ordered by identifier."""
    _ensure_loaded()
    return [
        _REGISTRY[key]
        for key in sorted(_REGISTRY, key=lambda k: (len(k), k))
    ]


#: Harness-level keywords forwarded only to experiments that accept them:
#: a suite-wide setting (engine, worker pool, trial count) must not break
#: experiments without that knob (e.g. E6 has no concurrent-round engine).
_OPTIONAL_KEYWORDS = ("engine", "workers", "trials", "store")


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by identifier.

    The ``engine`` keyword ("loop" or "batch") selects the round engine,
    ``workers``/``store`` drive the sweep scheduler of the grid-backed
    experiments and ``trials`` scales the Monte-Carlo replication.  Each is
    forwarded only to experiments that take it.
    """
    spec = get_experiment(experiment_id)
    dropped = [key for key in _OPTIONAL_KEYWORDS
               if key in kwargs and not _accepts_keyword(spec.func, key)]
    if dropped:
        kwargs = {key: value for key, value in kwargs.items() if key not in dropped}
    return spec.func(**kwargs)


def _accepts_keyword(func: Callable[..., ExperimentResult], name: str) -> bool:
    """True if ``func`` takes ``name`` as a keyword (directly or via **kwargs)."""
    parameters = inspect.signature(func).parameters
    if name in parameters:
        return True
    return any(parameter.kind is inspect.Parameter.VAR_KEYWORD
               for parameter in parameters.values())


def experiment_accepts(experiment_id: str, keyword: str) -> bool:
    """True if the experiment's runner takes ``keyword``.

    Lets callers that forward a user-typed option (the CLI's ``run
    --trials``) warn when the experiment has no such knob, instead of the
    option being dropped silently.
    """
    return _accepts_keyword(get_experiment(experiment_id).func, keyword)


def _ensure_loaded() -> None:
    """Import the experiment modules so their ``register`` calls execute."""
    from . import catalog  # noqa: F401  (import side effect populates registry)
