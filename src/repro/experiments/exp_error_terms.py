"""F1 — Virtual potential gains versus concurrency error terms (Lemmas 1 & 2).

The paper's only figure (Figure 1) illustrates the decomposition behind
Lemma 1: a migrating player's *virtual* potential gain (the hatched area)
versus its contribution to the concurrency *error term* ``F_e`` (the shaded
area caused by players that move onto the same resource in the same round).
Lemma 1 states ``Delta Phi <= sum V_PQ + sum F_e`` for every migration
vector; Lemma 2 states that under the IMITATION PROTOCOL the expected error
terms eat at most half of the expected (negative) virtual gain.

The experiment samples many protocol rounds on random singleton and network
instances and reports, per instance family, the fraction of sampled rounds on
which the Lemma 1 inequality holds (must be 1.0 — it is a deterministic
statement), the average ratio ``sum F_e / |sum V_PQ|`` (Lemma 2 predicts the
*expected* ratio stays at or below 1/2), and the comparison of the empirical
mean potential change against the Lemma 2 bound of half the expected virtual
gain.

The family axis is a :class:`~repro.sweeps.spec.SweepSpec`
(:func:`error_terms_spec`, CLI ``--preset error-terms``) driving the
``error_term_ratio`` kernel, which evaluates all sampled rounds through the
batched Lemma 1 decomposition
(:func:`repro.core.potential.potential_breakdown_batch`).
``engine="batch"`` (default) draws all migration samples in one stacked
multinomial; ``engine="loop"`` draws them one at a time from the same
generator — bit-identical stacks, bit-identical tables.
"""

from __future__ import annotations

from ..sweeps import SweepSpec, run_sweep
from .config import DEFAULTS, pick
from .registry import ExperimentResult, register
from .sweep_bridge import run_spec_points

__all__ = ["run_error_terms_experiment", "error_terms_spec"]

#: Sweep-axis game identifiers -> experiment-table family labels.
FAMILY_LABELS = {
    "linear-singleton": "linear-singleton(m=6)",
    "monomial-singleton": "cubic-singleton(m=6)",
    "grid-network": "grid-network(2x3)",
}


def error_terms_spec(
    *, quick: bool = True, seed: int = DEFAULTS.seed, samples: int | None = None,
    num_players: int | None = None,
) -> SweepSpec:
    """The F1 family comparison as a declarative sweep."""
    samples = samples if samples is not None else pick(quick, 100, 500)
    num_players = num_players if num_players is not None else pick(quick, 200, 1000)
    return SweepSpec(
        name="f1-error-terms",
        game="linear-singleton",
        protocol="imitation",
        measure="error_term_ratio",
        axes={"game": list(FAMILY_LABELS)},
        base={"n": num_players, "links": 6, "exponent": 3.0, "rows": 2, "cols": 3,
              "lambda_": 1.0, "use_nu_threshold": False},
        replicas=samples,
        max_rounds=DEFAULTS.max_rounds(quick),
        seed=seed,
    )


@register(
    "F1",
    "Virtual potential gains vs concurrency error terms",
    "Lemma 1 (deterministic upper bound) and Lemma 2 (the expected error terms "
    "consume at most half of the expected virtual potential gain).",
)
def run_error_terms_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, samples: int | None = None,
    num_players: int | None = None, engine: str = "batch",
    workers: int = 1, store=None,
) -> ExperimentResult:
    """Run experiment F1 and return its result table."""
    spec = error_terms_spec(quick=quick, seed=seed, samples=samples,
                            num_players=num_players)

    if engine == "batch":
        sweep_rows = run_sweep(spec, workers=workers, store=store).rows
    else:
        sweep_rows = run_spec_points(spec, engine=engine)

    rows = [{
        "game": FAMILY_LABELS[row["game"]],
        "samples": row["samples"],
        "lemma1_holds_fraction": row["lemma1_holds_fraction"],
        "mean_error_over_virtual": row["mean_error_over_virtual"],
        "expected_virtual_gain": row["expected_virtual_gain"],
        "lemma2_bound_half_virtual": row["lemma2_bound_half_virtual"],
        "mean_true_potential_gain": row["mean_true_potential_gain"],
        "lemma2_satisfied": row["lemma2_satisfied"],
    } for row in sweep_rows]

    notes: list[str] = []
    notes.append("Lemma 1 held on every sampled round (it is a deterministic inequality)"
                 if all(row["lemma1_holds_fraction"] == 1.0 for row in rows)
                 else "Lemma 1 violated on some sampled rounds — investigate")
    notes.append(
        "the mean error-to-virtual-gain ratio stays below 1/2 on every family, matching Lemma 2"
        if all(row["mean_error_over_virtual"] <= 0.5 for row in rows)
        else "warning: the empirical error ratio exceeded 1/2 on some family"
    )
    return ExperimentResult(
        experiment_id="F1",
        title="Error terms vs virtual potential gains (Figure 1 / Lemmas 1-2)",
        claim="Lemmas 1 and 2",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "samples": spec.replicas,
                    "num_players": spec.base["n"],
                    "engine": engine, "workers": workers,
                    "sweep_spec_hash": spec.content_hash()},
    )
