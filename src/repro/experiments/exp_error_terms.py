"""F1 — Virtual potential gains versus concurrency error terms (Lemmas 1 & 2).

The paper's only figure (Figure 1) illustrates the decomposition behind
Lemma 1: a migrating player's *virtual* potential gain (the hatched area)
versus its contribution to the concurrency *error term* ``F_e`` (the shaded
area caused by players that move onto the same resource in the same round).
Lemma 1 states ``Delta Phi <= sum V_PQ + sum F_e`` for every migration
vector; Lemma 2 states that under the IMITATION PROTOCOL the expected error
terms eat at most half of the expected (negative) virtual gain.

The experiment samples many protocol rounds on random singleton and network
instances and reports, per instance family, the fraction of sampled rounds on
which the Lemma 1 inequality holds (must be 1.0 — it is a deterministic
statement), the average ratio ``sum F_e / |sum V_PQ|`` (Lemma 2 predicts the
*expected* ratio stays at or below 1/2), and the comparison of the empirical
mean potential change against the Lemma 2 bound of half the expected virtual
gain.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamics import sample_migration_matrix
from ..core.imitation import ImitationProtocol
from ..core.potential import (
    expected_virtual_potential_gain,
    potential_breakdown,
)
from ..games.generators import random_linear_singleton, random_monomial_singleton
from ..games.network import grid_network_game
from ..rng import derive_rng
from .config import DEFAULTS, pick
from .registry import ExperimentResult, register

__all__ = ["run_error_terms_experiment"]


@register(
    "F1",
    "Virtual potential gains vs concurrency error terms",
    "Lemma 1 (deterministic upper bound) and Lemma 2 (the expected error terms "
    "consume at most half of the expected virtual potential gain).",
)
def run_error_terms_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, samples: int | None = None,
    num_players: int | None = None,
) -> ExperimentResult:
    """Run experiment F1 and return its result table."""
    samples = samples if samples is not None else pick(quick, 100, 500)
    num_players = num_players if num_players is not None else pick(quick, 200, 1000)
    protocol = ImitationProtocol(lambda_=1.0, use_nu_threshold=False)

    families = {
        "linear-singleton(m=6)": lambda: random_linear_singleton(num_players, 6, rng=seed),
        "cubic-singleton(m=6)": lambda: random_monomial_singleton(num_players, 6, 3.0, rng=seed),
        "grid-network(2x3)": lambda: grid_network_game(num_players, rows=2, cols=3, rng=seed),
    }

    rows: list[dict] = []
    for family_name, factory in families.items():
        game = factory()
        gen = derive_rng(seed, "f1", family_name)
        state = game.uniform_random_state(gen)
        probabilities = protocol.switch_probabilities(game, state)
        lemma1_holds = 0
        error_ratios: list[float] = []
        true_gains: list[float] = []
        for _ in range(samples):
            migration = sample_migration_matrix(state.counts, probabilities.matrix, gen)
            breakdown = potential_breakdown(game, state, migration)
            if breakdown.lemma1_holds:
                lemma1_holds += 1
            if breakdown.virtual_gain < -1e-12:
                error_ratios.append(breakdown.error_term / abs(breakdown.virtual_gain))
            true_gains.append(breakdown.true_gain)
        expected_virtual = expected_virtual_potential_gain(game, protocol, state)
        mean_true = float(np.mean(true_gains))
        rows.append({
            "game": family_name,
            "samples": samples,
            "lemma1_holds_fraction": lemma1_holds / samples,
            "mean_error_over_virtual": float(np.mean(error_ratios)) if error_ratios else 0.0,
            "expected_virtual_gain": expected_virtual,
            "lemma2_bound_half_virtual": 0.5 * expected_virtual,
            "mean_true_potential_gain": mean_true,
            "lemma2_satisfied": mean_true <= 0.5 * expected_virtual + 1e-6 * abs(expected_virtual) + 1e-9,
        })

    notes: list[str] = []
    notes.append("Lemma 1 held on every sampled round (it is a deterministic inequality)"
                 if all(row["lemma1_holds_fraction"] == 1.0 for row in rows)
                 else "Lemma 1 violated on some sampled rounds — investigate")
    notes.append(
        "the mean error-to-virtual-gain ratio stays below 1/2 on every family, matching Lemma 2"
        if all(row["mean_error_over_virtual"] <= 0.5 for row in rows)
        else "warning: the empirical error ratio exceeded 1/2 on some family"
    )
    return ExperimentResult(
        experiment_id="F1",
        title="Error terms vs virtual potential gains (Figure 1 / Lemmas 1-2)",
        claim="Lemmas 1 and 2",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "samples": samples,
                    "num_players": num_players},
    )
