"""E2 — Logarithmic scaling in the number of players (Theorem 7, Corollary 8).

The headline result: with the approximation parameters ``delta``, ``eps`` and
the elasticity ``d`` fixed, the expected number of rounds to the first
(delta, eps, nu)-equilibrium grows only like ``log(Phi(x0)/Phi*)`` — i.e.
logarithmically in the number of players.  The experiment fixes a linear
singleton family (the coefficients do not change with ``n``), sweeps ``n``
over two orders of magnitude, measures the mean hitting time over seeded
trials and fits logarithmic, linear and power-law models to the curve.  The
claim is reproduced when the logarithmic (or tiny-exponent power-law) model
explains the data and the linear model badly over-predicts the growth.

The ``n`` grid is expressed as a :class:`~repro.sweeps.spec.SweepSpec`
(:func:`logn_scaling_spec`) and executed through the sweep scheduler, so the
experiment can shard its grid across worker processes (``workers=``) and
reuse/persist point results through a :class:`~repro.sweeps.store.SweepStore`
(``store=``).  ``engine="loop"`` preserves the historical one-trajectory-at-
a-time measurement path.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..analysis.convergence import compare_scaling_models, measure_approx_equilibrium_times
from ..core.imitation import ImitationProtocol
from ..engines import validate_engine
from ..games.singleton import make_linear_singleton
from ..rng import derive_rng
from ..sweeps import SweepSpec, run_sweep
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_logn_scaling_experiment", "logn_scaling_spec"]

#: The fixed link speeds of the E2 instance family (m = 8 links).
LINK_COEFFICIENTS = [0.5, 0.75, 1.0, 1.0, 1.5, 2.0, 3.0, 4.0]


def logn_scaling_spec(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    delta: float = 0.25, epsilon: float = 0.25,
) -> SweepSpec:
    """The E2 grid as a declarative sweep over the player count ``n``."""
    trials = trials if trials is not None else pick(quick, 5, 20)
    player_counts = pick_list(quick, [64, 256, 1024],
                              [64, 128, 256, 512, 1024, 2048, 4096])
    return SweepSpec(
        name="e2-logn-scaling",
        game="linear-singleton",
        protocol="imitation",
        measure="approx_equilibrium_time",
        axes={"n": player_counts},
        base={"coeffs": LINK_COEFFICIENTS, "delta": delta, "epsilon": epsilon},
        replicas=trials,
        max_rounds=DEFAULTS.max_rounds(quick),
        seed=seed,
    )


@register(
    "E2",
    "Hitting time of (delta,eps,nu)-equilibria versus the number of players",
    "Theorem 7 / Corollary 8: for fixed delta, eps and elasticity the expected "
    "convergence time grows only logarithmically in n.",
)
def run_logn_scaling_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    delta: float = 0.25, epsilon: float = 0.25, engine: str = "batch",
    workers: int = 1, store=None,
) -> ExperimentResult:
    """Run experiment E2 and return its result table."""
    validate_engine(engine, context="E2")
    spec = logn_scaling_spec(quick=quick, seed=seed, trials=trials,
                             delta=delta, epsilon=epsilon)
    player_counts = list(spec.axes["n"])

    if engine in ("batch", "native"):
        spec = replace(spec, engine=engine)
        sweep = run_sweep(spec, workers=workers, store=store)
        rows = [{
            "n": row["n"],
            "mean_rounds": row["rounds_mean"],
            "median_rounds": row["rounds_median"],
            "max_rounds": row["rounds_max"],
            "ci_low": row["rounds_ci_low"],
            "ci_high": row["rounds_ci_high"],
            "censored_trials": row["censored"],
        } for row in sweep.rows]
    else:
        protocol = ImitationProtocol()
        rows = []
        for num_players in player_counts:
            def factory(n=num_players):
                return make_linear_singleton(n, LINK_COEFFICIENTS)

            hitting = measure_approx_equilibrium_times(
                factory, protocol, delta, epsilon,
                trials=spec.replicas, max_rounds=spec.max_rounds,
                rng=derive_rng(seed, num_players), engine="loop",
            )
            rows.append({
                "n": num_players,
                "mean_rounds": hitting.summary.mean,
                "median_rounds": hitting.summary.median,
                "max_rounds": hitting.summary.maximum,
                "ci_low": hitting.summary.ci_low,
                "ci_high": hitting.summary.ci_high,
                "censored_trials": hitting.censored,
            })

    mean_times = [row["mean_rounds"] for row in rows]
    notes: list[str] = []
    fits = compare_scaling_models(player_counts, mean_times)
    for model_name, fit in fits.items():
        notes.append(
            f"{model_name} fit: coefficients={tuple(round(c, 4) for c in fit.coefficients)}, "
            f"r^2={fit.r_squared:.4f}"
        )
    growth_factor = mean_times[-1] / max(mean_times[0], 1e-9)
    n_factor = player_counts[-1] / player_counts[0]
    notes.append(
        f"while n grew by a factor {n_factor:.0f}, the mean hitting time grew by a factor "
        f"{growth_factor:.2f} — consistent with logarithmic (not linear) growth"
    )
    power_exponent = fits["power-law"].coefficients[1]
    notes.append(
        f"power-law exponent {power_exponent:.3f} (a linear dependence would give ~1.0)"
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Hitting time of (delta,eps,nu)-equilibria versus n",
        claim="Theorem 7 / Corollary 8",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": spec.replicas,
                    "delta": delta, "epsilon": epsilon,
                    "player_counts": player_counts, "max_rounds": spec.max_rounds,
                    "link_coefficients": LINK_COEFFICIENTS, "engine": engine,
                    "workers": workers, "sweep_spec_hash": spec.content_hash()},
    )
