"""Shared experiment configuration helpers.

Every experiment supports two scales:

* ``quick=True`` — a scaled-down run (fewer players, fewer trials, smaller
  round budgets) used by the test suite and the pytest-benchmark harness so
  that the full matrix finishes in seconds;
* ``quick=False`` — the full configuration whose numbers go into
  ``EXPERIMENTS.md``.

The helpers here keep that switch in one place and make the chosen values
visible in the experiment's ``parameters`` record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TypeVar

T = TypeVar("T")

__all__ = ["pick", "pick_list", "ExperimentDefaults"]


def pick(quick: bool, quick_value: T, full_value: T) -> T:
    """Return ``quick_value`` when running in quick mode, else ``full_value``."""
    return quick_value if quick else full_value


def pick_list(quick: bool, quick_values: Sequence[T], full_values: Sequence[T]) -> list[T]:
    """List-valued variant of :func:`pick` (always returns a fresh list)."""
    return list(quick_values if quick else full_values)


@dataclass(frozen=True)
class ExperimentDefaults:
    """Default knobs shared by most experiments."""

    seed: int = 2009  # PODC 2009
    quick_trials: int = 5
    full_trials: int = 20
    quick_max_rounds: int = 5_000
    full_max_rounds: int = 100_000

    def trials(self, quick: bool) -> int:
        """Number of Monte-Carlo trials for the requested scale."""
        return pick(quick, self.quick_trials, self.full_trials)

    def max_rounds(self, quick: bool) -> int:
        """Round budget for the requested scale."""
        return pick(quick, self.quick_max_rounds, self.full_max_rounds)


DEFAULTS = ExperimentDefaults()
