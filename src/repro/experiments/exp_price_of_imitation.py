"""E8 — The Price of Imitation (Theorem 10).

For linear singleton games ``l_e(x) = a_e x`` without useless links and with
``x~_e = Omega(log n)``, the expected social cost of the state the IMITATION
PROTOCOL converges to (expectation over its randomness, including the random
initialisation) is at most ``(3 + o(1))`` times the optimum.

The experiment draws random linear singleton instances (rejecting any with
useless links), estimates the expected cost of the imitation outcome over
many seeded runs, and reports the ratio against both the exact integral
optimum and the fractional optimum ``n / A_Gamma`` the paper's proof compares
against.  For context the sampled best/worst Nash costs are shown as well.
The reproduced shape: the ratio stays well below 3 (typically very close to
1) and does not grow with n.
"""

from __future__ import annotations

from ..analysis.prices import estimate_price_of_imitation, nash_cost_range
from ..core.imitation import ImitationProtocol
from ..games.generators import random_linear_singleton
from ..rng import derive_rng
from .config import DEFAULTS, pick, pick_list
from .registry import ExperimentResult, register

__all__ = ["run_price_of_imitation_experiment"]


def _draw_instance_without_useless_links(num_players: int, num_links: int, seed: int):
    """Rejection-sample a random linear singleton game with no useless link."""
    for attempt in range(64):
        game = random_linear_singleton(
            num_players, num_links, coefficient_range=(0.5, 2.0),
            rng=derive_rng(seed, "e8-instance", num_players, attempt),
        )
        if not game.has_useless_resources():
            return game
    # With coefficients in [0.5, 2] and n >> m the fractional loads are large,
    # so this is unreachable in practice; fall back to the last draw.
    return game


@register(
    "E8",
    "Price of Imitation on linear singleton games",
    "Theorem 10: the expected cost of the imitation outcome is at most "
    "(3 + o(1)) times the optimum when no link is useless.",
)
def run_price_of_imitation_experiment(
    *, quick: bool = True, seed: int = DEFAULTS.seed, trials: int | None = None,
    num_links: int = 8, engine: str = "batch",
) -> ExperimentResult:
    """Run experiment E8 and return its result table."""
    trials = trials if trials is not None else pick(quick, 8, 30)
    player_counts = pick_list(quick, [64, 256], [64, 128, 256, 512, 1024])
    max_rounds = DEFAULTS.max_rounds(quick)
    protocol = ImitationProtocol()

    rows: list[dict] = []
    for num_players in player_counts:
        game = _draw_instance_without_useless_links(num_players, num_links, seed)
        price = estimate_price_of_imitation(
            game, protocol, trials=trials, max_rounds=max_rounds,
            rng=derive_rng(seed, "e8-price", num_players), engine=engine,
        )
        nash_context = nash_cost_range(
            game, restarts=pick(quick, 3, 8), rng=derive_rng(seed, "e8-nash", num_players),
        )
        rows.append({
            "n": num_players,
            "links": num_links,
            "optimum_cost": price.optimum_cost,
            "fractional_optimum": price.fractional_optimum_cost,
            "expected_imitation_cost": price.expected_cost,
            "price_of_imitation": price.price_of_imitation,
            "price_vs_fractional": price.price_vs_fractional,
            "worst_nash_over_opt": nash_context["price_of_anarchy_sampled"],
            "unconverged_trials": price.unconverged_trials,
        })

    notes: list[str] = []
    worst_price = max(row["price_of_imitation"] for row in rows)
    notes.append(
        f"the largest measured Price of Imitation is {worst_price:.3f}, comfortably below the "
        "paper's (3 + o(1)) bound"
    )
    first, last = rows[0], rows[-1]
    notes.append(
        f"the price does not grow with n (n={first['n']}: {first['price_of_imitation']:.3f}, "
        f"n={last['n']}: {last['price_of_imitation']:.3f})"
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Price of Imitation",
        claim="Theorem 10",
        rows=rows,
        notes=notes,
        parameters={"quick": quick, "seed": seed, "trials": trials,
                    "num_links": num_links, "player_counts": player_counts,
                    "max_rounds": max_rounds, "engine": engine},
    )
