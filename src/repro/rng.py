"""Random-number-generator plumbing.

Every stochastic component of the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This module
centralises the coercion logic so that the whole stack is reproducible from a
single integer seed and so that independent child streams can be spawned for
parallel trials without statistical overlap.

Looped versus batched streams
-----------------------------
The two round engines consume randomness differently, and both are fully
reproducible from the same seed — but they are **different** streams:

* the loop engine runs each replica on its *own* child generator, spawned
  via :func:`spawn_rngs` (``SeedSequence.spawn`` underneath, so the child
  streams never overlap no matter how long a trajectory runs);
* the ensemble engine (:mod:`repro.core.ensemble`) advances all replicas
  from **one** generator, drawing the round's stacked multinomial in
  replica-major order; retiring a replica changes which draws the remaining
  replicas see.

Consequently a batched run of seed ``s`` does not reproduce the sample paths
of a looped run of seed ``s`` (except for ``R = 1``, where the ensemble
consumes the stream exactly like the loop engine).  Both sample the same
process exactly, so all *distributions* agree; only pathwise comparisons
must hold the engine fixed.  Use :func:`spawn_rngs` (generators) or
:func:`spawn_seed_sequences` (spawnable seeds, e.g. for worker processes)
whenever independent per-replica streams are needed.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["RngLike", "ensure_rng", "spawn_rngs", "spawn_seed_sequences",
           "derive_rng", "SeedSequencePool"]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS entropy), an integer seed, a ``SeedSequence``, or
        an already-constructed ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None:
        # ``rng=None`` *means* fresh entropy: the documented contract is
        # "no seed, no reproducibility" — callers on the deterministic
        # path always hand a seed/SeedSequence down instead.
        return np.random.default_rng()  # lint: disable=DET003 -- rng=None is the documented fresh-entropy contract
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a random generator from {type(rng).__name__}")


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` statistically independent generators derived from ``rng``.

    When ``rng`` is an integer or a ``SeedSequence`` the children are derived
    through ``SeedSequence.spawn`` which guarantees non-overlapping streams.
    When ``rng`` is already a ``Generator`` the children are seeded from draws
    of that generator, which is reproducible given the generator's state.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(rng, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in rng.spawn(count)]
    if isinstance(rng, (int, np.integer)):
        seq = np.random.SeedSequence(int(rng))
        return [np.random.default_rng(s) for s in seq.spawn(count)]
    gen = ensure_rng(rng)
    seeds = gen.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def spawn_seed_sequences(rng: RngLike, count: int) -> list[np.random.SeedSequence]:
    """Return ``count`` independent :class:`~numpy.random.SeedSequence` children.

    Like :func:`spawn_rngs` but without constructing the generators — useful
    when the children must cross a process boundary or be re-spawned further
    down (a ``SeedSequence`` is picklable and itself spawnable).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(rng, np.random.SeedSequence):
        return rng.spawn(count)
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(int(rng)).spawn(count)
    gen = ensure_rng(rng)
    seeds = gen.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.SeedSequence(int(s)) for s in seeds]


def derive_rng(rng: RngLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive a child generator deterministically from ``rng`` and ``keys``.

    This is used by the experiment harness to give every (experiment,
    parameter point, trial index) triple its own reproducible stream.
    String keys are hashed with a stable (non-salted) scheme.
    """
    material: list[int] = []
    for key in keys:
        if isinstance(key, str):
            material.append(_stable_string_hash(key))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    if isinstance(rng, (int, np.integer)):
        base = int(rng)
    elif isinstance(rng, np.random.SeedSequence):
        base = int(rng.generate_state(1)[0])
    elif rng is None:
        base = 0
    else:
        base = int(ensure_rng(rng).integers(0, 2**31 - 1))
    seq = np.random.SeedSequence([base & 0xFFFFFFFF, *material])
    return np.random.default_rng(seq)


def _stable_string_hash(text: str) -> int:
    """A small, stable (cross-process) 32-bit FNV-1a hash of ``text``."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value


class SeedSequencePool:
    """Iterator over independent generators, used for multi-trial experiments.

    Parameters
    ----------
    seed:
        Master seed (or generator) for the pool.
    """

    def __init__(self, seed: RngLike = None):
        if isinstance(seed, (int, np.integer)):
            self._sequence = np.random.SeedSequence(int(seed))
        elif isinstance(seed, np.random.SeedSequence):
            self._sequence = seed
        else:
            # Fall back to entropy drawn from the provided generator/None.
            gen = ensure_rng(seed)
            self._sequence = np.random.SeedSequence(int(gen.integers(0, 2**63 - 1)))
        self._spawned = 0

    def next_rng(self) -> np.random.Generator:
        """Return the next independent generator from the pool."""
        child = self._sequence.spawn(1)[0]
        self._spawned += 1
        return np.random.default_rng(child)

    def take(self, count: int) -> list[np.random.Generator]:
        """Return ``count`` independent generators."""
        children = self._sequence.spawn(count)
        self._spawned += count
        return [np.random.default_rng(c) for c in children]

    def __iter__(self) -> Iterator[np.random.Generator]:
        while True:
            yield self.next_rng()

    @property
    def spawned(self) -> int:
        """Number of generators handed out so far."""
        return self._spawned
