"""The benchmark trajectory: trend tables over committed ``BENCH_*.json``.

Every PR's benchmark session commits one ``BENCH_<pr>.json`` at the
repository root (see ``benchmarks/record.py``).  This module — the first
consumer of those records — loads all of them and renders a per-guard
trend table: one row per benchmark name, one ``pr<N>`` column per record,
values in milliseconds, plus the relative change between the oldest and
newest measurement of each guard.  ``python -m repro bench-history`` is
the CLI surface; ROADMAP's "perf trajectory visible to future re-anchors"
is the point.

Numbers from different records are only loosely comparable — each carries
its own environment stanza (python/numpy versions, numba availability),
which the report prints so a regression can be told from a machine change.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Optional

from .errors import ReproError

__all__ = ["load_bench_records", "history_rows", "render_bench_history"]

_RECORD_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


def load_bench_records(directory: str | Path = ".") -> list[dict[str, Any]]:
    """All ``BENCH_<pr>.json`` records under ``directory``, sorted by PR.

    Unreadable or malformed files raise :class:`~repro.errors.ReproError`
    naming the file — a half-written record should fail loudly, not vanish
    from the trend.
    """
    directory = Path(directory)
    records = []
    for path in sorted(directory.glob("BENCH_*.json")):
        match = _RECORD_PATTERN.match(path.name)
        if not match:
            continue
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ReproError(
                f"cannot read benchmark record {path}: {error}") from error
        payload.setdefault("pr", int(match.group(1)))
        records.append(payload)
    records.sort(key=lambda record: record["pr"])
    return records


def history_rows(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """One row per benchmark name: ``pr<N>_ms`` mean columns + trend.

    ``trend`` is ``(newest - oldest) / oldest`` over the records in which
    the benchmark appears (negative = got faster).  Benchmarks present in
    only one record show a blank trend.
    """
    by_name: dict[str, dict[int, float]] = {}
    for record in records:
        for bench in record.get("benchmarks", []):
            by_name.setdefault(bench["name"], {})[record["pr"]] = bench["mean_s"]
    rows = []
    for name in sorted(by_name):
        means = by_name[name]
        row: dict[str, Any] = {"benchmark": name}
        for record in records:
            pr = record["pr"]
            if pr in means:
                row[f"pr{pr}_ms"] = round(means[pr] * 1000, 3)
        observed = [means[record["pr"]] for record in records
                    if record["pr"] in means]
        if len(observed) >= 2 and observed[0] > 0:
            row["trend"] = f"{(observed[-1] - observed[0]) / observed[0]:+.1%}"
        else:
            row["trend"] = ""
        rows.append(row)
    return rows


def render_bench_history(directory: str | Path = ".", *,
                         markdown: bool = False,
                         names: Optional[list[str]] = None) -> str:
    """The full trend report (environment lines + per-guard table)."""
    from .experiments.reporting import render_markdown_table, render_table

    records = load_bench_records(directory)
    if not records:
        raise ReproError(
            f"no BENCH_<pr>.json records found under {Path(directory).resolve()}"
        )
    rows = history_rows(records)
    if names:
        wanted = set(names)
        rows = [row for row in rows if row["benchmark"] in wanted]
        if not rows:
            raise ReproError(
                f"no benchmark matches {sorted(wanted)}; known: "
                f"{[r['benchmark'] for r in history_rows(records)]}")
    lines = []
    for record in records:
        env = record.get("environment", {})
        env_text = ", ".join(f"{key}={value}" for key, value in env.items())
        lines.append(f"BENCH_{record['pr']}.json: "
                     f"{len(record.get('benchmarks', []))} benchmarks "
                     f"({env_text})")
    lines.append("")
    render = render_markdown_table if markdown else render_table
    lines.append(render(rows))
    return "\n".join(lines)
