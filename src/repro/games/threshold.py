"""Threshold games and the Theorem 6 lower-bound construction.

*Threshold games* (paper, Section 3.2) are congestion games in which every
player ``i`` chooses between exactly two strategies: a private "out" resource
``r_i`` with a fixed threshold cost ``T_i``, and an "in" strategy ``S_i^in``
consisting of shared resources.  In *quadratic* threshold games the shared
resources are one resource ``r_{ij}`` per unordered player pair with linear
latency ``a_ij * x``, the "in" strategy of player ``i`` is
``{r_{ij} : j != i}`` and the threshold is ``T_i = 1/2 * sum_j a_ij`` (scaled
by the load on ``r_i``, which only player ``i`` can use).

Quadratic threshold games are PLS-equivalent to local MaxCut: the "in"/"out"
choice of each player corresponds to the side of the cut its node is on, and
improving moves correspond to moving a node across the cut.  The paper uses a
family of such games (via the constructions of Ackermann, Roeglin and
Voecking [1]) with *exponentially long* improvement sequences, and lifts each
player into three copies to turn best-response moves into imitation moves
(no copy ever wants to join the other two on the same strategy, so the third
copy keeps replaying the original best-response sequence).

This module implements:

* :class:`QuadraticThresholdGame` — construction of the asymmetric congestion
  game from a weight matrix ``a_ij``;
* :func:`lift_for_imitation` — the three-copies-per-player lifting from the
  proof of Theorem 6 (with the ``3/2 * sum_j a_ij`` offset added to the
  private resources);
* MaxCut helpers: conversion between cut assignments and profiles, local
  optimality checks, and a generator of weight matrices with geometrically
  growing weights for which improvement sequences become very long.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import GameDefinitionError
from ..rng import RngLike, ensure_rng
from .asymmetric import AsymmetricCongestionGame
from .latency import LinearLatency

__all__ = [
    "QuadraticThresholdGame",
    "lift_for_imitation",
    "random_weight_matrix",
    "geometric_weight_matrix",
    "maxcut_value",
    "is_local_maxcut_optimum",
    "longest_improvement_sequence",
]


class QuadraticThresholdGame(AsymmetricCongestionGame):
    """Quadratic threshold game built from a symmetric weight matrix.

    Parameters
    ----------
    weights:
        Symmetric non-negative ``(n, n)`` matrix ``a_ij`` (the diagonal is
        ignored).  ``weights[i, j]`` is the coefficient of the pair resource
        ``r_{ij}``.
    copies:
        Number of identical copies per original player (1 for the plain
        threshold game, 3 for the Theorem 6 lifting through
        :func:`lift_for_imitation`).
    threshold_slope_factor:
        Slope of the private "out" resource, expressed as a multiple of
        ``W_i = sum_j a_ij``.  The default ``3/2`` makes the single-copy game
        an exact local-MaxCut game under this module's resource-sharing
        semantics: player ``i`` strictly prefers ``S^in`` if and only if
        flipping node ``i`` to the IN side strictly increases the cut value.
        (The paper states the factor ``1/2`` under a slightly different
        accounting of the pair-resource latencies; the re-derivation for our
        semantics is documented in DESIGN.md.)
    offset_factor:
        Constant offset added to the private "out" resources, expressed as a
        multiple of ``W_i``.  The plain game uses 0, the lifted 3-copy game
        uses ``1/2`` so that, with one copy pinned to OUT and one to IN, the
        remaining free copy keeps exactly the local-MaxCut preference of the
        original player (the role the ``3/2`` offset plays in the paper's
        proof of Theorem 6 for its accounting).

    Strategy indexing: for every player, strategy ``0`` is ``S^out`` (the
    private resource) and strategy ``1`` is ``S^in`` (all pair resources).
    """

    OUT = 0
    IN = 1

    #: Default slope of the private resource as a multiple of W_i.
    DEFAULT_THRESHOLD_SLOPE = 1.5

    def __init__(self, weights: np.ndarray, *, copies: int = 1,
                 threshold_slope_factor: float = DEFAULT_THRESHOLD_SLOPE,
                 offset_factor: float = 0.0,
                 name: str = "quadratic-threshold"):
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
            raise GameDefinitionError("weights must be a square matrix")
        if weights.shape[0] < 2:
            raise GameDefinitionError("need at least two base players")
        if np.any(weights < 0):
            raise GameDefinitionError("weights must be non-negative")
        if not np.allclose(weights, weights.T):
            raise GameDefinitionError("weights must be symmetric")
        if copies < 1:
            raise GameDefinitionError("copies must be at least 1")
        base_n = weights.shape[0]
        weights = weights.copy()
        np.fill_diagonal(weights, 0.0)

        # Resource layout: first the pair resources r_{ij} (i < j), then one
        # private resource per base player.
        pair_index: dict[tuple[int, int], int] = {}
        latencies = []
        resource_names = []
        for i in range(base_n):
            for j in range(i + 1, base_n):
                pair_index[(i, j)] = len(latencies)
                coefficient = max(weights[i, j], 1e-12)
                latencies.append(LinearLatency(coefficient, 0.0))
                resource_names.append(f"r({i},{j})")
        private_offset = len(latencies)
        row_sums = weights.sum(axis=1)
        for i in range(base_n):
            slope = threshold_slope_factor * row_sums[i]
            offset = offset_factor * row_sums[i]
            latencies.append(LinearLatency(max(slope, 1e-12), offset))
            resource_names.append(f"r({i})")

        strategy_spaces = []
        player_names = []
        for i in range(base_n):
            out_strategy = [private_offset + i]
            in_strategy = [pair_index[(min(i, j), max(i, j))] for j in range(base_n) if j != i]
            for copy in range(copies):
                strategy_spaces.append([out_strategy, in_strategy])
                player_names.append(f"p{i}" if copies == 1 else f"p{i}.{copy}")

        super().__init__(
            latencies,
            strategy_spaces,
            player_names=player_names,
            resource_names=resource_names,
            name=name,
        )
        self._weights = weights
        self._base_players = base_n
        self._copies = copies
        self._pair_index = pair_index
        self._private_offset = private_offset
        self.threshold_slope_factor = float(threshold_slope_factor)
        self.offset_factor = float(offset_factor)

    # ------------------------------------------------------------------
    @property
    def base_players(self) -> int:
        """Number of original (pre-lifting) players."""
        return self._base_players

    @property
    def copies(self) -> int:
        """Number of copies per original player."""
        return self._copies

    @property
    def weights(self) -> np.ndarray:
        """The symmetric weight matrix ``a_ij`` (diagonal zero)."""
        return self._weights.copy()

    def threshold(self, base_player: int) -> float:
        """Latency of the private resource when a single copy uses it,
        ``T_i = threshold_slope_factor * W_i + offset_factor * W_i``."""
        row_sum = float(self._weights[base_player].sum())
        return (self.threshold_slope_factor + self.offset_factor) * row_sum

    def copy_indices(self, base_player: int) -> list[int]:
        """Indices of the copies of ``base_player`` in the lifted game."""
        start = base_player * self._copies
        return list(range(start, start + self._copies))

    # ------------------------------------------------------------------
    # MaxCut correspondence
    # ------------------------------------------------------------------
    def profile_from_cut(self, cut: Sequence[int]) -> np.ndarray:
        """Build a profile from a cut assignment of the *base* players.

        ``cut[i] == 1`` means base player ``i`` plays ``S^in``; 0 means
        ``S^out``.  In a lifted game every copy adopts the base player's
        side.
        """
        cut_array = np.asarray(cut, dtype=np.int64)
        if cut_array.shape != (self._base_players,):
            raise GameDefinitionError("cut must have one entry per base player")
        if np.any((cut_array != 0) & (cut_array != 1)):
            raise GameDefinitionError("cut entries must be 0 or 1")
        profile = np.repeat(cut_array, self._copies)
        return profile

    def profile_from_cut_lifted(self, cut: Sequence[int]) -> np.ndarray:
        """The Theorem 6 initial state of a lifted (3-copy) game.

        Copy 0 of every base player is pinned to ``S^out``, copy 1 to
        ``S^in`` and copy 2 takes the side prescribed by ``cut``.  Requires
        ``copies == 3``.
        """
        if self._copies != 3:
            raise GameDefinitionError("the lifted initial state needs exactly 3 copies")
        cut_array = np.asarray(cut, dtype=np.int64)
        if cut_array.shape != (self._base_players,):
            raise GameDefinitionError("cut must have one entry per base player")
        profile = np.zeros(self.num_players, dtype=np.int64)
        for base in range(self._base_players):
            copies = self.copy_indices(base)
            profile[copies[0]] = self.OUT
            profile[copies[1]] = self.IN
            profile[copies[2]] = self.IN if cut_array[base] else self.OUT
        return profile

    def cut_from_profile(self, profile: Sequence[int]) -> np.ndarray:
        """Read off the side of every base player (majority over copies)."""
        arr = self.validate_profile(profile)
        sides = np.zeros(self._base_players, dtype=np.int64)
        for base in range(self._base_players):
            copies = self.copy_indices(base)
            sides[base] = 1 if np.mean(arr[copies]) >= 0.5 else 0
        return sides


def lift_for_imitation(weights: np.ndarray, *, name: str = "lifted-threshold"
                       ) -> QuadraticThresholdGame:
    """Build the Theorem 6 lifted game: three copies of every player plus an
    offset on each private resource.

    With one copy pinned to ``S^out`` and one to ``S^in``, the private
    resource of player ``i`` carries a base load of one and every pair
    resource ``r_{ij}`` carries a base load of two.  Choosing the offset
    ``W_i / 2`` on top of the default ``3/2 W_i`` slope makes the *free* copy
    prefer ``S^in`` exactly when flipping node ``i`` to the IN side increases
    the cut — the same improvement structure as the single-copy game, but now
    expressed through moves that imitate one of the other two copies.
    """
    return QuadraticThresholdGame(weights, copies=3, offset_factor=0.5, name=name)


# ----------------------------------------------------------------------
# Weight-matrix generators and MaxCut helpers
# ----------------------------------------------------------------------

def random_weight_matrix(base_players: int, *, low: float = 1.0, high: float = 10.0,
                         rng: RngLike = None) -> np.ndarray:
    """Symmetric weight matrix with i.i.d. uniform weights."""
    if base_players < 2:
        raise GameDefinitionError("need at least two base players")
    gen = ensure_rng(rng)
    upper = gen.uniform(low, high, size=(base_players, base_players))
    weights = np.triu(upper, k=1)
    weights = weights + weights.T
    return weights


def geometric_weight_matrix(base_players: int, *, ratio: float = 2.0) -> np.ndarray:
    """Weight matrix with geometrically spread pair weights.

    Pairs are ordered lexicographically and weighted ``ratio**k``; widely
    spread weights make local-search / imitation sequences long because
    flipping a heavy pair re-enables many light pairs, mimicking the
    exponential constructions of Ackermann, Roeglin and Voecking.  The growth
    of the measured sequence length with ``base_players`` is the quantity
    experiment E6 tracks.
    """
    if base_players < 2:
        raise GameDefinitionError("need at least two base players")
    if ratio <= 1.0:
        raise GameDefinitionError("ratio must exceed 1")
    weights = np.zeros((base_players, base_players))
    k = 0
    for i in range(base_players):
        for j in range(i + 1, base_players):
            weights[i, j] = weights[j, i] = ratio ** k
            k += 1
    return weights


def longest_improvement_sequence(weights: np.ndarray, *, start_cut: Optional[Sequence[int]] = None
                                 ) -> int:
    """Length of the longest sequence of strictly improving single flips.

    Every strictly improving flip increases the cut value, so the improvement
    graph over the ``2^k`` cuts is a DAG and the longest path can be computed
    exactly by memoised depth-first search.  With ``start_cut = None`` the
    maximum over all start cuts is returned — the exact worst-case length of
    a best-response (equivalently, free-copy imitation) schedule for this
    instance, the quantity Theorem 6 lower-bounds.  Exponential in ``k``
    (states) — intended for small instances (``k <= 12``).
    """
    weights = np.asarray(weights, dtype=float)
    base_players = weights.shape[0]
    if base_players > 16:
        raise GameDefinitionError("exhaustive search is limited to at most 16 base players")

    num_states = 2 ** base_players
    values = np.empty(num_states)
    for bits in range(num_states):
        cut = np.array([(bits >> node) & 1 for node in range(base_players)], dtype=np.int64)
        values[bits] = maxcut_value(weights, cut)

    # Improving flips strictly increase the cut value, so processing states in
    # decreasing value order gives an iterative longest-path DP over the DAG.
    longest = np.zeros(num_states, dtype=np.int64)
    for bits in sorted(range(num_states), key=lambda b: -values[b]):
        best = 0
        for node in range(base_players):
            flipped = bits ^ (1 << node)
            if values[flipped] > values[bits] + 1e-12:
                best = max(best, 1 + int(longest[flipped]))
        longest[bits] = best

    if start_cut is not None:
        start_array = np.asarray(start_cut, dtype=np.int64)
        start_bits = int(sum(int(bit) << node for node, bit in enumerate(start_array)))
        return int(longest[start_bits])
    return int(longest.max())


def maxcut_value(weights: np.ndarray, cut: Sequence[int]) -> float:
    """Total weight of edges crossing the cut."""
    weights = np.asarray(weights, dtype=float)
    cut_array = np.asarray(cut, dtype=np.int64)
    crossing = cut_array[:, None] != cut_array[None, :]
    return float(np.sum(np.triu(weights * crossing, k=1)))


def is_local_maxcut_optimum(weights: np.ndarray, cut: Sequence[int]) -> bool:
    """True if no single node can be flipped to strictly increase the cut."""
    weights = np.asarray(weights, dtype=float)
    cut_array = np.asarray(cut, dtype=np.int64)
    base_value = maxcut_value(weights, cut_array)
    for node in range(cut_array.size):
        flipped = cut_array.copy()
        flipped[node] = 1 - flipped[node]
        if maxcut_value(weights, flipped) > base_value + 1e-12:
            return False
    return True
