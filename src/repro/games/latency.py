"""Latency (cost) functions for congestion games.

The paper assumes non-decreasing, differentiable latency functions
``l_e : R>=0 -> R>=0`` with ``l_e(x) > 0`` for ``x > 0``.  Two structural
quantities of these functions drive the analysis (paper, Section 2.2):

* the **elasticity** ``d >= sup_x l'(x) * x / l(x)`` which bounds the
  multiplicative growth of the latency under multiplicative growth of the
  congestion (``l(a*x) <= l(x) * a**d`` for ``a >= 1``), and
* the **slope on almost-empty resources**
  ``nu_e = max_{x in {1..d}} l_e(x) - l_e(x - 1)`` which bounds the additive
  latency increase caused by a single extra player while the congestion is at
  most ``d``.

Every latency function in this module therefore exposes, besides vectorised
evaluation and differentiation, the methods :meth:`LatencyFunction.elasticity_bound`
and :meth:`LatencyFunction.slope_bound` implementing exactly those
definitions.  The module also provides :func:`scale_to_population`, the
``l^n(x) = l(x / n)`` normalisation used in Theorem 9 for families of games
with a growing number of players.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Sequence, Union

import numpy as np

from ..errors import GameDefinitionError

ArrayLike = Union[float, int, np.ndarray]

__all__ = [
    "LatencyFunction",
    "ConstantLatency",
    "ZeroLatency",
    "LinearLatency",
    "MonomialLatency",
    "PolynomialLatency",
    "ExponentialLatency",
    "MM1Latency",
    "PiecewiseLinearLatency",
    "TableLatency",
    "ScaledLatency",
    "ShiftedLatency",
    "scale_to_population",
    "validate_latency",
    "constant",
    "linear",
    "affine",
    "monomial",
    "polynomial",
]


class LatencyFunction(ABC):
    """Abstract non-decreasing latency function ``l : R>=0 -> R>=0``.

    Subclasses implement :meth:`value` and :meth:`derivative` on numpy
    arrays; the base class provides elasticity/slope bounds by (exact or
    numeric) specialisation and a few convenience dunders.
    """

    #: True if ``l(0) == 0`` (required by Theorem 9's game family).
    zero_at_zero: bool = False

    #: True only for :class:`ZeroLatency` — a structural helper edge that is
    #: exempt from the positivity assumption and excluded from ``l_min``.
    is_structural_zero: bool = False

    @abstractmethod
    def value(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the latency at congestion ``x`` (vectorised)."""

    @abstractmethod
    def derivative(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the derivative ``l'(x)`` (vectorised)."""

    def __call__(self, x: ArrayLike) -> Union[float, np.ndarray]:
        arr = np.asarray(x, dtype=float)
        result = self.value(arr)
        if np.isscalar(x) or arr.ndim == 0:
            return float(result)
        return result

    # ------------------------------------------------------------------
    # Structural bounds (paper Section 2.2)
    # ------------------------------------------------------------------
    def elasticity_bound(self, max_load: int) -> float:
        """Upper bound on the elasticity ``l'(x) x / l(x)`` over ``(0, max_load]``.

        The default implementation evaluates the elasticity on a fine grid
        over ``(0, max_load]`` and returns the maximum; subclasses with a
        closed form (monomials, polynomials, ...) override this.
        """
        if max_load <= 0:
            raise ValueError("max_load must be positive")
        grid = np.linspace(1e-9, float(max_load), num=4096)
        values = self.value(grid)
        derivs = self.derivative(grid)
        with np.errstate(divide="ignore", invalid="ignore"):
            elasticity = np.where(values > 0, derivs * grid / values, 0.0)
        return float(np.max(elasticity))

    def slope_bound(self, d: int) -> float:
        """``nu_e = max_{x in {1..max(1, ceil(d))}} l(x) - l(x-1)``.

        ``d`` is the elasticity upper bound of the game; the paper defines the
        slope over loads up to ``d``.  For ``d < 1`` the range degenerates to
        ``{1}``.
        """
        upper = max(1, int(math.ceil(d)))
        xs = np.arange(1, upper + 1, dtype=float)
        return float(np.max(self.value(xs) - self.value(xs - 1.0)))

    def max_value(self, max_load: int) -> float:
        """Maximum latency over integer loads ``0..max_load`` (monotone, so l(max_load))."""
        return float(self.value(np.asarray(float(max_load))))

    # ------------------------------------------------------------------
    # Native-kernel lowering
    # ------------------------------------------------------------------
    def kernel_poly_coefficients(self) -> "np.ndarray | None":
        """Ascending polynomial coefficients exactly representing ``l`` or
        ``None`` when no exact polynomial form exists.

        The native round kernel (:mod:`repro.core.native`) evaluates
        latencies from nopython code in one of two lowered forms: a Horner
        pass over polynomial coefficients, or an exact value table at the
        integer loads ``0..n+1`` (loads of a congestion game are always
        integers, so tabulation is exact for *any* latency function).
        Functions with a closed polynomial form should return it here —
        at ``n = 10^6`` players the coefficient form needs a handful of
        floats where the table needs megabytes per resource.
        """
        return None

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def scaled_argument(self, factor: float) -> "ScaledLatency":
        """Return ``x -> l(factor * x)`` as a new latency function."""
        return ScaledLatency(self, argument_factor=factor)

    def scaled_value(self, factor: float) -> "ScaledLatency":
        """Return ``x -> factor * l(x)`` as a new latency function."""
        return ScaledLatency(self, value_factor=factor)

    def shifted(self, offset: float) -> "ShiftedLatency":
        """Return ``x -> l(x) + offset`` as a new latency function."""
        return ShiftedLatency(self, offset)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable description used in experiment tables."""
        return repr(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ConstantLatency(LatencyFunction):
    """``l(x) = c`` with ``c > 0``.

    Constant functions have elasticity 0 and slope 0; they model fixed-delay
    links (for instance the constant link in the overshooting example of the
    paper's Section 2.3).
    """

    zero_at_zero = False

    def __init__(self, c: float):
        if c < 0:
            raise GameDefinitionError("constant latency must be non-negative")
        self.c = float(c)

    def value(self, x: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(x, dtype=float), self.c)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.zeros_like(np.asarray(x, dtype=float))

    def elasticity_bound(self, max_load: int) -> float:
        return 0.0

    def slope_bound(self, d: int) -> float:
        return 0.0

    def kernel_poly_coefficients(self) -> np.ndarray:
        return np.array([self.c])

    def __repr__(self) -> str:
        return f"ConstantLatency({self.c:g})"


class ZeroLatency(ConstantLatency):
    """The identically-zero latency of a *structural helper edge*.

    Network generators that expand a conceptual link into a multi-edge path
    (parallel links through a private middle node, series-parallel bundles)
    need connector edges that are guaranteed to contribute **exactly
    nothing** to any latency, potential, social-cost, or structural-bound
    computation — otherwise the expanded game is not strategically identical
    to the game it mirrors.  A plain ``ConstantLatency(0)`` achieves the
    arithmetic but violates the model assumption ``l_e(x) > 0`` for
    ``x > 0`` and drags the game's ``l_min`` down to zero.

    ``ZeroLatency`` is therefore flagged ``is_structural_zero``:
    :func:`validate_latency` exempts it from the positivity check and
    :attr:`~repro.games.base.CongestionGame.min_resource_latency` skips it,
    so helper edges are invisible to every quantity the paper's analysis
    uses.
    """

    is_structural_zero = True
    zero_at_zero = True

    def __init__(self):
        super().__init__(0.0)

    def __repr__(self) -> str:
        return "ZeroLatency()"


class LinearLatency(LatencyFunction):
    """Affine latency ``l(x) = a * x + b`` with ``a >= 0`` and ``b >= 0``.

    With ``b = 0`` this is the pure linear case used throughout Section 5 of
    the paper (Price of Imitation); its elasticity is exactly 1 and its slope
    is ``a``.
    """

    def __init__(self, a: float, b: float = 0.0):
        if a < 0 or b < 0:
            raise GameDefinitionError("linear latency coefficients must be non-negative")
        if a == 0 and b == 0:
            raise GameDefinitionError("latency a*x+b must not be identically zero")
        self.a = float(a)
        self.b = float(b)
        self.zero_at_zero = b == 0.0

    def value(self, x: np.ndarray) -> np.ndarray:
        return self.a * np.asarray(x, dtype=float) + self.b

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(x, dtype=float), self.a)

    def elasticity_bound(self, max_load: int) -> float:
        if self.a == 0:
            return 0.0
        if self.b == 0:
            return 1.0
        # a*x/(a*x+b) < 1, increasing in x, so the sup is attained at max_load.
        return self.a * max_load / (self.a * max_load + self.b)

    def slope_bound(self, d: int) -> float:
        return self.a

    def kernel_poly_coefficients(self) -> np.ndarray:
        return np.array([self.b, self.a])

    def __repr__(self) -> str:
        return f"LinearLatency(a={self.a:g}, b={self.b:g})"


class MonomialLatency(LatencyFunction):
    """``l(x) = a * x**d`` with ``a > 0`` and degree ``d >= 0``.

    The canonical example of a function with elasticity exactly ``d``
    (paper, Section 2.2).
    """

    def __init__(self, a: float, degree: float):
        if a <= 0:
            raise GameDefinitionError("monomial coefficient must be positive")
        if degree < 0:
            raise GameDefinitionError("monomial degree must be non-negative")
        self.a = float(a)
        self.degree = float(degree)
        self.zero_at_zero = degree > 0

    def value(self, x: np.ndarray) -> np.ndarray:
        return self.a * np.power(np.asarray(x, dtype=float), self.degree)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        if self.degree == 0:
            return np.zeros_like(arr)
        with np.errstate(divide="ignore", invalid="ignore"):
            deriv = self.a * self.degree * np.power(arr, self.degree - 1.0)
        return np.where(arr > 0, deriv, 0.0 if self.degree >= 1 else np.inf)

    def elasticity_bound(self, max_load: int) -> float:
        return self.degree

    def kernel_poly_coefficients(self) -> "np.ndarray | None":
        # Only integer degrees have an exact polynomial form; fractional
        # monomials fall back to the value table.
        if self.degree != int(self.degree):
            return None
        coeffs = np.zeros(int(self.degree) + 1)
        coeffs[int(self.degree)] = self.a
        return coeffs

    def __repr__(self) -> str:
        return f"MonomialLatency(a={self.a:g}, d={self.degree:g})"


class PolynomialLatency(LatencyFunction):
    """Polynomial latency ``l(x) = sum_k coeffs[k] * x**k`` with coefficients >= 0.

    Positive-coefficient polynomials of maximum degree ``d`` have elasticity
    at most ``d`` (paper, Section 1), which this class reports exactly as the
    largest exponent with a non-zero coefficient.
    """

    def __init__(self, coeffs: Sequence[float]):
        coeff_array = np.asarray(list(coeffs), dtype=float)
        if coeff_array.ndim != 1 or coeff_array.size == 0:
            raise GameDefinitionError("coefficients must be a non-empty 1-D sequence")
        if np.any(coeff_array < 0):
            raise GameDefinitionError("polynomial latency coefficients must be non-negative")
        if not np.any(coeff_array > 0):
            raise GameDefinitionError("polynomial latency must not be identically zero")
        self.coeffs = coeff_array
        self.zero_at_zero = coeff_array[0] == 0.0
        nonzero = np.nonzero(coeff_array)[0]
        self._max_degree = int(nonzero[-1])

    @property
    def degree(self) -> int:
        """Largest exponent with a non-zero coefficient."""
        return self._max_degree

    def value(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        # polyval expects highest-degree first.
        return np.polyval(self.coeffs[::-1], arr)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        deriv_coeffs = self.coeffs[1:] * np.arange(1, self.coeffs.size)
        if deriv_coeffs.size == 0:
            return np.zeros_like(arr)
        return np.polyval(deriv_coeffs[::-1], arr)

    def elasticity_bound(self, max_load: int) -> float:
        # For positive coefficients the elasticity is bounded by the maximum
        # degree (each monomial term has elasticity equal to its own degree
        # and the elasticity of a sum of positives is a convex combination).
        return float(self._max_degree)

    def kernel_poly_coefficients(self) -> np.ndarray:
        return self.coeffs.copy()

    def __repr__(self) -> str:
        terms = ", ".join(f"{c:g}" for c in self.coeffs)
        return f"PolynomialLatency([{terms}])"


class ExponentialLatency(LatencyFunction):
    """``l(x) = a * exp(b * x)`` with ``a > 0`` and ``b >= 0``.

    Exponential latencies have unbounded elasticity in general; the bound
    returned here is ``b * max_load`` (the supremum of ``b*x`` on the range).
    They are included to exercise the protocol on steep functions.
    """

    def __init__(self, a: float = 1.0, b: float = 1.0):
        if a <= 0 or b < 0:
            raise GameDefinitionError("exponential latency requires a > 0 and b >= 0")
        self.a = float(a)
        self.b = float(b)
        self.zero_at_zero = False

    def value(self, x: np.ndarray) -> np.ndarray:
        return self.a * np.exp(self.b * np.asarray(x, dtype=float))

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return self.b * self.value(x)

    def elasticity_bound(self, max_load: int) -> float:
        return self.b * max_load

    def __repr__(self) -> str:
        return f"ExponentialLatency(a={self.a:g}, b={self.b:g})"


class MM1Latency(LatencyFunction):
    """M/M/1-style latency ``l(x) = 1 / (capacity - x)`` for ``x < capacity``.

    The function diverges as the congestion approaches the capacity; loads at
    or above the capacity are clamped to a large finite ceiling so that the
    simulation remains numerically well-behaved.  Used to test the protocol
    on latencies with rapidly growing (but finite on the relevant range)
    elasticity.
    """

    def __init__(self, capacity: float, ceiling: float = 1e9):
        if capacity <= 0:
            raise GameDefinitionError("capacity must be positive")
        self.capacity = float(capacity)
        self.ceiling = float(ceiling)
        self.zero_at_zero = False

    def value(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore"):
            raw = 1.0 / (self.capacity - arr)
        return np.where(arr < self.capacity, np.minimum(raw, self.ceiling), self.ceiling)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore"):
            raw = 1.0 / (self.capacity - arr) ** 2
        return np.where(arr < self.capacity, np.minimum(raw, self.ceiling), 0.0)

    def elasticity_bound(self, max_load: int) -> float:
        load = min(float(max_load), self.capacity * (1.0 - 1e-9))
        return load / (self.capacity - load)

    def __repr__(self) -> str:
        return f"MM1Latency(capacity={self.capacity:g})"


class PiecewiseLinearLatency(LatencyFunction):
    """Continuous piecewise-linear, non-decreasing latency.

    Defined by breakpoints ``(x_i, y_i)`` with ``x_0 = 0``; beyond the last
    breakpoint the last segment's slope is extrapolated.
    """

    def __init__(self, breakpoints: Sequence[tuple[float, float]]):
        points = sorted((float(x), float(y)) for x, y in breakpoints)
        if len(points) < 2:
            raise GameDefinitionError("need at least two breakpoints")
        if points[0][0] != 0.0:
            raise GameDefinitionError("first breakpoint must be at x = 0")
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        if np.any(np.diff(xs) <= 0):
            raise GameDefinitionError("breakpoint x-coordinates must be strictly increasing")
        if np.any(np.diff(ys) < 0):
            raise GameDefinitionError("piecewise-linear latency must be non-decreasing")
        if np.any(ys < 0):
            raise GameDefinitionError("latency values must be non-negative")
        self.xs = xs
        self.ys = ys
        self._slopes = np.diff(ys) / np.diff(xs)
        self.zero_at_zero = ys[0] == 0.0

    def value(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        # np.interp handles interior points; extrapolate the last slope.
        inner = np.interp(arr, self.xs, self.ys)
        beyond = arr > self.xs[-1]
        if np.any(beyond):
            extrapolated = self.ys[-1] + self._slopes[-1] * (arr - self.xs[-1])
            inner = np.where(beyond, extrapolated, inner)
        return inner

    def derivative(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        idx = np.clip(np.searchsorted(self.xs, arr, side="right") - 1, 0, self._slopes.size - 1)
        return self._slopes[idx]

    def __repr__(self) -> str:
        pts = ", ".join(f"({x:g},{y:g})" for x, y in zip(self.xs, self.ys))
        return f"PiecewiseLinearLatency([{pts}])"


class TableLatency(LatencyFunction):
    """Latency defined by an explicit table of values at integer loads.

    ``values[k]`` is the latency at congestion ``k``; non-integer arguments
    are evaluated by linear interpolation and loads beyond the table are
    clamped to the last entry.  Useful for constructing exact worst-case
    instances (such as the lower-bound gadgets) without fitting a closed
    form.
    """

    def __init__(self, values: Sequence[float]):
        table = np.asarray(list(values), dtype=float)
        if table.ndim != 1 or table.size < 2:
            raise GameDefinitionError("table must contain at least two values")
        if np.any(table < 0):
            raise GameDefinitionError("latency values must be non-negative")
        if np.any(np.diff(table) < 0):
            raise GameDefinitionError("table latency must be non-decreasing")
        self.table = table
        self.zero_at_zero = table[0] == 0.0

    def value(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        xs = np.arange(self.table.size, dtype=float)
        return np.interp(np.clip(arr, 0.0, xs[-1]), xs, self.table)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        diffs = np.diff(self.table)
        idx = np.clip(np.floor(arr).astype(int), 0, diffs.size - 1)
        return np.where(arr >= self.table.size - 1, 0.0, diffs[idx])

    def __repr__(self) -> str:
        return f"TableLatency(len={self.table.size})"


class ScaledLatency(LatencyFunction):
    """``l(x) = value_factor * base(argument_factor * x)``.

    Argument scaling leaves the elasticity unchanged (the paper uses this in
    Theorem 9 with ``argument_factor = 1/n``); value scaling leaves both the
    elasticity and the relative latency gains unchanged.
    """

    def __init__(self, base: LatencyFunction, argument_factor: float = 1.0,
                 value_factor: float = 1.0):
        if argument_factor <= 0 or value_factor <= 0:
            raise GameDefinitionError("scaling factors must be positive")
        self.base = base
        self.argument_factor = float(argument_factor)
        self.value_factor = float(value_factor)
        self.zero_at_zero = base.zero_at_zero

    def value(self, x: np.ndarray) -> np.ndarray:
        return self.value_factor * self.base.value(np.asarray(x, dtype=float) * self.argument_factor)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        return (self.value_factor * self.argument_factor
                * self.base.derivative(arr * self.argument_factor))

    def elasticity_bound(self, max_load: int) -> float:
        # Elasticity is invariant under both argument and value scaling, but
        # the relevant argument range becomes (0, argument_factor * max_load].
        scaled_range = max(1, int(math.ceil(self.argument_factor * max_load)))
        return self.base.elasticity_bound(scaled_range)

    def kernel_poly_coefficients(self) -> "np.ndarray | None":
        base = self.base.kernel_poly_coefficients()
        if base is None:
            return None
        # v * sum_k c_k (a*x)^k = sum_k (v * c_k * a^k) x^k
        powers = self.argument_factor ** np.arange(base.size)
        return self.value_factor * base * powers

    def __repr__(self) -> str:
        return (f"ScaledLatency({self.base!r}, arg={self.argument_factor:g}, "
                f"val={self.value_factor:g})")


class ShiftedLatency(LatencyFunction):
    """``l(x) = base(x) + offset`` with ``offset >= 0``.

    Offsets reduce elasticity (the derivative is unchanged while the value
    grows) but break the ``l(0) = 0`` property required by Theorem 9.
    """

    def __init__(self, base: LatencyFunction, offset: float):
        if offset < 0:
            raise GameDefinitionError("offset must be non-negative")
        self.base = base
        self.offset = float(offset)
        self.zero_at_zero = base.zero_at_zero and offset == 0.0

    def value(self, x: np.ndarray) -> np.ndarray:
        return self.base.value(np.asarray(x, dtype=float)) + self.offset

    def derivative(self, x: np.ndarray) -> np.ndarray:
        return self.base.derivative(np.asarray(x, dtype=float))

    def elasticity_bound(self, max_load: int) -> float:
        if self.offset == 0.0:
            return self.base.elasticity_bound(max_load)
        return super().elasticity_bound(max_load)

    def kernel_poly_coefficients(self) -> "np.ndarray | None":
        base = self.base.kernel_poly_coefficients()
        if base is None:
            return None
        shifted = base.copy()
        shifted[0] += self.offset
        return shifted

    def __repr__(self) -> str:
        return f"ShiftedLatency({self.base!r}, offset={self.offset:g})"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def scale_to_population(latency: LatencyFunction, n: int) -> ScaledLatency:
    """Return the normalised latency ``l^n(x) = l(x / n)`` used by Theorem 9.

    The transformation models ``n`` agents of weight ``1/n`` each: the
    elasticity is unchanged while the slope ``nu`` shrinks as ``n`` grows.
    """
    if n <= 0:
        raise ValueError("population size must be positive")
    return ScaledLatency(latency, argument_factor=1.0 / n)


def validate_latency(latency: LatencyFunction, max_load: int, samples: int = 256) -> None:
    """Check the model assumptions on integer loads ``0..max_load``.

    Raises :class:`GameDefinitionError` if the function is negative,
    decreasing, or zero at a positive load.  :class:`ZeroLatency` structural
    helper edges are exempt from the positivity check (that is their point).
    """
    xs = np.linspace(0.0, float(max_load), num=max(2, samples))
    values = latency.value(xs)
    if np.any(values < 0):
        raise GameDefinitionError(f"{latency!r} takes negative values")
    if np.any(np.diff(values) < -1e-12):
        raise GameDefinitionError(f"{latency!r} is not non-decreasing")
    if latency.is_structural_zero:
        return
    positive_loads = xs[xs >= 1.0]
    if positive_loads.size and np.any(latency.value(positive_loads) <= 0):
        raise GameDefinitionError(f"{latency!r} is not strictly positive for loads >= 1")


# Short constructor aliases used heavily in tests and experiments -------

def constant(c: float) -> ConstantLatency:
    """Shorthand for :class:`ConstantLatency`."""
    return ConstantLatency(c)


def linear(a: float) -> LinearLatency:
    """Shorthand for the pure linear latency ``a * x``."""
    return LinearLatency(a, 0.0)


def affine(a: float, b: float) -> LinearLatency:
    """Shorthand for the affine latency ``a * x + b``."""
    return LinearLatency(a, b)


def monomial(a: float, degree: float) -> MonomialLatency:
    """Shorthand for :class:`MonomialLatency`."""
    return MonomialLatency(a, degree)


def polynomial(coeffs: Iterable[float]) -> PolynomialLatency:
    """Shorthand for :class:`PolynomialLatency` (coefficients by ascending degree)."""
    return PolynomialLatency(list(coeffs))
