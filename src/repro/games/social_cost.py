"""Social-cost measures.

Different parts of the paper evaluate states with different aggregate
measures: the Price-of-Imitation analysis uses the *average latency*
``SC(x) = sum_e (x_e / n) l_e(x_e)`` (and remarks the makespan works too),
the potential arguments use Rosenthal's potential, and the related-work
comparisons use the total latency.  This module gives all of them a common
callable interface so the analysis code can be parameterised by measure.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

from .base import CongestionGame
from .state import StateLike

__all__ = ["SocialCostMeasure", "evaluate", "MEASURES"]


class SocialCostMeasure(str, Enum):
    """Named social-cost measures supported by the analysis helpers."""

    AVERAGE_LATENCY = "average-latency"
    TOTAL_LATENCY = "total-latency"
    MAKESPAN = "makespan"
    POTENTIAL = "potential"


def _average(game: CongestionGame, state: StateLike) -> float:
    return game.average_latency(state)


def _total(game: CongestionGame, state: StateLike) -> float:
    return game.total_latency(state)


def _makespan(game: CongestionGame, state: StateLike) -> float:
    return game.makespan(state)


def _potential(game: CongestionGame, state: StateLike) -> float:
    return game.potential(state)


MEASURES: dict[SocialCostMeasure, Callable[[CongestionGame, StateLike], float]] = {
    SocialCostMeasure.AVERAGE_LATENCY: _average,
    SocialCostMeasure.TOTAL_LATENCY: _total,
    SocialCostMeasure.MAKESPAN: _makespan,
    SocialCostMeasure.POTENTIAL: _potential,
}


def evaluate(game: CongestionGame, state: StateLike,
             measure: SocialCostMeasure | str = SocialCostMeasure.AVERAGE_LATENCY) -> float:
    """Evaluate ``state`` under the requested social-cost measure."""
    measure = SocialCostMeasure(measure)
    return MEASURES[measure](game, state)
