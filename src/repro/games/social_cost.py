"""Social-cost measures.

Different parts of the paper evaluate states with different aggregate
measures: the Price-of-Imitation analysis uses the *average latency*
``SC(x) = sum_e (x_e / n) l_e(x_e)`` (and remarks the makespan works too),
the potential arguments use Rosenthal's potential, and the related-work
comparisons use the total latency.  This module gives all of them a common
callable interface so the analysis code can be parameterised by measure.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

import numpy as np

from .base import CongestionGame
from .state import BatchStateLike, StateLike

__all__ = ["SocialCostMeasure", "evaluate", "evaluate_batch", "MEASURES", "BATCH_MEASURES"]


class SocialCostMeasure(str, Enum):
    """Named social-cost measures supported by the analysis helpers."""

    AVERAGE_LATENCY = "average-latency"
    TOTAL_LATENCY = "total-latency"
    MAKESPAN = "makespan"
    POTENTIAL = "potential"


def _average(game: CongestionGame, state: StateLike) -> float:
    return game.average_latency(state)


def _total(game: CongestionGame, state: StateLike) -> float:
    return game.total_latency(state)


def _makespan(game: CongestionGame, state: StateLike) -> float:
    return game.makespan(state)


def _potential(game: CongestionGame, state: StateLike) -> float:
    return game.potential(state)


MEASURES: dict[SocialCostMeasure, Callable[[CongestionGame, StateLike], float]] = {
    SocialCostMeasure.AVERAGE_LATENCY: _average,
    SocialCostMeasure.TOTAL_LATENCY: _total,
    SocialCostMeasure.MAKESPAN: _makespan,
    SocialCostMeasure.POTENTIAL: _potential,
}


def evaluate(game: CongestionGame, state: StateLike,
             measure: SocialCostMeasure | str = SocialCostMeasure.AVERAGE_LATENCY) -> float:
    """Evaluate ``state`` under the requested social-cost measure."""
    measure = SocialCostMeasure(measure)
    return MEASURES[measure](game, state)


BATCH_MEASURES: dict[SocialCostMeasure, Callable[[CongestionGame, BatchStateLike], np.ndarray]] = {
    SocialCostMeasure.AVERAGE_LATENCY: CongestionGame.average_latency_batch,
    SocialCostMeasure.TOTAL_LATENCY: CongestionGame.total_latency_batch,
    SocialCostMeasure.MAKESPAN: CongestionGame.makespan_batch,
    SocialCostMeasure.POTENTIAL: CongestionGame.potential_batch,
}


def evaluate_batch(game: CongestionGame, batch: BatchStateLike,
                   measure: SocialCostMeasure | str = SocialCostMeasure.AVERAGE_LATENCY
                   ) -> np.ndarray:
    """Evaluate every replica of ``batch`` under the requested measure,
    returning one value per replica (shape ``(R,)``)."""
    measure = SocialCostMeasure(measure)
    return np.asarray(BATCH_MEASURES[measure](game, batch), dtype=float)
