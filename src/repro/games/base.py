"""Symmetric congestion games.

A symmetric congestion game is described by a set of *resources* (edges),
one non-decreasing latency function per resource, a common *strategy set*
(each strategy is a non-empty set of resources — a path in the network
interpretation of the paper), and a number of players ``n``.

The class :class:`CongestionGame` stores the strategy/resource incidence
matrix and offers vectorised primitives needed by the dynamics:

* per-strategy latencies ``l_P(x)`` and ``l_P(x + 1_P)``,
* the full post-migration latency matrix ``M[P, Q] = l_Q(x + 1_Q - 1_P)``
  (the latency a player currently on ``P`` would experience after switching
  to ``Q``, all other players fixed),
* the Rosenthal potential ``Phi(x) = sum_e sum_{i<=x_e} l_e(i)``,
* the structural parameters of the paper's analysis: the elasticity bound
  ``d``, the slope bound ``nu``, ``l_max`` and ``l_min``.

States are count vectors ``x_P``; see :mod:`repro.games.state`.
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..errors import GameDefinitionError, StateError
from ..rng import RngLike
from .latency import LatencyFunction, validate_latency

try:  # scipy is optional: without it the dense incidence path is used
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only on scipy-free installs
    _scipy_sparse = None
from .state import (
    BatchGameState,
    BatchStateLike,
    GameState,
    StateLike,
    all_on_one_counts,
    as_batch_counts,
    as_counts,
    balanced_counts,
    batch_uniform_random_counts,
    uniform_random_counts,
)

Strategy = tuple[int, ...]

__all__ = ["CongestionGame", "Strategy"]


class CongestionGame:
    """A symmetric congestion game on explicit strategy sets.

    Parameters
    ----------
    num_players:
        Number of players ``n`` (must be positive).
    latencies:
        One :class:`~repro.games.latency.LatencyFunction` per resource.
    strategies:
        Iterable of strategies; each strategy is an iterable of resource
        indices.  Duplicate resources within a strategy are ignored.
    resource_names, strategy_names:
        Optional human-readable labels used in reports.
    name:
        Optional instance name.
    validate:
        When True (default) the latency functions are checked against the
        model assumptions on the relevant load range.
    sparse_incidence:
        ``True`` evaluates the strategy/resource products through a sparse
        (CSR) incidence matrix (raising :class:`GameDefinitionError` when
        scipy is unavailable — an explicit request never degrades
        silently), ``False`` through the dense matrix, ``None`` (default)
        picks automatically: sparse when scipy is available and the
        incidence is both large and sparse enough for the CSR products
        to win.  Both paths are vectorised; the sparse path keeps the
        per-round cost proportional to the number of (strategy, resource)
        memberships instead of ``S * m`` — the regime of network games with
        many edges and bounded path length.
    """

    #: Auto-enable the sparse incidence path above this many S*m entries
    #: (provided the density is below _SPARSE_DENSITY and scipy is present).
    _SPARSE_CELLS = 16_384
    _SPARSE_DENSITY = 0.25

    def __init__(
        self,
        num_players: int,
        latencies: Sequence[LatencyFunction],
        strategies: Iterable[Iterable[int]],
        *,
        resource_names: Optional[Sequence[str]] = None,
        strategy_names: Optional[Sequence[str]] = None,
        name: str = "",
        validate: bool = True,
        sparse_incidence: Optional[bool] = None,
    ):
        if num_players <= 0:
            raise GameDefinitionError("a congestion game needs at least one player")
        self._num_players = int(num_players)
        self._latencies = list(latencies)
        if not self._latencies:
            raise GameDefinitionError("a congestion game needs at least one resource")

        normalised: list[Strategy] = []
        for strategy in strategies:
            resources = tuple(sorted(set(int(r) for r in strategy)))
            if not resources:
                raise GameDefinitionError("strategies must use at least one resource")
            if resources[0] < 0 or resources[-1] >= len(self._latencies):
                raise GameDefinitionError(
                    f"strategy {resources} references an unknown resource"
                )
            normalised.append(resources)
        if not normalised:
            raise GameDefinitionError("a congestion game needs at least one strategy")
        self._strategies: tuple[Strategy, ...] = tuple(normalised)

        self._resource_names = (
            list(resource_names)
            if resource_names is not None
            else [f"e{idx}" for idx in range(len(self._latencies))]
        )
        self._strategy_names = (
            list(strategy_names)
            if strategy_names is not None
            else ["{" + ",".join(self._resource_names[r] for r in s) + "}" for s in self._strategies]
        )
        if len(self._resource_names) != len(self._latencies):
            raise GameDefinitionError("resource_names length mismatch")
        if len(self._strategy_names) != len(self._strategies):
            raise GameDefinitionError("strategy_names length mismatch")
        self.name = name or type(self).__name__

        # Strategy/resource incidence matrix (S x m), float for fast matmul.
        incidence = np.zeros((len(self._strategies), len(self._latencies)), dtype=float)
        for idx, strategy in enumerate(self._strategies):
            incidence[idx, list(strategy)] = 1.0
        self._incidence = incidence
        self._incidence.setflags(write=False)
        self._sparse = self._resolve_sparse(sparse_incidence)
        if self._sparse:
            self._inc_csr = _scipy_sparse.csr_matrix(incidence)
            self._inc_csr_t = _scipy_sparse.csr_matrix(incidence.T)
        self._overlap_pairs: Optional[object] = None

        if validate:
            for latency in self._latencies:
                validate_latency(latency, max_load=self._num_players)

        self._potential_table: Optional[np.ndarray] = None
        self._kernel_incidence: Optional[tuple] = None
        self._kernel_latency: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def num_players(self) -> int:
        """Number of players ``n``."""
        return self._num_players

    @property
    def num_resources(self) -> int:
        """Number of resources (edges) ``m``."""
        return len(self._latencies)

    @property
    def num_strategies(self) -> int:
        """Number of strategies ``|P|``."""
        return len(self._strategies)

    @property
    def latencies(self) -> list[LatencyFunction]:
        """The per-resource latency functions."""
        return list(self._latencies)

    @property
    def strategies(self) -> tuple[Strategy, ...]:
        """The strategies as sorted tuples of resource indices."""
        return self._strategies

    @property
    def incidence(self) -> np.ndarray:
        """Read-only strategy/resource incidence matrix of shape (S, m)."""
        return self._incidence

    @property
    def uses_sparse_incidence(self) -> bool:
        """True when latency/potential evaluation runs on the CSR incidence."""
        return self._sparse

    def _resolve_sparse(self, requested: Optional[bool]) -> bool:
        if requested is True:
            # An explicit request must not degrade silently: a sweep row's
            # sparse_incidence column is part of the deterministic output,
            # so it cannot depend on which machine happened to have scipy.
            if _scipy_sparse is None:
                raise GameDefinitionError(
                    "sparse_incidence=True requires scipy; install it or "
                    "pass sparse_incidence=None/False"
                )
            return True
        if requested is False or _scipy_sparse is None:
            return False
        cells = self._incidence.size
        density = float(self._incidence.sum()) / cells
        return cells >= self._SPARSE_CELLS and density <= self._SPARSE_DENSITY

    def _overlap_pair_matrix(self):
        """CSR matrix ``W`` of shape ``(S*S, m)`` with ``W[P*S+Q, e] = 1``
        iff ``e in P ∩ Q`` — the shared-edge structure behind the
        post-migration overlap correction.  Both the scalar and the batched
        sparse paths multiply ``W`` against the marginal-latency matrix, so
        their per-replica arithmetic is identical.
        """
        if self._overlap_pairs is None:
            num_strategies = self.num_strategies
            rows: list[np.ndarray] = []
            cols: list[np.ndarray] = []
            members = self._inc_csr_t  # row e lists the strategies using e
            for resource in range(self.num_resources):
                users = members.indices[
                    members.indptr[resource]:members.indptr[resource + 1]]
                if users.size == 0:
                    continue
                p_grid, q_grid = np.meshgrid(users, users, indexing="ij")
                rows.append((p_grid * num_strategies + q_grid).ravel())
                cols.append(np.full(users.size * users.size, resource,
                                    dtype=np.int64))
            row_idx = (np.concatenate(rows) if rows
                       else np.empty(0, dtype=np.int64))
            col_idx = (np.concatenate(cols) if cols
                       else np.empty(0, dtype=np.int64))
            self._overlap_pairs = _scipy_sparse.csr_matrix(
                (np.ones(row_idx.size, dtype=float), (row_idx, col_idx)),
                shape=(num_strategies * num_strategies, self.num_resources),
            )
        return self._overlap_pairs

    def _overlap_correction_batch(self, marginal: np.ndarray) -> np.ndarray:
        """``(R, m)`` marginal latencies -> ``(R, S, S)`` overlap corrections
        through the shared-edge pair matrix (sparse path only)."""
        replicas = marginal.shape[0]
        flat = (self._overlap_pair_matrix() @ marginal.T).T
        return flat.reshape(replicas, self.num_strategies, self.num_strategies)

    # ------------------------------------------------------------------
    # Native-kernel lowering (consumed by repro.core.native)
    # ------------------------------------------------------------------
    def kernel_incidence(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR-style incidence arrays consumable from nopython code (cached).

        Returns ``(strat_indptr, strat_indices, res_indptr, res_indices)``,
        all ``int64``: the resources of strategy ``P`` are
        ``strat_indices[strat_indptr[P]:strat_indptr[P+1]]`` and the
        strategies using resource ``e`` are
        ``res_indices[res_indptr[e]:res_indptr[e+1]]``.  Built from the
        strategy tuples directly (no scipy dependency) — the resource →
        strategies direction is what lets the fused kernel compute the
        overlap correction ``sum_{e in P ∩ Q} marginal_e`` by scattering
        over the users of each resource of ``P`` instead of merging all
        ``S`` candidate strategies.
        """
        if self._kernel_incidence is None:
            strat_indptr = np.zeros(self.num_strategies + 1, dtype=np.int64)
            for idx, strategy in enumerate(self._strategies):
                strat_indptr[idx + 1] = strat_indptr[idx] + len(strategy)
            strat_indices = np.concatenate(
                [np.asarray(s, dtype=np.int64) for s in self._strategies])
            users: list[list[int]] = [[] for _ in range(self.num_resources)]
            for idx, strategy in enumerate(self._strategies):
                for resource in strategy:
                    users[resource].append(idx)
            res_indptr = np.zeros(self.num_resources + 1, dtype=np.int64)
            for resource, using in enumerate(users):
                res_indptr[resource + 1] = res_indptr[resource] + len(using)
            res_indices = (np.concatenate(
                [np.asarray(u, dtype=np.int64) for u in users if u])
                if any(users) else np.empty(0, dtype=np.int64))
            for arr in (strat_indptr, strat_indices, res_indptr, res_indices):
                arr.setflags(write=False)
            self._kernel_incidence = (strat_indptr, strat_indices,
                                      res_indptr, res_indices)
        return self._kernel_incidence

    #: Refuse to tabulate latencies past this many table cells — a game with
    #: millions of players must lower its non-polynomial latencies to
    #: coefficients (kernel_poly_coefficients) instead of value tables.
    _KERNEL_TABLE_CELLS = 200_000_000

    def kernel_latency_tables(self, dtype=np.float64
                              ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-resource latency lowering for the native kernel (cached per dtype).

        Returns ``(lat_kind, poly_coeffs, table, table_row)``:

        * ``lat_kind[e]`` is 0 when resource ``e`` evaluates by a Horner
          pass over ``poly_coeffs[e]`` (highest-degree-first, zero-padded to
          a common width), 1 when it evaluates by lookup in
          ``table[table_row[e], load]``;
        * ``table`` holds exact values at the integer loads ``0..n+1`` for
          every tabulated resource (loads are integral, so the table form is
          exact for arbitrary latency functions, not an approximation).

        Raises :class:`~repro.errors.GameDefinitionError` when tabulation
        would exceed the memory guard (``_KERNEL_TABLE_CELLS`` cells).
        """
        key = np.dtype(dtype).name
        if key not in self._kernel_latency:
            coeff_lists: list[Optional[np.ndarray]] = [
                lat.kernel_poly_coefficients() for lat in self._latencies]
            table_resources = [e for e, c in enumerate(coeff_lists) if c is None]
            width = max((c.size for c in coeff_lists if c is not None), default=1)
            lat_kind = np.zeros(self.num_resources, dtype=np.int64)
            poly_coeffs = np.zeros((self.num_resources, width), dtype=dtype)
            table_row = np.zeros(self.num_resources, dtype=np.int64)
            for e, coeffs in enumerate(coeff_lists):
                if coeffs is None:
                    lat_kind[e] = 1
                    continue
                # Horner wants highest degree first; left-pad with zeros.
                poly_coeffs[e, width - coeffs.size:] = coeffs[::-1]
            cells = len(table_resources) * (self.num_players + 2)
            if cells > self._KERNEL_TABLE_CELLS:
                names = [repr(self._latencies[e]) for e in table_resources[:3]]
                raise GameDefinitionError(
                    f"native-kernel latency tables would need {cells} cells "
                    f"({len(table_resources)} non-polynomial resources x "
                    f"{self.num_players + 2} loads); give these latencies a "
                    f"kernel_poly_coefficients form or use engine='batch' "
                    f"(first offenders: {', '.join(names)})"
                )
            if table_resources:
                loads = np.arange(self.num_players + 2, dtype=float)
                table = np.empty((len(table_resources), loads.size), dtype=dtype)
                for row, e in enumerate(table_resources):
                    table[row] = self._latencies[e].value(loads)
                    table_row[e] = row
            else:
                table = np.zeros((1, 1), dtype=dtype)
            for arr in (lat_kind, poly_coeffs, table, table_row):
                arr.setflags(write=False)
            self._kernel_latency[key] = (lat_kind, poly_coeffs, table, table_row)
        return self._kernel_latency[key]

    @property
    def resource_names(self) -> list[str]:
        """Human-readable resource labels."""
        return list(self._resource_names)

    @property
    def strategy_names(self) -> list[str]:
        """Human-readable strategy labels."""
        return list(self._strategy_names)

    @property
    def is_singleton(self) -> bool:
        """True if every strategy consists of exactly one resource."""
        return all(len(s) == 1 for s in self._strategies)

    def strategy_size(self) -> int:
        """``k = max_P |P|``, the maximum number of resources per strategy."""
        return max(len(s) for s in self._strategies)

    # ------------------------------------------------------------------
    # State handling
    # ------------------------------------------------------------------
    def validate_state(self, state: StateLike) -> np.ndarray:
        """Check that ``state`` is a valid count vector for this game and
        return it as an array."""
        counts = as_counts(state)
        if counts.size != self.num_strategies:
            raise StateError(
                f"state has {counts.size} entries, game has {self.num_strategies} strategies"
            )
        total = int(counts.sum())
        if total != self.num_players:
            raise StateError(
                f"state assigns {total} players, game has {self.num_players}"
            )
        return counts

    def validate_batch_state(self, batch: BatchStateLike) -> np.ndarray:
        """Check that every row of ``batch`` is a valid state of this game and
        return the batch as an ``(R, S)`` array."""
        counts = as_batch_counts(batch)
        if counts.shape[1] != self.num_strategies:
            raise StateError(
                f"batch states have {counts.shape[1]} entries, "
                f"game has {self.num_strategies} strategies"
            )
        totals = counts.sum(axis=1)
        bad = np.nonzero(totals != self.num_players)[0]
        if bad.size:
            raise StateError(
                f"replica {int(bad[0])} assigns {int(totals[bad[0]])} players, "
                f"game has {self.num_players}"
            )
        return counts

    def uniform_random_state(self, rng: RngLike = None) -> GameState:
        """Random initialisation: each player independently picks a uniform strategy."""
        return GameState(uniform_random_counts(self.num_players, self.num_strategies, rng))

    def uniform_random_batch_state(self, replicas: int, rng: RngLike = None) -> BatchGameState:
        """``replicas`` independent uniform-random initial states."""
        return BatchGameState(
            batch_uniform_random_counts(self.num_players, self.num_strategies, replicas, rng)
        )

    def all_on_one_state(self, strategy: int = 0) -> GameState:
        """All players on a single strategy."""
        return GameState(all_on_one_counts(self.num_players, self.num_strategies, strategy))

    def balanced_state(self) -> GameState:
        """Players spread as evenly as possible over the strategies."""
        return GameState(balanced_counts(self.num_players, self.num_strategies))

    # ------------------------------------------------------------------
    # Latency evaluation
    # ------------------------------------------------------------------
    def congestion(self, state: StateLike) -> np.ndarray:
        """Per-resource congestion ``x_e = sum_{P ∋ e} x_P`` (shape (m,))."""
        counts = as_counts(state)
        if self._sparse:
            return self._inc_csr_t @ counts.astype(float)
        return self._incidence.T @ counts.astype(float)

    def resource_latencies(self, loads: np.ndarray) -> np.ndarray:
        """Evaluate every resource's latency at the given load vector."""
        loads = np.asarray(loads, dtype=float)
        return np.array([lat.value(np.asarray(load)) for lat, load in zip(self._latencies, loads)],
                        dtype=float)

    def strategy_latencies(self, state: StateLike) -> np.ndarray:
        """``l_P(x)`` for every strategy ``P`` (shape (S,))."""
        loads = self.congestion(state)
        latencies = self.resource_latencies(loads)
        if self._sparse:
            return self._inc_csr @ latencies
        return self._incidence @ latencies

    def strategy_latencies_after_join(self, state: StateLike) -> np.ndarray:
        """``l_P^+(x) = l_P(x + 1_P)``: the latency of ``P`` if one extra
        player joined every resource of ``P`` (paper, Section 2.1)."""
        loads = self.congestion(state)
        latencies = self.resource_latencies(loads + 1.0)
        if self._sparse:
            return self._inc_csr @ latencies
        return self._incidence @ latencies

    def post_migration_latency_matrix(self, state: StateLike) -> np.ndarray:
        """Matrix ``M[P, Q] = l_Q(x + 1_Q - 1_P)``.

        ``M[P, Q]`` is the latency a player currently on ``P`` anticipates on
        ``Q`` if it migrates alone.  Resources shared by ``P`` and ``Q`` keep
        their current congestion, all other resources of ``Q`` gain one unit:

        ``M[P, Q] = l_Q^+(x) - sum_{e in P ∩ Q} (l_e(x_e + 1) - l_e(x_e))``.

        The diagonal therefore equals ``l_P(x)``.
        """
        loads = self.congestion(state)
        latency_now = self.resource_latencies(loads)
        latency_plus = self.resource_latencies(loads + 1.0)
        marginal = latency_plus - latency_now
        if self._sparse:
            joined = self._inc_csr @ latency_plus
            overlap_correction = self._overlap_correction_batch(
                marginal[np.newaxis, :])[0]
        else:
            joined = self._incidence @ latency_plus  # l_Q^+ per strategy
            overlap_correction = (self._incidence * marginal) @ self._incidence.T
        return joined[np.newaxis, :] - overlap_correction

    def player_latency(self, state: StateLike, strategy: int) -> float:
        """Latency experienced by a player using ``strategy`` in ``state``."""
        return float(self.strategy_latencies(state)[strategy])

    # ------------------------------------------------------------------
    # Batched latency evaluation (ensemble engine)
    # ------------------------------------------------------------------
    def congestion_batch(self, batch: BatchStateLike) -> np.ndarray:
        """Per-replica resource congestion, shape ``(R, m)``."""
        counts = as_batch_counts(batch)
        if self._sparse:
            return (self._inc_csr_t @ counts.astype(float).T).T
        return counts.astype(float) @ self._incidence

    def resource_latencies_batch(self, loads: np.ndarray) -> np.ndarray:
        """Evaluate every resource's latency on an ``(R, m)`` load matrix.

        Each latency function is evaluated once on its whole column, so the
        cost is one vectorised call per resource regardless of ``R``.
        """
        loads = np.asarray(loads, dtype=float)
        columns = [np.asarray(lat.value(loads[:, e]), dtype=float)
                   for e, lat in enumerate(self._latencies)]
        return np.stack(columns, axis=1)

    def strategy_latencies_batch(self, batch: BatchStateLike) -> np.ndarray:
        """``l_P(x_r)`` for every replica and strategy, shape ``(R, S)``."""
        loads = self.congestion_batch(batch)
        latencies = self.resource_latencies_batch(loads)
        if self._sparse:
            return (self._inc_csr @ latencies.T).T
        return latencies @ self._incidence.T

    def strategy_latencies_after_join_batch(self, batch: BatchStateLike) -> np.ndarray:
        """``l_P(x_r + 1_P)`` per replica and strategy, shape ``(R, S)``."""
        loads = self.congestion_batch(batch)
        latencies = self.resource_latencies_batch(loads + 1.0)
        if self._sparse:
            return (self._inc_csr @ latencies.T).T
        return latencies @ self._incidence.T

    def post_migration_latency_matrix_batch(self, batch: BatchStateLike) -> np.ndarray:
        """``M[r, P, Q] = l_Q(x_r + 1_Q - 1_P)``, shape ``(R, S, S)``.

        The broadcasted analogue of :meth:`post_migration_latency_matrix`:
        the marginal latency increase is evaluated once per replica and the
        overlap correction is a batched matrix product.
        """
        loads = self.congestion_batch(batch)
        latency_now = self.resource_latencies_batch(loads)
        latency_plus = self.resource_latencies_batch(loads + 1.0)
        marginal = latency_plus - latency_now  # (R, m)
        if self._sparse:
            joined = (self._inc_csr @ latency_plus.T).T  # (R, S)
            overlap_correction = self._overlap_correction_batch(marginal)
        else:
            joined = latency_plus @ self._incidence.T  # (R, S): l_Q^+ per replica
            overlap_correction = (
                self._incidence[np.newaxis, :, :] * marginal[:, np.newaxis, :]
            ) @ self._incidence.T  # (R, S, S)
        return joined[:, np.newaxis, :] - overlap_correction

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def average_latency(self, state: StateLike) -> float:
        """``L_av(x) = sum_P (x_P / n) l_P(x)``."""
        counts = as_counts(state)
        latencies = self.strategy_latencies(counts)
        return float(counts @ latencies / self.num_players)

    def average_latency_after_join(self, state: StateLike) -> float:
        """``L_av^+(x) = sum_P (x_P / n) l_P(x + 1_P)``."""
        counts = as_counts(state)
        latencies_plus = self.strategy_latencies_after_join(counts)
        return float(counts @ latencies_plus / self.num_players)

    def total_latency(self, state: StateLike) -> float:
        """``sum_P x_P l_P(x) = n * L_av(x)``."""
        counts = as_counts(state)
        return float(counts @ self.strategy_latencies(counts))

    def social_cost(self, state: StateLike) -> float:
        """Social cost used in Section 5.1: the average latency ``L_av``."""
        return self.average_latency(state)

    def makespan(self, state: StateLike) -> float:
        """Maximum latency sustained by any player (0 if a strategy is empty
        it does not count)."""
        counts = as_counts(state)
        latencies = self.strategy_latencies(counts)
        used = counts > 0
        if not np.any(used):
            return 0.0
        return float(np.max(latencies[used]))

    # ------------------------------------------------------------------
    # Batched aggregates (ensemble engine)
    # ------------------------------------------------------------------
    def average_latency_batch(self, batch: BatchStateLike) -> np.ndarray:
        """``L_av(x_r)`` per replica, shape ``(R,)``."""
        counts = as_batch_counts(batch)
        latencies = self.strategy_latencies_batch(counts)
        return np.einsum("rs,rs->r", counts.astype(float), latencies) / self.num_players

    def average_latency_after_join_batch(self, batch: BatchStateLike) -> np.ndarray:
        """``L_av^+(x_r)`` per replica, shape ``(R,)``."""
        counts = as_batch_counts(batch)
        latencies_plus = self.strategy_latencies_after_join_batch(counts)
        return np.einsum("rs,rs->r", counts.astype(float), latencies_plus) / self.num_players

    def total_latency_batch(self, batch: BatchStateLike) -> np.ndarray:
        """``n * L_av(x_r)`` per replica, shape ``(R,)``."""
        return self.average_latency_batch(batch) * self.num_players

    def social_cost_batch(self, batch: BatchStateLike) -> np.ndarray:
        """Per-replica social cost (average latency), shape ``(R,)``."""
        return self.average_latency_batch(batch)

    def makespan_batch(self, batch: BatchStateLike) -> np.ndarray:
        """Per-replica maximum latency over occupied strategies, shape ``(R,)``."""
        counts = as_batch_counts(batch)
        latencies = self.strategy_latencies_batch(counts)
        masked = np.where(counts > 0, latencies, -np.inf)
        result = masked.max(axis=1)
        return np.where(np.isfinite(result), result, 0.0)

    def potential_batch(self, batch: BatchStateLike) -> np.ndarray:
        """Rosenthal potential per replica, shape ``(R,)``.

        One table lookup per (replica, resource) pair against the shared
        latency prefix table — no per-replica Python work.
        """
        counts = as_batch_counts(batch)
        loads = np.rint(self.congestion_batch(counts)).astype(int)
        loads = np.clip(loads, 0, self.num_players)
        table = self._latency_prefix_table()
        return table[np.arange(self.num_resources)[np.newaxis, :], loads].sum(axis=1)

    # ------------------------------------------------------------------
    # Rosenthal potential
    # ------------------------------------------------------------------
    def _latency_prefix_table(self) -> np.ndarray:
        """Cumulative sums ``T[e, k] = sum_{i=1..k} l_e(i)`` for ``k = 0..n``."""
        if self._potential_table is None:
            loads = np.arange(1, self.num_players + 1, dtype=float)
            rows = []
            for latency in self._latencies:
                values = latency.value(loads)
                rows.append(np.concatenate(([0.0], np.cumsum(values))))
            self._potential_table = np.vstack(rows)
            self._potential_table.setflags(write=False)
        return self._potential_table

    def potential(self, state: StateLike) -> float:
        """Rosenthal potential ``Phi(x) = sum_e sum_{i=1..x_e} l_e(i)``."""
        counts = as_counts(state)
        loads = np.rint(self.congestion(counts)).astype(int)
        table = self._latency_prefix_table()
        return float(table[np.arange(self.num_resources), np.clip(loads, 0, self.num_players)].sum())

    def potential_upper_bound(self) -> float:
        """A coarse upper bound on the potential over all states:
        every resource loaded with all ``n`` players."""
        table = self._latency_prefix_table()
        return float(table[:, -1].sum())

    def minimum_potential(self, *, exhaustive_limit: int = 200_000) -> float:
        """``Phi* = min_x Phi(x)``.

        Computed exactly by enumerating states when the state space is small
        (at most ``exhaustive_limit`` states), otherwise by best-response
        descent from several starting points (which reaches a local minimum
        of the potential; for the logarithmic bounds of the paper only the
        order of magnitude matters).
        """
        from .nash import best_response_potential_minimum  # local import, avoids cycle

        return best_response_potential_minimum(self, exhaustive_limit=exhaustive_limit)

    # ------------------------------------------------------------------
    # Structural parameters (paper Section 2.2)
    # ------------------------------------------------------------------
    @cached_property
    def elasticity_bound(self) -> float:
        """``d``: maximum elasticity of any latency function on ``(0, n]``.

        The protocol requires ``d >= 1`` as a damping denominator, so the
        returned value is clamped below at 1.
        """
        bound = max(lat.elasticity_bound(self.num_players) for lat in self._latencies)
        return max(1.0, float(bound))

    @cached_property
    def resource_slope_bounds(self) -> np.ndarray:
        """``nu_e`` per resource: maximum step of ``l_e`` on loads ``1..d``."""
        d = int(math.ceil(self.elasticity_bound))
        return np.array([lat.slope_bound(d) for lat in self._latencies], dtype=float)

    @cached_property
    def strategy_slope_bounds(self) -> np.ndarray:
        """``nu_P = sum_{e in P} nu_e`` per strategy."""
        return self._incidence @ self.resource_slope_bounds

    @cached_property
    def nu_bound(self) -> float:
        """``nu >= max_P nu_P``: the gain threshold used by the protocol."""
        return float(np.max(self.strategy_slope_bounds))

    @cached_property
    def max_strategy_latency(self) -> float:
        """``l_max``: maximum latency of any strategy over all states,
        bounded by loading every resource of the strategy with all n players."""
        full_load = self.resource_latencies(np.full(self.num_resources, float(self.num_players)))
        return float(np.max(self._incidence @ full_load))

    @cached_property
    def min_resource_latency(self) -> float:
        """``l_min = min_e l_e(1)``: minimum latency of a resource used by one player.

        :class:`~repro.games.latency.ZeroLatency` structural helper edges
        (the connectors of the network generators) are excluded — they are
        exempt from the positivity assumption, so letting them drag ``l_min``
        to zero would poison every bound derived from it.
        """
        single_load = self.resource_latencies(np.ones(self.num_resources))
        real = np.array([not lat.is_structural_zero for lat in self._latencies])
        if np.any(real):
            return float(np.min(single_load[real]))
        return float(np.min(single_load))

    @cached_property
    def max_slope(self) -> float:
        """``beta``: maximum one-player latency increase of any strategy over
        all loads (used by the EXPLORATION PROTOCOL damping)."""
        loads = np.arange(1, self.num_players + 1, dtype=float)
        per_resource = []
        for latency in self._latencies:
            values = latency.value(loads)
            values_prev = latency.value(loads - 1.0)
            per_resource.append(float(np.max(values - values_prev)))
        per_resource_array = np.asarray(per_resource)
        return float(np.max(self._incidence @ per_resource_array))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def restrict_to_strategies(self, keep: Sequence[int]) -> "CongestionGame":
        """Return a copy of the game with the strategy set restricted to
        ``keep`` (used by the Price-of-Imitation analysis which removes
        emptied resources)."""
        keep = list(keep)
        if not keep:
            raise GameDefinitionError("cannot restrict to an empty strategy set")
        return CongestionGame(
            self.num_players,
            self._latencies,
            [self._strategies[i] for i in keep],
            resource_names=self._resource_names,
            strategy_names=[self._strategy_names[i] for i in keep],
            name=f"{self.name}|restricted",
            validate=False,
        )

    def describe(self) -> str:
        """One-line description used in experiment tables."""
        return (f"{self.name}: n={self.num_players}, m={self.num_resources}, "
                f"|P|={self.num_strategies}, d<={self.elasticity_bound:.3g}")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(n={self.num_players}, m={self.num_resources}, "
                f"strategies={self.num_strategies})")
