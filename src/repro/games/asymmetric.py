"""Asymmetric congestion games (player-specific strategy spaces).

The concurrent IMITATION PROTOCOL is analysed for symmetric games, but the
paper notes (end of Section 3.1) that all potential-based arguments carry
over to asymmetric games provided each player samples only among players with
the same strategy space.  Asymmetric games are also the natural home of the
*threshold games* used in the Theorem 6 lower-bound construction, where every
player has exactly two strategies of its own.

Because the players are no longer exchangeable, the state of an asymmetric
game is a *profile*: an integer array ``profile[i]`` holding the index of the
strategy chosen by player ``i`` within its own strategy list.

The sequential dynamics (:mod:`repro.core.sequential`) evaluate
``imitation_moves`` / ``apply_move`` once per single-player move, so these
are hot paths: the implementation flattens every (player, strategy) pair
into one row of a shared incidence matrix and evaluates congestions,
latencies and candidate gains with broadcasted array operations instead of
scanning Python lists.  Games whose latencies are all
:class:`~repro.games.latency.LinearLatency` (the threshold games of the
Theorem 6 construction) additionally evaluate all resource latencies with a
single fused multiply-add.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import GameDefinitionError, StateError
from ..rng import RngLike, ensure_rng
from .latency import LatencyFunction, LinearLatency

Strategy = tuple[int, ...]

__all__ = ["AsymmetricCongestionGame"]


class AsymmetricCongestionGame:
    """A congestion game in which every player has its own strategy list.

    Parameters
    ----------
    latencies:
        One latency function per resource.
    strategy_spaces:
        ``strategy_spaces[i]`` is the list of strategies available to player
        ``i``; each strategy is an iterable of resource indices.
    player_names, resource_names:
        Optional labels for reports.
    """

    def __init__(
        self,
        latencies: Sequence[LatencyFunction],
        strategy_spaces: Sequence[Iterable[Iterable[int]]],
        *,
        player_names: Optional[Sequence[str]] = None,
        resource_names: Optional[Sequence[str]] = None,
        name: str = "asymmetric-game",
    ):
        self._latencies = list(latencies)
        if not self._latencies:
            raise GameDefinitionError("need at least one resource")
        self._strategy_spaces: list[tuple[Strategy, ...]] = []
        for player, space in enumerate(strategy_spaces):
            normalised: list[Strategy] = []
            for strategy in space:
                resources = tuple(sorted(set(int(r) for r in strategy)))
                if not resources:
                    raise GameDefinitionError(
                        f"player {player} has an empty strategy"
                    )
                if resources[0] < 0 or resources[-1] >= len(self._latencies):
                    raise GameDefinitionError(
                        f"player {player} strategy {resources} references an unknown resource"
                    )
                normalised.append(resources)
            if not normalised:
                raise GameDefinitionError(f"player {player} has no strategies")
            self._strategy_spaces.append(tuple(normalised))
        if not self._strategy_spaces:
            raise GameDefinitionError("need at least one player")

        self._player_names = (
            list(player_names) if player_names is not None
            else [f"p{idx}" for idx in range(len(self._strategy_spaces))]
        )
        self._resource_names = (
            list(resource_names) if resource_names is not None
            else [f"e{idx}" for idx in range(len(self._latencies))]
        )
        self.name = name
        self._build_tables()

    def _build_tables(self) -> None:
        """Precompute the flattened (player, strategy) machinery.

        Every strategy of every player becomes one row of a shared incidence
        matrix; the hot paths gather/scatter against these rows instead of
        iterating strategy lists.
        """
        num_players = len(self._strategy_spaces)
        num_resources = len(self._latencies)
        self._num_strategies_arr = np.array(
            [len(space) for space in self._strategy_spaces], dtype=np.int64
        )
        self._row_offsets = np.concatenate(
            ([0], np.cumsum(self._num_strategies_arr[:-1]))
        ).astype(np.int64)
        total_rows = int(self._num_strategies_arr.sum())
        incidence = np.zeros((total_rows, num_resources), dtype=float)
        row_player = np.empty(total_rows, dtype=np.int64)
        row_strategy = np.empty(total_rows, dtype=np.int64)
        row = 0
        for player, space in enumerate(self._strategy_spaces):
            for index, strategy in enumerate(space):
                incidence[row, list(strategy)] = 1.0
                row_player[row] = player
                row_strategy[row] = index
                row += 1
        incidence.setflags(write=False)
        self._strategy_incidence = incidence
        self._row_player = row_player
        self._row_strategy = row_strategy

        # Group id per player (groups = identical strategy spaces, in order
        # of first appearance — the strategy_space_groups() ordering).
        group_index: dict[tuple[Strategy, ...], int] = {}
        group_ids = np.empty(num_players, dtype=np.int64)
        for player, space in enumerate(self._strategy_spaces):
            group_ids[player] = group_index.setdefault(space, len(group_index))
        self._group_ids = group_ids
        self._num_groups = len(group_index)
        self._max_strategies = int(self._num_strategies_arr.max())

        # Fused evaluation of all resource latencies when every latency is
        # affine (the threshold-game case): l(x) = slope * x + offset.
        if all(type(lat) is LinearLatency for lat in self._latencies):
            self._linear_slopes: Optional[np.ndarray] = np.array(
                [lat.a for lat in self._latencies], dtype=float
            )
            self._linear_offsets: Optional[np.ndarray] = np.array(
                [lat.b for lat in self._latencies], dtype=float
            )
        else:
            self._linear_slopes = None
            self._linear_offsets = None

    # ------------------------------------------------------------------
    @property
    def num_players(self) -> int:
        """Number of players."""
        return len(self._strategy_spaces)

    @property
    def num_resources(self) -> int:
        """Number of resources."""
        return len(self._latencies)

    @property
    def latencies(self) -> list[LatencyFunction]:
        """The per-resource latency functions."""
        return list(self._latencies)

    @property
    def player_names(self) -> list[str]:
        """Player labels."""
        return list(self._player_names)

    def strategy_space(self, player: int) -> tuple[Strategy, ...]:
        """The strategy list of ``player``."""
        return self._strategy_spaces[player]

    def num_strategies(self, player: int) -> int:
        """Number of strategies of ``player``."""
        return len(self._strategy_spaces[player])

    def strategy_space_groups(self) -> dict[tuple[Strategy, ...], list[int]]:
        """Group players by identical strategy spaces.

        Imitation in asymmetric games is restricted to players within the
        same group (they are the only ones whose strategies are feasible for
        the imitator).
        """
        groups: dict[tuple[Strategy, ...], list[int]] = {}
        for player, space in enumerate(self._strategy_spaces):
            groups.setdefault(space, []).append(player)
        return groups

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def validate_profile(self, profile: Sequence[int]) -> np.ndarray:
        """Check a strategy profile and return it as an array."""
        arr = np.asarray(profile, dtype=np.int64)
        if arr.shape != (self.num_players,):
            raise StateError(
                f"profile must have one entry per player ({self.num_players})"
            )
        bad = np.nonzero((arr < 0) | (arr >= self._num_strategies_arr))[0]
        if bad.size:
            player = int(bad[0])
            raise StateError(
                f"player {player} has no strategy index {int(arr[player])}"
            )
        return arr

    def random_profile(self, rng: RngLike = None) -> np.ndarray:
        """Every player independently picks a uniform strategy of its own."""
        gen = ensure_rng(rng)
        return np.array(
            [gen.integers(0, self.num_strategies(p)) for p in range(self.num_players)],
            dtype=np.int64,
        )

    def congestion(self, profile: Sequence[int]) -> np.ndarray:
        """Per-resource congestion induced by ``profile``."""
        arr = self.validate_profile(profile)
        rows = self._row_offsets + arr
        return np.rint(self._strategy_incidence[rows].sum(axis=0)).astype(np.int64)

    def resource_latencies(self, loads: np.ndarray) -> np.ndarray:
        """Per-resource latency at the given loads."""
        if self._linear_slopes is not None:
            return self._linear_slopes * np.asarray(loads, dtype=float) + self._linear_offsets
        return np.array(
            [lat.value(np.asarray(float(load))) for lat, load in zip(self._latencies, loads)],
            dtype=float,
        )

    def player_latency(self, profile: Sequence[int], player: int,
                       loads: Optional[np.ndarray] = None) -> float:
        """Latency of ``player`` under ``profile``."""
        arr = self.validate_profile(profile)
        if loads is None:
            loads = self.congestion(arr)
        strategy = self._strategy_spaces[player][arr[player]]
        latencies = self.resource_latencies(loads)
        return float(sum(latencies[r] for r in strategy))

    def latency_after_switch(self, profile: Sequence[int], player: int,
                             new_strategy: int,
                             loads: Optional[np.ndarray] = None) -> float:
        """Latency ``player`` would experience after unilaterally switching to
        ``new_strategy`` (its own index), all other players fixed."""
        arr = self.validate_profile(profile)
        if loads is None:
            loads = self.congestion(arr)
        current = set(self._strategy_spaces[player][arr[player]])
        target = self._strategy_spaces[player][new_strategy]
        total = 0.0
        for resource in target:
            load = loads[resource]
            if resource not in current:
                load = load + 1
            total += float(self._latencies[resource].value(np.asarray(float(load))))
        return total

    # ------------------------------------------------------------------
    # Potential and equilibrium notions
    # ------------------------------------------------------------------
    def potential(self, profile: Sequence[int]) -> float:
        """Rosenthal potential of the profile."""
        loads = self.congestion(profile)
        if self._linear_slopes is not None:
            # sum_{i=1..L} (a*i + b) = a * L(L+1)/2 + b * L, fused over resources.
            loads_f = loads.astype(float)
            return float(np.sum(self._linear_slopes * loads_f * (loads_f + 1.0) / 2.0
                                + self._linear_offsets * loads_f))
        total = 0.0
        for latency, load in zip(self._latencies, loads):
            if load > 0:
                values = latency.value(np.arange(1, int(load) + 1, dtype=float))
                total += float(np.sum(values))
        return total

    def improving_moves(self, profile: Sequence[int], *, tolerance: float = 1e-12
                        ) -> list[tuple[int, int, float]]:
        """All strictly improving unilateral deviations.

        Returns a list of ``(player, new_strategy_index, gain)`` with
        ``gain > tolerance``.
        """
        arr = self.validate_profile(profile)
        loads = self.congestion(arr)
        moves: list[tuple[int, int, float]] = []
        for player in range(self.num_players):
            current_latency = self.player_latency(arr, player, loads=loads)
            for candidate in range(self.num_strategies(player)):
                if candidate == arr[player]:
                    continue
                new_latency = self.latency_after_switch(arr, player, candidate, loads=loads)
                gain = current_latency - new_latency
                if gain > tolerance:
                    moves.append((player, candidate, gain))
        return moves

    def is_nash(self, profile: Sequence[int], *, tolerance: float = 1e-12) -> bool:
        """True if no player has a strictly improving unilateral deviation."""
        return not self.improving_moves(profile, tolerance=tolerance)

    def apply_move(self, profile: Sequence[int], player: int, new_strategy: int) -> np.ndarray:
        """Return the profile with ``player`` switched to ``new_strategy``."""
        arr = self.validate_profile(profile).copy()
        if not 0 <= new_strategy < self.num_strategies(player):
            raise StateError(f"player {player} has no strategy index {new_strategy}")
        arr[player] = new_strategy
        return arr

    # ------------------------------------------------------------------
    # Imitation moves (within identical strategy spaces)
    # ------------------------------------------------------------------
    def imitation_moves(self, profile: Sequence[int], *, tolerance: float = 1e-12,
                        require_gain: bool = True) -> list[tuple[int, int, float]]:
        """All moves in which a player adopts the strategy of another player
        with the same strategy space.

        Returns tuples ``(imitator, new_strategy_index, gain)``, ordered by
        ``(imitator, new_strategy_index)``.  When ``require_gain`` is True
        only strictly improving imitations are returned (the sequential
        dynamics of Section 3.2).

        The candidate set is evaluated in one broadcasted pass over the
        flattened (player, strategy) rows: per-resource latencies at the
        current and one-higher loads, the after-switch latency of every row
        via the shared incidence matrix, and the same-group occupancy test
        via a (group, strategy) count table.
        """
        arr = self.validate_profile(profile)
        chosen_rows = self._row_offsets + arr
        incidence = self._strategy_incidence
        loads = np.rint(incidence[chosen_rows].sum(axis=0)).astype(np.int64)

        latency_now = self.resource_latencies(loads)
        latency_plus = self.resource_latencies(loads + 1)
        marginal = latency_plus - latency_now

        current_incidence = incidence[chosen_rows]  # (n, m)
        current_latency = current_incidence @ latency_now  # (n,)
        # After-switch latency of every (player, strategy) row: resources the
        # target shares with the player's current strategy keep their load.
        overlap = incidence * current_incidence[self._row_player]
        after = incidence @ latency_plus - overlap @ marginal  # (rows,)
        gains = current_latency[self._row_player] - after

        # A strategy is imitable iff some *other* same-group player uses it;
        # since the player's own strategy is excluded anyway, "group count on
        # the target > 0" is exactly that condition.
        group_counts = np.zeros((self._num_groups, self._max_strategies), dtype=np.int64)
        np.add.at(group_counts, (self._group_ids, arr), 1)
        occupied = group_counts[self._group_ids[self._row_player], self._row_strategy] > 0

        eligible = occupied & (self._row_strategy != arr[self._row_player])
        if require_gain:
            eligible &= gains > tolerance
        rows = np.nonzero(eligible)[0]
        return [(int(self._row_player[row]), int(self._row_strategy[row]),
                 float(gains[row])) for row in rows]

    def is_imitation_stable(self, profile: Sequence[int], *, tolerance: float = 1e-12) -> bool:
        """True if no player can strictly improve by copying a same-space player."""
        return not self.imitation_moves(profile, tolerance=tolerance)

    def __repr__(self) -> str:
        return (f"AsymmetricCongestionGame(players={self.num_players}, "
                f"resources={self.num_resources})")
