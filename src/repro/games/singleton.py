"""Singleton (parallel-links) congestion games.

In a singleton game every strategy is a single resource: ``n`` players choose
among ``m`` parallel links between the common source and sink.  Sections 5
and 5.1 of the paper study this class: Theorem 9 (no strategy extinction with
high probability, for latencies with ``l_e(0) = 0``) and Theorem 10 (Price of
Imitation at most ``3 + o(1)`` for linear latencies ``l_e(x) = a_e x`` without
useless links).

Besides the game itself, this module implements the quantities used in that
analysis: ``A_Gamma = sum_e 1/a_e``, the fractional optimum
``x~_e = n / (A_Gamma a_e)``, useless-link detection, and the exact integral
optimum via greedy marginal-cost assignment (exact for non-decreasing
marginal costs, i.e. convex total-latency links such as linear ones).
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

import numpy as np

from ..errors import GameDefinitionError
from .base import CongestionGame
from .latency import LatencyFunction, LinearLatency, scale_to_population

__all__ = ["SingletonCongestionGame", "make_linear_singleton", "make_scaled_singleton"]


class SingletonCongestionGame(CongestionGame):
    """Parallel-links congestion game: strategy ``e`` = {resource ``e``}."""

    def __init__(
        self,
        num_players: int,
        latencies: Sequence[LatencyFunction],
        *,
        resource_names: Optional[Sequence[str]] = None,
        name: str = "singleton-game",
        validate: bool = True,
    ):
        strategies = [[idx] for idx in range(len(latencies))]
        super().__init__(
            num_players,
            latencies,
            strategies,
            resource_names=resource_names,
            strategy_names=list(resource_names) if resource_names is not None else None,
            name=name,
            validate=validate,
        )

    # ------------------------------------------------------------------
    # Linear-latency analytics (paper Section 5.1)
    # ------------------------------------------------------------------
    @property
    def is_linear(self) -> bool:
        """True if every latency is of the pure linear form ``a_e x``."""
        return all(isinstance(lat, LinearLatency) and lat.b == 0.0 for lat in self.latencies)

    def linear_coefficients(self) -> np.ndarray:
        """The vector ``a_e`` of linear coefficients (requires :attr:`is_linear`)."""
        if not self.is_linear:
            raise GameDefinitionError("linear coefficients only exist for linear games")
        return np.array([lat.a for lat in self.latencies], dtype=float)  # type: ignore[attr-defined]

    def a_gamma(self) -> float:
        """``A_Gamma = sum_e 1/a_e`` (paper, Section 5.1)."""
        coeffs = self.linear_coefficients()
        return float(np.sum(1.0 / coeffs))

    def fractional_optimum(self) -> np.ndarray:
        """Fractional optimum ``x~_e = n / (A_Gamma a_e)``.

        In this assignment every link has the same latency ``n / A_Gamma``,
        which is simultaneously the optimal fractional average latency and
        the Wardrop equilibrium of the linear game.
        """
        coeffs = self.linear_coefficients()
        return self.num_players / (self.a_gamma() * coeffs)

    def optimal_fractional_cost(self) -> float:
        """Average latency of the fractional optimum, ``n / A_Gamma``."""
        return self.num_players / self.a_gamma()

    def useless_resources(self) -> np.ndarray:
        """Indices of useless links: ``x~_e < 1`` (paper, Section 5.1).

        A useless link is so slow that even the fractional optimum assigns it
        less than one player; the Price-of-Imitation bound assumes none exist.
        """
        return np.nonzero(self.fractional_optimum() < 1.0)[0]

    def has_useless_resources(self) -> bool:
        """True if at least one link is useless."""
        return bool(self.useless_resources().size > 0)

    # ------------------------------------------------------------------
    # Exact integral optimum (greedy marginal-cost assignment)
    # ------------------------------------------------------------------
    def optimum_total_latency_assignment(self) -> np.ndarray:
        """Integral assignment minimising the *total* latency
        ``sum_e x_e l_e(x_e)``.

        Uses the classical greedy that repeatedly places the next player on
        the link with the smallest marginal increase of total latency.  The
        greedy is exact whenever the per-link total latency ``x l_e(x)`` is
        convex in ``x`` (true for all non-decreasing latencies with
        non-decreasing increments, in particular linear and monomial ones).
        """
        marginals: list[tuple[float, int, int]] = []
        loads = np.zeros(self.num_resources, dtype=np.int64)

        def marginal(resource: int, current_load: int) -> float:
            lat = self.latencies[resource]
            before = current_load * float(lat.value(np.asarray(float(current_load))))
            after = (current_load + 1) * float(lat.value(np.asarray(float(current_load + 1))))
            return after - before

        for resource in range(self.num_resources):
            heapq.heappush(marginals, (marginal(resource, 0), resource, 0))
        for _ in range(self.num_players):
            cost, resource, load = heapq.heappop(marginals)
            loads[resource] = load + 1
            heapq.heappush(marginals, (marginal(resource, load + 1), resource, load + 1))
        return loads

    def optimum_social_cost(self) -> float:
        """Minimum average latency over integral assignments (via the greedy)."""
        loads = self.optimum_total_latency_assignment()
        return float(self.social_cost(loads))

    # ------------------------------------------------------------------
    def drop_resources(self, resources: Sequence[int]) -> "SingletonCongestionGame":
        """Return the game ``Gamma \\ M`` with the given links removed
        (used by the recursive Price-of-Imitation argument, Lemma 13)."""
        drop = set(int(r) for r in resources)
        keep = [idx for idx in range(self.num_resources) if idx not in drop]
        if not keep:
            raise GameDefinitionError("cannot drop all resources")
        return SingletonCongestionGame(
            self.num_players,
            [self.latencies[idx] for idx in keep],
            resource_names=[self.resource_names[idx] for idx in keep],
            name=f"{self.name}-minus-{sorted(drop)}",
            validate=False,
        )


def make_linear_singleton(
    num_players: int,
    coefficients: Sequence[float],
    *,
    name: str = "linear-singleton",
) -> SingletonCongestionGame:
    """Build a linear singleton game ``l_e(x) = a_e x`` from coefficients."""
    latencies = [LinearLatency(float(a), 0.0) for a in coefficients]
    return SingletonCongestionGame(num_players, latencies, name=name)


def make_scaled_singleton(
    num_players: int,
    base_latencies: Sequence[LatencyFunction],
    *,
    name: str = "scaled-singleton",
) -> SingletonCongestionGame:
    """Build the Theorem 9 family member with ``n`` players: every base
    latency ``l_e`` on ``[0, 1]`` is replaced by ``l_e^n(x) = l_e(x / n)``."""
    latencies = [scale_to_population(lat, num_players) for lat in base_latencies]
    return SingletonCongestionGame(num_players, latencies, name=f"{name}-n{num_players}",
                                   validate=False)
