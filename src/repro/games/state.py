"""Game states.

A *state* of a symmetric congestion game with strategy set ``P`` is the
vector ``x = (x_P)_{P in P}`` of player counts per strategy (the paper's own
notation, Section 2.1).  Because the dynamics studied in the paper treat
players as exchangeable, the count vector is a sufficient description; this
module provides a light-weight :class:`GameState` wrapper plus helpers for
constructing and manipulating such vectors.

For ensemble simulation (:mod:`repro.core.ensemble`) the same idea extends to
*batches*: an :class:`(R, S)` matrix whose ``r``-th row is the count vector of
replica ``r``.  :class:`BatchGameState` wraps such a matrix with per-replica
invariants, and :func:`as_batch_counts` coerces states, stacks of states and
raw matrices into that layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from ..errors import StateError
from ..rng import RngLike, ensure_rng

StateLike = Union["GameState", np.ndarray, Sequence[int]]
BatchStateLike = Union["BatchGameState", "GameState", np.ndarray, Sequence[StateLike]]

__all__ = [
    "GameState",
    "StateLike",
    "BatchGameState",
    "BatchStateLike",
    "as_counts",
    "as_batch_counts",
    "counts_from_assignment",
    "assignment_from_counts",
    "uniform_random_counts",
    "all_on_one_counts",
    "balanced_counts",
    "batch_uniform_random_counts",
    "batch_from_states",
    "batch_broadcast",
]


@dataclass(frozen=True)
class GameState:
    """Immutable strategy-count vector.

    Attributes
    ----------
    counts:
        1-D integer array; ``counts[P]`` is the number of players currently
        using strategy ``P``.
    """

    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.ndim != 1:
            raise StateError("state counts must be a 1-D vector")
        if np.any(counts < 0):
            raise StateError("state counts must be non-negative")
        object.__setattr__(self, "counts", counts)
        self.counts.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def num_players(self) -> int:
        """Total number of players in the state."""
        return int(self.counts.sum())

    @property
    def num_strategies(self) -> int:
        """Number of strategies (length of the count vector)."""
        return int(self.counts.size)

    @property
    def support(self) -> np.ndarray:
        """Indices of strategies used by at least one player."""
        return np.nonzero(self.counts > 0)[0]

    @property
    def support_size(self) -> int:
        """Number of strategies in use."""
        return int(np.count_nonzero(self.counts))

    # ------------------------------------------------------------------
    def with_move(self, origin: int, destination: int, count: int = 1) -> "GameState":
        """Return the state obtained by moving ``count`` players from
        ``origin`` to ``destination``."""
        if count < 0:
            raise StateError("cannot move a negative number of players")
        if self.counts[origin] < count:
            raise StateError(
                f"cannot move {count} players from strategy {origin}: "
                f"only {int(self.counts[origin])} present"
            )
        new_counts = self.counts.copy()
        new_counts[origin] -= count
        new_counts[destination] += count
        return GameState(new_counts)

    def with_delta(self, delta: np.ndarray) -> "GameState":
        """Return the state ``x + delta`` (delta must conserve players)."""
        delta = np.asarray(delta, dtype=np.int64)
        if delta.shape != self.counts.shape:
            raise StateError("delta has the wrong shape")
        if int(delta.sum()) != 0:
            raise StateError("delta must conserve the number of players")
        new_counts = self.counts + delta
        if np.any(new_counts < 0):
            raise StateError("delta would make a strategy count negative")
        return GameState(new_counts)

    def to_array(self) -> np.ndarray:
        """Return a writable copy of the count vector."""
        return self.counts.copy()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GameState):
            return bool(np.array_equal(self.counts, other.counts))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.counts.tobytes())

    def __repr__(self) -> str:
        return f"GameState({self.counts.tolist()})"


@dataclass(frozen=True)
class BatchGameState:
    """Immutable ``(R, S)`` matrix of strategy counts, one row per replica.

    Every row satisfies the same invariants as a :class:`GameState` count
    vector (non-negative integers); whether all rows assign the same number
    of players is checked against a concrete game by
    :meth:`~repro.games.base.CongestionGame.validate_batch_state`.
    """

    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.ndim != 2:
            raise StateError("batch state counts must be a 2-D (replicas, strategies) matrix")
        if counts.shape[0] < 1:
            raise StateError("a batch state needs at least one replica")
        if np.any(counts < 0):
            raise StateError("state counts must be non-negative")
        object.__setattr__(self, "counts", counts)
        self.counts.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        """Number of replicas ``R`` (rows)."""
        return int(self.counts.shape[0])

    @property
    def num_strategies(self) -> int:
        """Number of strategies ``S`` (columns)."""
        return int(self.counts.shape[1])

    @property
    def players_per_replica(self) -> np.ndarray:
        """Total number of players in each replica (shape ``(R,)``)."""
        return self.counts.sum(axis=1)

    @property
    def support_sizes(self) -> np.ndarray:
        """Number of occupied strategies per replica (shape ``(R,)``)."""
        return np.count_nonzero(self.counts, axis=1)

    # ------------------------------------------------------------------
    def replica(self, index: int) -> GameState:
        """The single-replica :class:`GameState` at ``index``."""
        return GameState(self.counts[index].copy())

    def to_array(self) -> np.ndarray:
        """Return a writable copy of the count matrix."""
        return self.counts.copy()

    def __len__(self) -> int:
        return self.num_replicas

    def __iter__(self):
        for index in range(self.num_replicas):
            yield self.replica(index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BatchGameState):
            return bool(np.array_equal(self.counts, other.counts))
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.counts.shape, self.counts.tobytes()))

    def __repr__(self) -> str:
        return (f"BatchGameState(replicas={self.num_replicas}, "
                f"strategies={self.num_strategies})")


# ----------------------------------------------------------------------
# Coercion and constructors
# ----------------------------------------------------------------------

def as_counts(state: StateLike) -> np.ndarray:
    """Coerce a state-like object into a read-only count vector."""
    if isinstance(state, GameState):
        return state.counts
    counts = np.asarray(state, dtype=np.int64)
    if counts.ndim != 1:
        raise StateError("state counts must be a 1-D vector")
    if np.any(counts < 0):
        raise StateError("state counts must be non-negative")
    return counts


def counts_from_assignment(assignment: Iterable[int], num_strategies: int) -> np.ndarray:
    """Build a count vector from an explicit player-to-strategy assignment.

    ``assignment[i]`` is the strategy index of player ``i``.
    """
    assignment_array = np.asarray(list(assignment), dtype=np.int64)
    if assignment_array.size and (
        assignment_array.min() < 0 or assignment_array.max() >= num_strategies
    ):
        raise StateError("assignment references an unknown strategy index")
    return np.bincount(assignment_array, minlength=num_strategies).astype(np.int64)


def assignment_from_counts(counts: StateLike) -> np.ndarray:
    """Return one canonical player-to-strategy assignment realising ``counts``.

    Players are numbered in strategy order; because players are exchangeable
    any assignment with the same counts induces the same dynamics.
    """
    counts = as_counts(counts)
    return np.repeat(np.arange(counts.size), counts)


def uniform_random_counts(num_players: int, num_strategies: int,
                          rng: RngLike = None) -> np.ndarray:
    """Each player picks a strategy independently and uniformly at random.

    This is the *random initialisation* assumed by Theorem 9 and by the
    Price-of-Imitation analysis (Section 5.1).
    """
    if num_players < 0:
        raise StateError("number of players must be non-negative")
    if num_strategies <= 0:
        raise StateError("need at least one strategy")
    gen = ensure_rng(rng)
    probabilities = np.full(num_strategies, 1.0 / num_strategies)
    return gen.multinomial(num_players, probabilities).astype(np.int64)


def all_on_one_counts(num_players: int, num_strategies: int, strategy: int = 0) -> np.ndarray:
    """All players start on a single strategy (the worst case for imitation,
    which can never leave such a state)."""
    if not 0 <= strategy < num_strategies:
        raise StateError("strategy index out of range")
    counts = np.zeros(num_strategies, dtype=np.int64)
    counts[strategy] = num_players
    return counts


def balanced_counts(num_players: int, num_strategies: int) -> np.ndarray:
    """Spread players as evenly as possible over the strategies
    (deterministic round-robin remainder handling)."""
    if num_strategies <= 0:
        raise StateError("need at least one strategy")
    base, remainder = divmod(num_players, num_strategies)
    counts = np.full(num_strategies, base, dtype=np.int64)
    counts[:remainder] += 1
    return counts


# ----------------------------------------------------------------------
# Batch coercion and constructors
# ----------------------------------------------------------------------

def as_batch_counts(batch: BatchStateLike) -> np.ndarray:
    """Coerce a batch-state-like object into a read-only ``(R, S)`` matrix.

    Accepts a :class:`BatchGameState`, a single :class:`GameState` or 1-D
    vector (promoted to one replica), a 2-D array, or a sequence of
    state-like rows (stacked; all rows must have the same length).
    """
    if isinstance(batch, BatchGameState):
        return batch.counts
    if isinstance(batch, GameState):
        return batch.counts[np.newaxis, :]
    if isinstance(batch, np.ndarray):
        if batch.ndim == 1:
            return as_counts(batch)[np.newaxis, :]
        counts = np.asarray(batch, dtype=np.int64)
    else:
        rows = [as_counts(row) for row in batch]
        if not rows:
            raise StateError("a batch state needs at least one replica")
        if len({row.size for row in rows}) != 1:
            raise StateError("all replicas of a batch must have the same number of strategies")
        counts = np.stack(rows).astype(np.int64)
    if counts.ndim != 2:
        raise StateError("batch state counts must be a 2-D (replicas, strategies) matrix")
    if np.any(counts < 0):
        raise StateError("state counts must be non-negative")
    return counts


def batch_from_states(states: Iterable[StateLike]) -> BatchGameState:
    """Stack single states into a :class:`BatchGameState` (one row each)."""
    return BatchGameState(as_batch_counts(list(states)))


def batch_broadcast(state: StateLike, replicas: int) -> BatchGameState:
    """Repeat one state ``replicas`` times (identical rows)."""
    if replicas <= 0:
        raise StateError("need at least one replica")
    counts = as_counts(state)
    return BatchGameState(np.tile(counts, (replicas, 1)))


def batch_uniform_random_counts(
    num_players: int,
    num_strategies: int,
    replicas: int,
    rng: RngLike = None,
) -> np.ndarray:
    """``replicas`` independent uniform-random initialisations, shape (R, S).

    Row ``r`` is distributed exactly like :func:`uniform_random_counts`; all
    rows are drawn from the *same* generator in row order, so a batch drawn
    from seed ``s`` matches a loop drawing ``replicas`` single states from
    seed ``s`` one after the other.
    """
    if num_players < 0:
        raise StateError("number of players must be non-negative")
    if num_strategies <= 0:
        raise StateError("need at least one strategy")
    if replicas <= 0:
        raise StateError("need at least one replica")
    gen = ensure_rng(rng)
    probabilities = np.full(num_strategies, 1.0 / num_strategies)
    return gen.multinomial(num_players, probabilities, size=replicas).astype(np.int64)
