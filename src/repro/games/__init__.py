"""Congestion-game substrate.

This subpackage implements the game model of the paper (Section 2): symmetric
(network) congestion games, singleton games, threshold games, latency
functions together with their elasticity/slope bounds, state handling, Nash
equilibria and social optima, and a collection of instance generators used by
the experiments.
"""

from .asymmetric import AsymmetricCongestionGame
from .base import CongestionGame, Strategy
from .latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyFunction,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PiecewiseLinearLatency,
    PolynomialLatency,
    ScaledLatency,
    ShiftedLatency,
    TableLatency,
    affine,
    constant,
    linear,
    monomial,
    polynomial,
    scale_to_population,
)
from .nash import (
    compute_nash_equilibrium,
    is_epsilon_nash,
    is_nash,
    run_best_response,
)
from .network import (
    NetworkCongestionGame,
    braess_network_game,
    grid_network_game,
    layered_random_network_game,
    parallel_links_network_game,
    series_parallel_network_game,
)
from .optimum import OptimumResult, compute_social_optimum
from .singleton import (
    SingletonCongestionGame,
    make_linear_singleton,
    make_scaled_singleton,
)
from .social_cost import SocialCostMeasure, evaluate, evaluate_batch
from .state import (
    BatchGameState,
    GameState,
    all_on_one_counts,
    as_batch_counts,
    as_counts,
    assignment_from_counts,
    balanced_counts,
    batch_broadcast,
    batch_from_states,
    batch_uniform_random_counts,
    counts_from_assignment,
    uniform_random_counts,
)
from .symmetric import SymmetricCongestionGame, make_symmetric_game
from .threshold import (
    QuadraticThresholdGame,
    geometric_weight_matrix,
    lift_for_imitation,
    random_weight_matrix,
)

__all__ = [
    "AsymmetricCongestionGame",
    "CongestionGame",
    "Strategy",
    "ConstantLatency",
    "ExponentialLatency",
    "LatencyFunction",
    "LinearLatency",
    "MM1Latency",
    "MonomialLatency",
    "PiecewiseLinearLatency",
    "PolynomialLatency",
    "ScaledLatency",
    "ShiftedLatency",
    "TableLatency",
    "affine",
    "constant",
    "linear",
    "monomial",
    "polynomial",
    "scale_to_population",
    "compute_nash_equilibrium",
    "is_epsilon_nash",
    "is_nash",
    "run_best_response",
    "NetworkCongestionGame",
    "braess_network_game",
    "grid_network_game",
    "layered_random_network_game",
    "parallel_links_network_game",
    "series_parallel_network_game",
    "OptimumResult",
    "compute_social_optimum",
    "SingletonCongestionGame",
    "make_linear_singleton",
    "make_scaled_singleton",
    "SocialCostMeasure",
    "evaluate",
    "evaluate_batch",
    "BatchGameState",
    "GameState",
    "all_on_one_counts",
    "as_batch_counts",
    "as_counts",
    "assignment_from_counts",
    "balanced_counts",
    "batch_broadcast",
    "batch_from_states",
    "batch_uniform_random_counts",
    "counts_from_assignment",
    "uniform_random_counts",
    "SymmetricCongestionGame",
    "make_symmetric_game",
    "QuadraticThresholdGame",
    "geometric_weight_matrix",
    "lift_for_imitation",
    "random_weight_matrix",
]
