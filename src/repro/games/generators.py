"""Random and structured instance generators.

Experiments need families of instances parameterised by the number of
players, the latency degree (elasticity), and the topology.  This module
collects the generators used throughout the experiment suite so that every
experiment builds its instances through one seeded, documented code path.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import GameDefinitionError
from ..rng import RngLike, ensure_rng
from .base import CongestionGame
from .latency import (
    ConstantLatency,
    LatencyFunction,
    LinearLatency,
    MonomialLatency,
    PolynomialLatency,
)
from .network import NetworkCongestionGame, layered_random_network_game
from .singleton import SingletonCongestionGame

__all__ = [
    "random_linear_singleton",
    "random_polynomial_singleton",
    "random_monomial_singleton",
    "two_link_overshoot_game",
    "two_link_overshoot_start",
    "identical_links_game",
    "dominant_strategy_game",
    "random_symmetric_game",
    "random_network_game",
]


def random_linear_singleton(
    num_players: int,
    num_links: int,
    *,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    name: str = "random-linear-singleton",
) -> SingletonCongestionGame:
    """Singleton game with linear latencies ``a_e x``, ``a_e`` uniform."""
    gen = ensure_rng(rng)
    coefficients = gen.uniform(*coefficient_range, size=num_links)
    latencies = [LinearLatency(float(a), 0.0) for a in coefficients]
    return SingletonCongestionGame(num_players, latencies, name=name)


def random_monomial_singleton(
    num_players: int,
    num_links: int,
    degree: float,
    *,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    name: str = "random-monomial-singleton",
) -> SingletonCongestionGame:
    """Singleton game with monomial latencies ``a_e x**degree``.

    The elasticity bound of the game is exactly ``degree``; experiment E4
    sweeps it.
    """
    gen = ensure_rng(rng)
    coefficients = gen.uniform(*coefficient_range, size=num_links)
    latencies = [MonomialLatency(float(a), degree) for a in coefficients]
    return SingletonCongestionGame(num_players, latencies, name=f"{name}-d{degree:g}")


def random_polynomial_singleton(
    num_players: int,
    num_links: int,
    max_degree: int,
    *,
    coefficient_range: tuple[float, float] = (0.0, 1.0),
    rng: RngLike = None,
    name: str = "random-polynomial-singleton",
) -> SingletonCongestionGame:
    """Singleton game with random positive-coefficient polynomial latencies."""
    if max_degree < 1:
        raise GameDefinitionError("max_degree must be at least 1")
    gen = ensure_rng(rng)
    latencies: list[LatencyFunction] = []
    for _ in range(num_links):
        coeffs = gen.uniform(*coefficient_range, size=max_degree + 1)
        coeffs[0] = 0.0  # keep l(0) = 0
        if not np.any(coeffs > 0):
            coeffs[-1] = 1.0
        latencies.append(PolynomialLatency(coeffs))
    return SingletonCongestionGame(num_players, latencies, name=name)


def two_link_overshoot_game(
    num_players: int,
    degree: float,
    *,
    constant: Optional[float] = None,
    name: str = "two-link-overshoot",
) -> SingletonCongestionGame:
    """The overshooting example from the paper's Section 2.3.

    Link 1 has the constant latency ``c`` and link 2 has latency ``x**d``.
    Starting with (almost) all players on link 1 there is a large latency gap
    ``b = c - x_2**d``; an undamped proportional-imitation rule overshoots the
    balanced point by a factor ``Theta(d)`` while the 1/d-damped IMITATION
    PROTOCOL does not (experiment E5 measures both).

    By default ``c`` is chosen as the latency of link 2 when half the players
    use it, so the balanced state puts roughly half the population on each
    link.
    """
    if constant is None:
        constant = float((num_players / 2.0) ** degree)
    latencies = [ConstantLatency(constant), MonomialLatency(1.0, degree)]
    return SingletonCongestionGame(num_players, latencies,
                                   resource_names=["constant-link", "power-link"],
                                   name=f"{name}-d{degree:g}")


def two_link_overshoot_start(game, degree: float, *,
                             latency_fraction: float = 0.7):
    """The prepared start state of the overshooting measurement (E5).

    Loads the power link of a :func:`two_link_overshoot_game` so that its
    latency is ``latency_fraction`` of the constant link's latency ``c``
    (the anticipated gain is therefore ``(1 - latency_fraction) * c``).
    """
    from .state import GameState  # local import, avoids cycle at module load

    constant_latency = float(game.latencies[0].value(np.asarray(0.0)))
    target_latency = latency_fraction * constant_latency
    # l_2(x) = x**degree  =>  x = target**(1/degree)
    power_load = int(round(target_latency ** (1.0 / degree)))
    power_load = min(max(power_load, 1), game.num_players - 1)
    counts = np.array([game.num_players - power_load, power_load], dtype=np.int64)
    return GameState(counts)


def identical_links_game(
    num_players: int,
    num_links: int,
    *,
    coefficient: float = 1.0,
    name: str = "identical-links",
) -> SingletonCongestionGame:
    """``num_links`` identical linear links; used by the Omega(n) lower bound
    at the end of Section 4 (n = 2m, x_1 = 3, x_2 = 1, x_i = 2)."""
    latencies = [LinearLatency(coefficient, 0.0) for _ in range(num_links)]
    return SingletonCongestionGame(num_players, latencies, name=name)


def dominant_strategy_game(
    num_players: int,
    *,
    cheap_latency: float = 1.0,
    expensive_factor: float = 10.0,
    name: str = "dominant-strategy",
) -> SingletonCongestionGame:
    """Two links where one is better at every conceivable load.

    The cheap link has constant latency ``cheap_latency``; the expensive link
    has constant latency ``expensive_factor * cheap_latency``.  The unique
    Nash equilibrium puts everybody on the cheap link, but imitation cannot
    discover it when all players start on the expensive link — the instance
    exercises the non-innovativeness caveat of the protocol.
    """
    latencies = [ConstantLatency(cheap_latency),
                 ConstantLatency(cheap_latency * expensive_factor)]
    return SingletonCongestionGame(num_players, latencies,
                                   resource_names=["cheap", "expensive"], name=name)


def random_symmetric_game(
    num_players: int,
    num_resources: int,
    num_strategies: int,
    *,
    strategy_size: int = 2,
    degree: int = 1,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    name: str = "random-symmetric",
) -> CongestionGame:
    """Random symmetric game with ``num_strategies`` random resource subsets.

    Every strategy is a uniformly random subset of ``strategy_size``
    resources (duplicates across strategies are allowed but identical
    strategies are rejected and re-drawn, so the strategy set has the
    requested cardinality whenever that is combinatorially possible).
    """
    if strategy_size > num_resources:
        raise GameDefinitionError("strategy_size cannot exceed num_resources")
    gen = ensure_rng(rng)
    latencies: list[LatencyFunction] = []
    for _ in range(num_resources):
        a = float(gen.uniform(*coefficient_range))
        latencies.append(LinearLatency(a, 0.0) if degree == 1 else MonomialLatency(a, float(degree)))

    strategies: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    attempts = 0
    while len(strategies) < num_strategies:
        candidate = tuple(sorted(gen.choice(num_resources, size=strategy_size, replace=False).tolist()))
        attempts += 1
        if candidate in seen:
            if attempts > 100 * num_strategies:
                raise GameDefinitionError(
                    "could not draw enough distinct strategies; "
                    "reduce num_strategies or increase num_resources"
                )
            continue
        seen.add(candidate)
        strategies.append(candidate)
    return CongestionGame(num_players, latencies, strategies, name=name)


def random_network_game(
    num_players: int,
    *,
    layers: int = 2,
    width: int = 3,
    degree: int = 1,
    rng: RngLike = None,
    name: str = "random-network",
) -> NetworkCongestionGame:
    """Thin wrapper around :func:`layered_random_network_game` with the
    defaults used by the experiment suite."""
    return layered_random_network_game(
        num_players,
        layers=layers,
        width=width,
        degree=degree,
        rng=rng,
        name=name,
    )
