"""Nash equilibria and best-response machinery for symmetric games.

Rosenthal's theorem states that every congestion game possesses a pure Nash
equilibrium and that the set of Nash equilibria of a symmetric game is the
set of local minima of the potential ``Phi``.  This module provides

* equilibrium predicates (:func:`is_nash`, :func:`is_epsilon_nash`),
* sequential best-response dynamics (:func:`best_response_step`,
  :func:`run_best_response`) used both as a baseline and to compute exact
  equilibria,
* exhaustive state enumeration for small games
  (:func:`enumerate_states`), and
* :func:`best_response_potential_minimum`, the ``Phi*`` estimate needed by
  the Theorem 7 bound ``O(d/(eps^2 delta) log(Phi(x0)/Phi*))``.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

import numpy as np

from ..errors import ConvergenceError
from ..rng import RngLike, ensure_rng
from .base import CongestionGame
from .state import GameState, StateLike, as_counts

__all__ = [
    "is_nash",
    "is_epsilon_nash",
    "best_response_step",
    "run_best_response",
    "enumerate_states",
    "count_states",
    "exhaustive_minimum_potential",
    "best_response_potential_minimum",
    "compute_nash_equilibrium",
]


def _improvement_matrix(game: CongestionGame, counts: np.ndarray) -> np.ndarray:
    """Gain matrix ``G[P, Q] = l_P(x) - l_Q(x + 1_Q - 1_P)`` for occupied P."""
    latencies = game.strategy_latencies(counts)
    post = game.post_migration_latency_matrix(counts)
    return latencies[:, np.newaxis] - post


def is_nash(game: CongestionGame, state: StateLike, *, tolerance: float = 1e-9) -> bool:
    """True if no player can strictly decrease its latency by more than
    ``tolerance`` through a unilateral strategy change."""
    counts = game.validate_state(state)
    gains = _improvement_matrix(game, counts)
    occupied = counts > 0
    if not np.any(occupied):
        return True
    return float(np.max(gains[occupied])) <= tolerance


def is_epsilon_nash(game: CongestionGame, state: StateLike, epsilon: float) -> bool:
    """True if no player can improve its latency by more than ``epsilon``
    (additive) with a unilateral deviation."""
    return is_nash(game, state, tolerance=epsilon)


def best_response_step(
    game: CongestionGame,
    state: StateLike,
    *,
    tolerance: float = 1e-9,
    pivot: str = "max-gain",
    rng: RngLike = None,
) -> Optional[GameState]:
    """Perform one sequential best-response move.

    Returns the successor state, or ``None`` if the state is a Nash
    equilibrium (up to ``tolerance``).

    Parameters
    ----------
    pivot:
        ``"max-gain"`` moves the player with the largest available gain (a
        deterministic, fast-converging rule); ``"random"`` picks a uniformly
        random improving (origin, destination) pair, mimicking a random
        better-response scheduler.
    """
    counts = game.validate_state(state)
    gains = _improvement_matrix(game, counts)
    occupied = counts > 0
    gains = np.where(occupied[:, np.newaxis], gains, -np.inf)
    if float(np.max(gains)) <= tolerance:
        return None

    if pivot == "max-gain":
        origin, destination = np.unravel_index(int(np.argmax(gains)), gains.shape)
    elif pivot == "random":
        gen = ensure_rng(rng)
        improving = np.argwhere(gains > tolerance)
        origin, destination = improving[gen.integers(0, improving.shape[0])]
    else:
        raise ValueError(f"unknown pivot rule {pivot!r}")

    # For the chosen origin, a *best* response moves to the destination with
    # the smallest post-migration latency (ties broken by index).
    if pivot == "max-gain":
        post_row = game.post_migration_latency_matrix(counts)[origin]
        destination = int(np.argmin(post_row))
    new_counts = counts.copy()
    new_counts[origin] -= 1
    new_counts[destination] += 1
    return GameState(new_counts)


def run_best_response(
    game: CongestionGame,
    state: StateLike,
    *,
    max_steps: int = 1_000_000,
    tolerance: float = 1e-9,
    pivot: str = "max-gain",
    rng: RngLike = None,
    strict: bool = False,
) -> tuple[GameState, int]:
    """Run sequential best-response dynamics until a Nash equilibrium.

    Returns ``(final_state, steps_taken)``.  If the step budget is exhausted
    the current state is returned (or :class:`ConvergenceError` is raised
    when ``strict`` is True).
    """
    current = GameState(game.validate_state(state))
    gen = ensure_rng(rng)
    for step in range(max_steps):
        successor = best_response_step(game, current, tolerance=tolerance,
                                       pivot=pivot, rng=gen)
        if successor is None:
            return current, step
        current = successor
    if strict:
        raise ConvergenceError(
            f"best response did not converge within {max_steps} steps"
        )
    return current, max_steps


# ----------------------------------------------------------------------
# Exhaustive enumeration (small games)
# ----------------------------------------------------------------------

def count_states(num_players: int, num_strategies: int) -> int:
    """Number of states ``C(n + S - 1, S - 1)`` (compositions of n into S parts)."""
    return math.comb(num_players + num_strategies - 1, num_strategies - 1)


def enumerate_states(num_players: int, num_strategies: int) -> Iterator[np.ndarray]:
    """Yield every count vector with ``num_strategies`` entries summing to
    ``num_players`` (weak compositions, lexicographic order)."""
    counts = np.zeros(num_strategies, dtype=np.int64)

    def recurse(position: int, remaining: int) -> Iterator[np.ndarray]:
        if position == num_strategies - 1:
            counts[position] = remaining
            yield counts.copy()
            return
        for value in range(remaining + 1):
            counts[position] = value
            yield from recurse(position + 1, remaining - value)

    yield from recurse(0, num_players)


def exhaustive_minimum_potential(game: CongestionGame) -> tuple[np.ndarray, float]:
    """Exact ``argmin/min`` of the potential by enumerating all states."""
    best_counts: Optional[np.ndarray] = None
    best_value = np.inf
    for counts in enumerate_states(game.num_players, game.num_strategies):
        value = game.potential(counts)
        if value < best_value:
            best_value = value
            best_counts = counts
    assert best_counts is not None
    return best_counts, float(best_value)


def best_response_potential_minimum(
    game: CongestionGame,
    *,
    exhaustive_limit: int = 200_000,
    restarts: int = 3,
    rng: RngLike = 0,
) -> float:
    """Estimate ``Phi* = min_x Phi(x)``.

    Exact (by enumeration) when the state space has at most
    ``exhaustive_limit`` states; otherwise the minimum over best-response
    descents from a balanced state and ``restarts`` random states.  Because
    every Nash equilibrium of a symmetric congestion game is a global
    potential minimiser only in special cases, the descent value is an upper
    bound on ``Phi*`` — sufficient for the logarithmic convergence-time
    bounds this quantity feeds into.
    """
    if count_states(game.num_players, game.num_strategies) <= exhaustive_limit:
        _, value = exhaustive_minimum_potential(game)
        return value
    gen = ensure_rng(rng)
    candidates = [game.balanced_state()]
    candidates.extend(game.uniform_random_state(gen) for _ in range(restarts))
    best = np.inf
    for start in candidates:
        final, _ = run_best_response(game, start, max_steps=50_000)
        best = min(best, game.potential(final))
    return float(best)


def compute_nash_equilibrium(
    game: CongestionGame,
    *,
    start: Optional[StateLike] = None,
    rng: RngLike = 0,
    max_steps: int = 1_000_000,
) -> GameState:
    """Compute a pure Nash equilibrium by best-response descent."""
    if start is None:
        start = game.balanced_state()
    final, _ = run_best_response(game, start, max_steps=max_steps, rng=rng, strict=False)
    return final
