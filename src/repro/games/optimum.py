"""Social optima of congestion games.

The Price-of-Imitation analysis (paper, Section 5.1) compares the expected
social cost of the state reached by the IMITATION PROTOCOL with the optimum
social cost (average latency).  This module computes (or bounds) that optimum
for the game classes in the library:

* exhaustive search for small state spaces (exact),
* the greedy marginal-cost assignment for singleton games with convex
  per-link total latency (exact; delegated to
  :class:`~repro.games.singleton.SingletonCongestionGame`),
* local-search descent on the total latency otherwise (an upper bound on the
  optimum, clearly flagged in the result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rng import RngLike, ensure_rng
from .base import CongestionGame
from .nash import count_states, enumerate_states
from .singleton import SingletonCongestionGame
from .state import GameState, StateLike

__all__ = ["OptimumResult", "compute_social_optimum", "local_search_total_latency"]


@dataclass(frozen=True)
class OptimumResult:
    """Result of a social-optimum computation.

    Attributes
    ----------
    state:
        The best assignment found.
    social_cost:
        Its average latency.
    total_latency:
        Its total latency (``n`` times the average).
    exact:
        True when the value is provably the optimum (exhaustive search or
        exact greedy), False when it is the value of a local minimum only.
    method:
        Human-readable description of how the optimum was obtained.
    """

    state: GameState
    social_cost: float
    total_latency: float
    exact: bool
    method: str


def compute_social_optimum(
    game: CongestionGame,
    *,
    exhaustive_limit: int = 200_000,
    rng: RngLike = 0,
) -> OptimumResult:
    """Compute (or tightly bound) the minimum average latency of ``game``."""
    if isinstance(game, SingletonCongestionGame):
        loads = game.optimum_total_latency_assignment()
        state = GameState(loads)
        return OptimumResult(
            state=state,
            social_cost=float(game.social_cost(state)),
            total_latency=float(game.total_latency(state)),
            exact=True,
            method="greedy-marginal-cost",
        )

    if count_states(game.num_players, game.num_strategies) <= exhaustive_limit:
        best_counts: Optional[np.ndarray] = None
        best_total = np.inf
        for counts in enumerate_states(game.num_players, game.num_strategies):
            total = game.total_latency(counts)
            if total < best_total:
                best_total = total
                best_counts = counts
        assert best_counts is not None
        state = GameState(best_counts)
        return OptimumResult(
            state=state,
            social_cost=float(game.social_cost(state)),
            total_latency=float(best_total),
            exact=True,
            method="exhaustive",
        )

    state = local_search_total_latency(game, game.balanced_state(), rng=rng)
    return OptimumResult(
        state=state,
        social_cost=float(game.social_cost(state)),
        total_latency=float(game.total_latency(state)),
        exact=False,
        method="local-search",
    )


def local_search_total_latency(
    game: CongestionGame,
    start: StateLike,
    *,
    max_steps: int = 100_000,
    rng: RngLike = 0,
) -> GameState:
    """Descend on the total latency by single-player moves.

    In every step the single-player relocation (origin strategy, destination
    strategy) with the largest decrease of the total latency is applied; the
    procedure stops at a local minimum or when the step budget is exhausted.
    """
    counts = game.validate_state(start).copy()
    ensure_rng(rng)  # reserved for future randomised tie-breaking
    current_total = game.total_latency(counts)
    for _ in range(max_steps):
        best_gain = 0.0
        best_move: Optional[tuple[int, int]] = None
        occupied = np.nonzero(counts > 0)[0]
        for origin in occupied:
            counts[origin] -= 1
            for destination in range(game.num_strategies):
                if destination == origin:
                    continue
                counts[destination] += 1
                total = game.total_latency(counts)
                gain = current_total - total
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_move = (int(origin), int(destination))
                counts[destination] -= 1
            counts[origin] += 1
        if best_move is None:
            break
        origin, destination = best_move
        counts[origin] -= 1
        counts[destination] += 1
        current_total -= best_gain
    return GameState(counts)
