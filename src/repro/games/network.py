"""Symmetric network congestion games.

The paper defines its model in terms of a directed network ``G = (V, E)``
with a common source ``s`` and sink ``t``: the strategy set of every player
is the set of simple ``s``-``t`` paths and the latency of a path is the sum
of the latencies of its edges.  This module builds such games on top of
:mod:`networkx`:

* :class:`NetworkCongestionGame` turns a graph into a game through one of
  three *strategy-generation modes* (see below) and exposes it through the
  generic :class:`~repro.games.base.CongestionGame` interface, keeping the
  edge/path structure around for reporting;
* a collection of generators for the standard topologies used in the
  experiments (parallel links, the Braess network, layered random DAGs and
  series-parallel grids).

Strategy-generation modes
-------------------------
The number of simple ``s``-``t`` paths grows exponentially with the network
size, so exhaustive enumeration stops being a *construction* option long
before the dynamics stop being a *simulation* option.  The mode decides how
the bounded strategy set is built:

``"enumerate"`` (default)
    All simple paths via :func:`networkx.all_simple_paths`, hard-capped at
    ``max_paths`` (a :class:`GameDefinitionError` is raised when the cap is
    exceeded, so callers never silently truncate the strategy space).
``"k-shortest"``
    The ``num_paths`` shortest simple paths by *free-flow* latency (the
    path latency when used by a single player), via Yen's algorithm
    (:func:`networkx.shortest_simple_paths`).  Deterministic: depends only
    on the graph and its latencies.
``"dag-sample"``
    For acyclic graphs: a dynamic program counts the ``s``-``t`` paths
    through every node (exact big-integer counts), then ``num_paths``
    *distinct* paths are drawn uniformly at random from the full path set
    by walking the DAG with successor probabilities proportional to the
    downstream path counts.  The free-flow shortest path is always included
    as the first strategy.  Deterministic and seedable: the sample depends
    only on the graph and ``path_rng``, never on enumeration order — so a
    12-layer DAG with millions of paths is constructed in milliseconds.

Both bounded modes pair naturally with the sparse path-by-edge incidence
matrix (``sparse_incidence``, see :class:`~repro.games.base.CongestionGame`),
which keeps batched latency/potential/social-cost evaluation proportional to
the total path length instead of ``num_paths * num_edges``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, Mapping, Optional, Sequence

import networkx as nx
import numpy as np

from ..errors import GameDefinitionError
from ..rng import RngLike, ensure_rng
from .base import CongestionGame
from .latency import (
    ConstantLatency,
    LatencyFunction,
    LinearLatency,
    MonomialLatency,
    ZeroLatency,
)

Edge = tuple[Hashable, Hashable]

__all__ = [
    "NetworkCongestionGame",
    "STRATEGY_MODES",
    "braess_network_game",
    "parallel_links_network_game",
    "layered_random_network_game",
    "grid_network_game",
    "series_parallel_network_game",
]

#: The strategy-generation modes of :class:`NetworkCongestionGame`.
STRATEGY_MODES = ("enumerate", "k-shortest", "dag-sample")


class NetworkCongestionGame(CongestionGame):
    """A symmetric congestion game defined on a directed network.

    Parameters
    ----------
    graph:
        Directed graph.  Each edge must carry a ``"latency"`` attribute
        holding a :class:`~repro.games.latency.LatencyFunction` (or one is
        supplied through ``edge_latencies``).
    source, sink:
        Common origin and destination of all players.
    num_players:
        Number of players routing from ``source`` to ``sink``.
    edge_latencies:
        Optional mapping ``(u, v) -> LatencyFunction`` overriding/replacing
        edge attributes.
    max_paths:
        Safety cap on the number of enumerated simple paths
        (``strategy_mode="enumerate"`` only).  ``None`` means "enumerate
        everything"; a :class:`GameDefinitionError` is raised when the cap
        is exceeded so that callers never silently truncate the strategy
        space.
    strategy_mode:
        One of :data:`STRATEGY_MODES` — how the strategy set is built (see
        the module docstring).
    num_paths:
        Strategy-set bound for the ``"k-shortest"`` and ``"dag-sample"``
        modes (required there, ignored by ``"enumerate"``).
    path_rng:
        Seed/generator for the ``"dag-sample"`` mode.  The sampled strategy
        set is a pure function of the graph and this seed.
    sparse_incidence:
        Forwarded to :class:`~repro.games.base.CongestionGame`: ``True``
        forces the sparse path-by-edge incidence evaluation, ``False`` the
        dense one, ``None`` picks automatically by size/density.
    """

    def __init__(
        self,
        graph: nx.DiGraph,
        source: Hashable,
        sink: Hashable,
        num_players: int,
        *,
        edge_latencies: Optional[Mapping[Edge, LatencyFunction]] = None,
        max_paths: Optional[int] = 10_000,
        strategy_mode: str = "enumerate",
        num_paths: Optional[int] = None,
        path_rng: RngLike = None,
        sparse_incidence: Optional[bool] = None,
        name: str = "network-game",
        validate: bool = True,
    ):
        if source not in graph or sink not in graph:
            raise GameDefinitionError("source and sink must be nodes of the graph")
        if source == sink:
            raise GameDefinitionError("source and sink must differ")

        edges: list[Edge] = list(graph.edges())
        edge_index = {edge: idx for idx, edge in enumerate(edges)}

        latencies: list[LatencyFunction] = []
        for edge in edges:
            latency = None
            if edge_latencies is not None and edge in edge_latencies:
                latency = edge_latencies[edge]
            elif "latency" in graph.edges[edge]:
                latency = graph.edges[edge]["latency"]
            if latency is None:
                raise GameDefinitionError(f"edge {edge} has no latency function")
            if not isinstance(latency, LatencyFunction):
                raise GameDefinitionError(f"edge {edge} latency is not a LatencyFunction")
            latencies.append(latency)

        if strategy_mode not in STRATEGY_MODES:
            raise GameDefinitionError(
                f"unknown strategy_mode {strategy_mode!r}; known: {STRATEGY_MODES}"
            )
        if strategy_mode == "enumerate":
            paths = self._enumerate_paths(graph, source, sink, max_paths)
        else:
            if num_paths is None or num_paths < 1:
                raise GameDefinitionError(
                    f"strategy_mode={strategy_mode!r} needs num_paths >= 1"
                )
            freeflow = {edge: float(lat.value(np.asarray(1.0)))
                        for edge, lat in zip(edges, latencies)}
            if strategy_mode == "k-shortest":
                paths = self._k_shortest_paths(graph, source, sink,
                                               int(num_paths), freeflow)
            else:
                paths = self._sample_dag_paths(graph, source, sink,
                                               int(num_paths), freeflow, path_rng)
        if not paths:
            raise GameDefinitionError(f"no path from {source!r} to {sink!r}")

        strategies: list[list[int]] = []
        strategy_names: list[str] = []
        for path in paths:
            path_edges = list(zip(path[:-1], path[1:]))
            strategies.append([edge_index[e] for e in path_edges])
            strategy_names.append("->".join(str(v) for v in path))

        super().__init__(
            num_players,
            latencies,
            strategies,
            resource_names=[f"{u}->{v}" for u, v in edges],
            strategy_names=strategy_names,
            name=name,
            validate=validate,
            sparse_incidence=sparse_incidence,
        )
        self._graph = graph
        self._source = source
        self._sink = sink
        self._paths = paths
        self._edges = edges
        self._strategy_mode = strategy_mode

    # ------------------------------------------------------------------
    # Strategy generation
    # ------------------------------------------------------------------
    @staticmethod
    def _enumerate_paths(
        graph: nx.DiGraph,
        source: Hashable,
        sink: Hashable,
        max_paths: Optional[int],
    ) -> list[tuple[Hashable, ...]]:
        paths: list[tuple[Hashable, ...]] = []
        for path in nx.all_simple_paths(graph, source, sink):
            paths.append(tuple(path))
            if max_paths is not None and len(paths) > max_paths:
                raise GameDefinitionError(
                    f"more than {max_paths} simple paths between "
                    f"{source!r} and {sink!r}; raise max_paths to allow this, "
                    "or switch to a bounded strategy_mode "
                    "('k-shortest' or 'dag-sample') with num_paths"
                )
        return paths

    @staticmethod
    def _k_shortest_paths(
        graph: nx.DiGraph,
        source: Hashable,
        sink: Hashable,
        num_paths: int,
        freeflow: Mapping[Edge, float],
    ) -> list[tuple[Hashable, ...]]:
        """The ``num_paths`` shortest simple paths by free-flow latency (Yen)."""

        def weight(u: Hashable, v: Hashable, _data: Mapping) -> float:
            return freeflow[(u, v)]

        paths: list[tuple[Hashable, ...]] = []
        try:
            for path in nx.shortest_simple_paths(graph, source, sink, weight=weight):
                paths.append(tuple(path))
                if len(paths) >= num_paths:
                    break
        except nx.NetworkXNoPath:
            return []
        return paths

    @staticmethod
    def _sample_dag_paths(
        graph: nx.DiGraph,
        source: Hashable,
        sink: Hashable,
        num_paths: int,
        freeflow: Mapping[Edge, float],
        path_rng: RngLike,
    ) -> list[tuple[Hashable, ...]]:
        """``num_paths`` distinct paths sampled uniformly from a DAG.

        A reverse-topological dynamic program counts, with exact integer
        arithmetic, the number of ``source``-``sink`` paths through every
        node; walking the DAG with successor probabilities
        ``count(w) / count(v)`` then draws uniform random paths without ever
        materialising the path set.  The free-flow shortest path is placed
        first so the strategy set always contains the best empty-network
        route; when the DAG holds at most ``num_paths`` paths the exact set
        is enumerated instead.
        """
        if not nx.is_directed_acyclic_graph(graph):
            raise GameDefinitionError(
                "strategy_mode='dag-sample' needs an acyclic graph; "
                "use 'k-shortest' or 'enumerate' on cyclic networks"
            )
        counts: dict[Hashable, int] = {sink: 1}
        for node in reversed(list(nx.topological_sort(graph))):
            if node == sink:
                continue
            counts[node] = sum(counts.get(succ, 0)
                               for succ in graph.successors(node))
        total = counts.get(source, 0)
        if total == 0:
            return []
        if total <= num_paths:
            return [tuple(path)
                    for path in nx.all_simple_paths(graph, source, sink)]

        successor_table: dict[Hashable, tuple[list, np.ndarray]] = {}
        for node, count in counts.items():
            if node == sink or count == 0:
                continue
            successors = [succ for succ in graph.successors(node)
                          if counts.get(succ, 0) > 0]
            # Fraction -> float keeps huge integer counts finite.
            probabilities = np.array(
                [float(Fraction(counts[succ], count)) for succ in successors])
            successor_table[node] = (successors,
                                     probabilities / probabilities.sum())

        def weight(u: Hashable, v: Hashable, _data: Mapping) -> float:
            return freeflow[(u, v)]

        anchor = tuple(nx.shortest_path(graph, source, sink, weight=weight))
        paths = [anchor]
        seen = {anchor}
        gen = ensure_rng(path_rng)
        attempts, max_attempts = 0, 200 * num_paths
        while len(paths) < num_paths and attempts < max_attempts:
            attempts += 1
            node, walk = source, [source]
            while node != sink:
                successors, probabilities = successor_table[node]
                node = successors[int(gen.choice(len(successors),
                                                 p=probabilities))]
                walk.append(node)
            path = tuple(walk)
            if path not in seen:
                seen.add(path)
                paths.append(path)
        if len(paths) < num_paths:
            # Like the enumeration cap: never hand back a silently smaller
            # strategy set than the caller asked for.  (Unreachable for any
            # realistic instance — the draws are uniform over the path set,
            # so collecting num_paths < total distinct paths takes far fewer
            # than 200 * num_paths attempts in expectation.)
            raise GameDefinitionError(
                f"dag-sample found only {len(paths)} of {num_paths} distinct "
                f"paths after {max_attempts} draws; lower num_paths"
            )
        return paths

    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph."""
        return self._graph

    @property
    def source(self) -> Hashable:
        """Common source node."""
        return self._source

    @property
    def sink(self) -> Hashable:
        """Common sink node."""
        return self._sink

    @property
    def paths(self) -> list[tuple[Hashable, ...]]:
        """The selected ``s``-``t`` paths (in strategy order)."""
        return list(self._paths)

    @property
    def edges(self) -> list[Edge]:
        """The edges (in resource order)."""
        return list(self._edges)

    @property
    def strategy_mode(self) -> str:
        """How the strategy set was built (one of :data:`STRATEGY_MODES`)."""
        return self._strategy_mode

    def edge_congestion(self, state) -> dict[Edge, float]:
        """Per-edge congestion keyed by the edge tuple."""
        loads = self.congestion(state)
        return {edge: float(load) for edge, load in zip(self._edges, loads)}


# ----------------------------------------------------------------------
# Topology generators
# ----------------------------------------------------------------------

def parallel_links_network_game(
    num_players: int,
    latencies: Sequence[LatencyFunction],
    *,
    name: str = "parallel-links",
) -> NetworkCongestionGame:
    """Two nodes ``s`` and ``t`` connected by ``len(latencies)`` parallel links.

    networkx DiGraphs cannot hold parallel edges, so each link is expanded to
    a two-edge path through a private middle node.  The full latency sits on
    the first edge; the connector is a
    :class:`~repro.games.latency.ZeroLatency` structural helper edge that
    contributes *exactly* zero to every latency, potential, social-cost and
    structural-bound computation (including ``l_min``, from which it is
    excluded).  The resulting game is therefore strategically identical to
    the singleton game on the same latencies.
    """
    graph = nx.DiGraph()
    edge_latencies: dict[Edge, LatencyFunction] = {}
    for idx, latency in enumerate(latencies):
        middle = f"m{idx}"
        graph.add_edge("s", middle)
        graph.add_edge(middle, "t")
        edge_latencies[("s", middle)] = latency
        edge_latencies[(middle, "t")] = ZeroLatency()
    # validate=True on purpose: the ZeroLatency connectors are exempt from
    # the positivity assumption, so the real links still get checked.
    return NetworkCongestionGame(
        graph, "s", "t", num_players,
        edge_latencies=edge_latencies, name=name, validate=True,
    )


def braess_network_game(
    num_players: int,
    *,
    with_shortcut: bool = True,
    scale: float = 1.0,
    name: str = "braess",
) -> NetworkCongestionGame:
    """The classic Braess network.

    Nodes ``s, a, b, t``.  The load-dependent edges ``s->a`` and ``b->t``
    have latency ``scale * x / n`` style linear growth (here simply
    ``scale * x``), the constant edges ``s->b`` and ``a->t`` have latency
    ``scale * n`` and the optional shortcut ``a->b`` is (almost) free.  With
    the shortcut the unique Nash equilibrium routes everybody through
    ``s->a->b->t``; without it traffic splits evenly.
    """
    graph = nx.DiGraph()
    n = float(num_players)
    edge_latencies: dict[Edge, LatencyFunction] = {
        ("s", "a"): LinearLatency(scale, 0.0),
        ("b", "t"): LinearLatency(scale, 0.0),
        ("s", "b"): ConstantLatency(scale * n),
        ("a", "t"): ConstantLatency(scale * n),
    }
    graph.add_edges_from(edge_latencies.keys())
    if with_shortcut:
        graph.add_edge("a", "b")
        edge_latencies[("a", "b")] = ConstantLatency(scale * 1e-3)
    return NetworkCongestionGame(
        graph, "s", "t", num_players,
        edge_latencies=edge_latencies, name=name, validate=False,
    )


def layered_random_network_game(
    num_players: int,
    *,
    layers: int = 3,
    width: int = 3,
    edge_probability: float = 0.7,
    degree: int = 1,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    max_paths: Optional[int] = 10_000,
    strategy_mode: str = "enumerate",
    num_paths: Optional[int] = None,
    path_rng: RngLike = None,
    sparse_incidence: Optional[bool] = None,
    name: str = "layered-random",
) -> NetworkCongestionGame:
    """A random layered DAG between ``s`` and ``t``.

    ``layers`` internal layers of ``width`` nodes each; every node of layer
    ``i`` is connected to each node of layer ``i+1`` independently with
    probability ``edge_probability`` (plus a deterministic "spine" edge so the
    graph always stays connected).  Edge latencies are monomials
    ``a x**degree`` with ``a`` drawn uniformly from ``coefficient_range``.

    The graph is a DAG, so ``strategy_mode="dag-sample"`` (with ``num_paths``
    and ``path_rng``) scales to depths whose exhaustive path set would blow
    past any ``max_paths`` cap.  When ``path_rng`` is not given, the sampler
    continues on the coefficient generator, keeping the whole construction a
    pure function of ``rng``.
    """
    if layers < 1 or width < 1:
        raise GameDefinitionError("layers and width must be positive")
    gen = ensure_rng(rng)
    graph = nx.DiGraph()
    edge_latencies: dict[Edge, LatencyFunction] = {}

    def random_latency() -> LatencyFunction:
        a = float(gen.uniform(*coefficient_range))
        if degree == 1:
            return LinearLatency(a, 0.0)
        return MonomialLatency(a, float(degree))

    def node(layer: int, pos: int) -> str:
        return f"L{layer}N{pos}"

    previous = ["s"]
    for layer in range(layers):
        current = [node(layer, pos) for pos in range(width)]
        for u_idx, u in enumerate(previous):
            for v_idx, v in enumerate(current):
                spine = (u_idx % max(1, len(current))) == v_idx
                if spine or gen.uniform() < edge_probability:
                    graph.add_edge(u, v)
                    edge_latencies[(u, v)] = random_latency()
        previous = current
    for u_idx, u in enumerate(previous):
        graph.add_edge(u, "t")
        edge_latencies[(u, "t")] = random_latency()

    return NetworkCongestionGame(
        graph, "s", "t", num_players,
        edge_latencies=edge_latencies, max_paths=max_paths,
        strategy_mode=strategy_mode, num_paths=num_paths,
        path_rng=path_rng if path_rng is not None else gen,
        sparse_incidence=sparse_incidence, name=name, validate=False,
    )


def grid_network_game(
    num_players: int,
    *,
    rows: int = 2,
    cols: int = 3,
    degree: int = 1,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    max_paths: Optional[int] = 10_000,
    strategy_mode: str = "enumerate",
    num_paths: Optional[int] = None,
    path_rng: RngLike = None,
    sparse_incidence: Optional[bool] = None,
    name: str = "grid",
) -> NetworkCongestionGame:
    """A directed grid from the top-left corner to the bottom-right corner.

    Edges point right and down, so every ``s``-``t`` path is a monotone
    staircase; the number of paths is ``C(rows+cols-2, rows-1)``.  The grid
    is a DAG, so large instances pair with ``strategy_mode="dag-sample"``
    (or ``"k-shortest"``) and ``num_paths`` — see
    :func:`layered_random_network_game` for the seeding convention.
    """
    if rows < 1 or cols < 1:
        raise GameDefinitionError("rows and cols must be positive")
    gen = ensure_rng(rng)
    graph = nx.DiGraph()
    edge_latencies: dict[Edge, LatencyFunction] = {}

    def random_latency() -> LatencyFunction:
        a = float(gen.uniform(*coefficient_range))
        if degree == 1:
            return LinearLatency(a, 0.0)
        return MonomialLatency(a, float(degree))

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
                edge_latencies[((r, c), (r, c + 1))] = random_latency()
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
                edge_latencies[((r, c), (r + 1, c))] = random_latency()

    return NetworkCongestionGame(
        graph, (0, 0), (rows - 1, cols - 1), num_players,
        edge_latencies=edge_latencies, max_paths=max_paths,
        strategy_mode=strategy_mode, num_paths=num_paths,
        path_rng=path_rng if path_rng is not None else gen,
        sparse_incidence=sparse_incidence, name=name, validate=False,
    )


def series_parallel_network_game(
    num_players: int,
    *,
    blocks: int = 2,
    links_per_block: int = 3,
    degree: int = 1,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    max_paths: Optional[int] = 10_000,
    strategy_mode: str = "enumerate",
    num_paths: Optional[int] = None,
    path_rng: RngLike = None,
    sparse_incidence: Optional[bool] = None,
    name: str = "series-parallel",
) -> NetworkCongestionGame:
    """A chain of ``blocks`` parallel-link bundles in series.

    Every player traverses one link out of each bundle, so the number of
    strategies is ``links_per_block ** blocks`` and every strategy has
    ``blocks`` resources.  A standard stress topology for multi-resource
    strategies.  The connectors are
    :class:`~repro.games.latency.ZeroLatency` structural helper edges
    (exactly zero contribution, excluded from ``l_min``).
    """
    if blocks < 1 or links_per_block < 1:
        raise GameDefinitionError("blocks and links_per_block must be positive")
    gen = ensure_rng(rng)
    graph = nx.DiGraph()
    edge_latencies: dict[Edge, LatencyFunction] = {}

    def random_latency() -> LatencyFunction:
        a = float(gen.uniform(*coefficient_range))
        if degree == 1:
            return LinearLatency(a, 0.0)
        return MonomialLatency(a, float(degree))

    nodes = ["s"] + [f"v{idx}" for idx in range(1, blocks)] + ["t"]
    for block in range(blocks):
        u, v = nodes[block], nodes[block + 1]
        for link in range(links_per_block):
            middle = f"{u}-{v}-{link}"
            graph.add_edge(u, middle)
            graph.add_edge(middle, v)
            edge_latencies[(u, middle)] = random_latency()
            edge_latencies[(middle, v)] = ZeroLatency()

    return NetworkCongestionGame(
        graph, "s", "t", num_players,
        edge_latencies=edge_latencies, max_paths=max_paths,
        strategy_mode=strategy_mode, num_paths=num_paths,
        path_rng=path_rng if path_rng is not None else gen,
        sparse_incidence=sparse_incidence, name=name, validate=False,
    )
