"""Symmetric network congestion games.

The paper defines its model in terms of a directed network ``G = (V, E)``
with a common source ``s`` and sink ``t``: the strategy set of every player
is the set of simple ``s``-``t`` paths and the latency of a path is the sum
of the latencies of its edges.  This module builds such games on top of
:mod:`networkx`:

* :class:`NetworkCongestionGame` enumerates the ``s``-``t`` paths (optionally
  capped) and exposes the game through the generic
  :class:`~repro.games.base.CongestionGame` interface, keeping the edge/path
  structure around for reporting;
* a collection of generators for the standard topologies used in the
  experiments (parallel links, the Braess network, layered random DAGs and
  series-parallel grids).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Sequence

import networkx as nx
import numpy as np

from ..errors import GameDefinitionError
from ..rng import RngLike, ensure_rng
from .base import CongestionGame
from .latency import (
    ConstantLatency,
    LatencyFunction,
    LinearLatency,
    MonomialLatency,
)

Edge = tuple[Hashable, Hashable]

__all__ = [
    "NetworkCongestionGame",
    "braess_network_game",
    "parallel_links_network_game",
    "layered_random_network_game",
    "grid_network_game",
    "series_parallel_network_game",
]


class NetworkCongestionGame(CongestionGame):
    """A symmetric congestion game defined on a directed network.

    Parameters
    ----------
    graph:
        Directed graph.  Each edge must carry a ``"latency"`` attribute
        holding a :class:`~repro.games.latency.LatencyFunction` (or one is
        supplied through ``edge_latencies``).
    source, sink:
        Common origin and destination of all players.
    num_players:
        Number of players routing from ``source`` to ``sink``.
    edge_latencies:
        Optional mapping ``(u, v) -> LatencyFunction`` overriding/replacing
        edge attributes.
    max_paths:
        Safety cap on the number of enumerated simple paths.  ``None`` means
        "enumerate everything"; a :class:`GameDefinitionError` is raised when
        the cap is exceeded so that callers never silently truncate the
        strategy space.
    """

    def __init__(
        self,
        graph: nx.DiGraph,
        source: Hashable,
        sink: Hashable,
        num_players: int,
        *,
        edge_latencies: Optional[Mapping[Edge, LatencyFunction]] = None,
        max_paths: Optional[int] = 10_000,
        name: str = "network-game",
        validate: bool = True,
    ):
        if source not in graph or sink not in graph:
            raise GameDefinitionError("source and sink must be nodes of the graph")
        if source == sink:
            raise GameDefinitionError("source and sink must differ")

        edges: list[Edge] = list(graph.edges())
        edge_index = {edge: idx for idx, edge in enumerate(edges)}

        latencies: list[LatencyFunction] = []
        for edge in edges:
            latency = None
            if edge_latencies is not None and edge in edge_latencies:
                latency = edge_latencies[edge]
            elif "latency" in graph.edges[edge]:
                latency = graph.edges[edge]["latency"]
            if latency is None:
                raise GameDefinitionError(f"edge {edge} has no latency function")
            if not isinstance(latency, LatencyFunction):
                raise GameDefinitionError(f"edge {edge} latency is not a LatencyFunction")
            latencies.append(latency)

        paths = self._enumerate_paths(graph, source, sink, max_paths)
        if not paths:
            raise GameDefinitionError(f"no path from {source!r} to {sink!r}")

        strategies: list[list[int]] = []
        strategy_names: list[str] = []
        for path in paths:
            path_edges = list(zip(path[:-1], path[1:]))
            strategies.append([edge_index[e] for e in path_edges])
            strategy_names.append("->".join(str(v) for v in path))

        super().__init__(
            num_players,
            latencies,
            strategies,
            resource_names=[f"{u}->{v}" for u, v in edges],
            strategy_names=strategy_names,
            name=name,
            validate=validate,
        )
        self._graph = graph
        self._source = source
        self._sink = sink
        self._paths = paths
        self._edges = edges

    @staticmethod
    def _enumerate_paths(
        graph: nx.DiGraph,
        source: Hashable,
        sink: Hashable,
        max_paths: Optional[int],
    ) -> list[tuple[Hashable, ...]]:
        paths: list[tuple[Hashable, ...]] = []
        for path in nx.all_simple_paths(graph, source, sink):
            paths.append(tuple(path))
            if max_paths is not None and len(paths) > max_paths:
                raise GameDefinitionError(
                    f"more than {max_paths} simple paths between "
                    f"{source!r} and {sink!r}; raise max_paths to allow this"
                )
        return paths

    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph."""
        return self._graph

    @property
    def source(self) -> Hashable:
        """Common source node."""
        return self._source

    @property
    def sink(self) -> Hashable:
        """Common sink node."""
        return self._sink

    @property
    def paths(self) -> list[tuple[Hashable, ...]]:
        """The enumerated ``s``-``t`` paths (in strategy order)."""
        return list(self._paths)

    @property
    def edges(self) -> list[Edge]:
        """The edges (in resource order)."""
        return list(self._edges)

    def edge_congestion(self, state) -> dict[Edge, float]:
        """Per-edge congestion keyed by the edge tuple."""
        loads = self.congestion(state)
        return {edge: float(load) for edge, load in zip(self._edges, loads)}


# ----------------------------------------------------------------------
# Topology generators
# ----------------------------------------------------------------------

def parallel_links_network_game(
    num_players: int,
    latencies: Sequence[LatencyFunction],
    *,
    name: str = "parallel-links",
) -> NetworkCongestionGame:
    """Two nodes ``s`` and ``t`` connected by ``len(latencies)`` parallel links.

    networkx DiGraphs cannot hold parallel edges, so each link is expanded to
    a two-edge path through a private middle node whose second edge has zero
    congestion effect (constant latency close to zero would violate the
    positivity assumption, so the full latency sits on the first edge and the
    second edge is constant with a negligible value folded into validation).
    The resulting game is strategically identical to the singleton game on
    the same latencies.
    """
    graph = nx.DiGraph()
    edge_latencies: dict[Edge, LatencyFunction] = {}
    for idx, latency in enumerate(latencies):
        middle = f"m{idx}"
        graph.add_edge("s", middle)
        graph.add_edge(middle, "t")
        edge_latencies[("s", middle)] = latency
        edge_latencies[(middle, "t")] = ConstantLatency(0.0)
    return NetworkCongestionGame(
        graph, "s", "t", num_players,
        edge_latencies=edge_latencies, name=name, validate=False,
    )


def braess_network_game(
    num_players: int,
    *,
    with_shortcut: bool = True,
    scale: float = 1.0,
    name: str = "braess",
) -> NetworkCongestionGame:
    """The classic Braess network.

    Nodes ``s, a, b, t``.  The load-dependent edges ``s->a`` and ``b->t``
    have latency ``scale * x / n`` style linear growth (here simply
    ``scale * x``), the constant edges ``s->b`` and ``a->t`` have latency
    ``scale * n`` and the optional shortcut ``a->b`` is (almost) free.  With
    the shortcut the unique Nash equilibrium routes everybody through
    ``s->a->b->t``; without it traffic splits evenly.
    """
    graph = nx.DiGraph()
    n = float(num_players)
    edge_latencies: dict[Edge, LatencyFunction] = {
        ("s", "a"): LinearLatency(scale, 0.0),
        ("b", "t"): LinearLatency(scale, 0.0),
        ("s", "b"): ConstantLatency(scale * n),
        ("a", "t"): ConstantLatency(scale * n),
    }
    graph.add_edges_from(edge_latencies.keys())
    if with_shortcut:
        graph.add_edge("a", "b")
        edge_latencies[("a", "b")] = ConstantLatency(scale * 1e-3)
    return NetworkCongestionGame(
        graph, "s", "t", num_players,
        edge_latencies=edge_latencies, name=name, validate=False,
    )


def layered_random_network_game(
    num_players: int,
    *,
    layers: int = 3,
    width: int = 3,
    edge_probability: float = 0.7,
    degree: int = 1,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    max_paths: Optional[int] = 10_000,
    name: str = "layered-random",
) -> NetworkCongestionGame:
    """A random layered DAG between ``s`` and ``t``.

    ``layers`` internal layers of ``width`` nodes each; every node of layer
    ``i`` is connected to each node of layer ``i+1`` independently with
    probability ``edge_probability`` (plus a deterministic "spine" edge so the
    graph always stays connected).  Edge latencies are monomials
    ``a x**degree`` with ``a`` drawn uniformly from ``coefficient_range``.
    """
    if layers < 1 or width < 1:
        raise GameDefinitionError("layers and width must be positive")
    gen = ensure_rng(rng)
    graph = nx.DiGraph()
    edge_latencies: dict[Edge, LatencyFunction] = {}

    def random_latency() -> LatencyFunction:
        a = float(gen.uniform(*coefficient_range))
        if degree == 1:
            return LinearLatency(a, 0.0)
        return MonomialLatency(a, float(degree))

    def node(layer: int, pos: int) -> str:
        return f"L{layer}N{pos}"

    previous = ["s"]
    for layer in range(layers):
        current = [node(layer, pos) for pos in range(width)]
        for u_idx, u in enumerate(previous):
            for v_idx, v in enumerate(current):
                spine = (u_idx % max(1, len(current))) == v_idx
                if spine or gen.uniform() < edge_probability:
                    graph.add_edge(u, v)
                    edge_latencies[(u, v)] = random_latency()
        previous = current
    for u_idx, u in enumerate(previous):
        graph.add_edge(u, "t")
        edge_latencies[(u, "t")] = random_latency()

    return NetworkCongestionGame(
        graph, "s", "t", num_players,
        edge_latencies=edge_latencies, max_paths=max_paths, name=name, validate=False,
    )


def grid_network_game(
    num_players: int,
    *,
    rows: int = 2,
    cols: int = 3,
    degree: int = 1,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    max_paths: Optional[int] = 10_000,
    name: str = "grid",
) -> NetworkCongestionGame:
    """A directed grid from the top-left corner to the bottom-right corner.

    Edges point right and down, so every ``s``-``t`` path is a monotone
    staircase; the number of paths is ``C(rows+cols-2, rows-1)``.
    """
    if rows < 1 or cols < 1:
        raise GameDefinitionError("rows and cols must be positive")
    gen = ensure_rng(rng)
    graph = nx.DiGraph()
    edge_latencies: dict[Edge, LatencyFunction] = {}

    def random_latency() -> LatencyFunction:
        a = float(gen.uniform(*coefficient_range))
        if degree == 1:
            return LinearLatency(a, 0.0)
        return MonomialLatency(a, float(degree))

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
                edge_latencies[((r, c), (r, c + 1))] = random_latency()
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
                edge_latencies[((r, c), (r + 1, c))] = random_latency()

    return NetworkCongestionGame(
        graph, (0, 0), (rows - 1, cols - 1), num_players,
        edge_latencies=edge_latencies, max_paths=max_paths, name=name, validate=False,
    )


def series_parallel_network_game(
    num_players: int,
    *,
    blocks: int = 2,
    links_per_block: int = 3,
    degree: int = 1,
    coefficient_range: tuple[float, float] = (0.5, 2.0),
    rng: RngLike = None,
    name: str = "series-parallel",
) -> NetworkCongestionGame:
    """A chain of ``blocks`` parallel-link bundles in series.

    Every player traverses one link out of each bundle, so the number of
    strategies is ``links_per_block ** blocks`` and every strategy has
    ``blocks`` resources.  A standard stress topology for multi-resource
    strategies.
    """
    if blocks < 1 or links_per_block < 1:
        raise GameDefinitionError("blocks and links_per_block must be positive")
    gen = ensure_rng(rng)
    graph = nx.DiGraph()
    edge_latencies: dict[Edge, LatencyFunction] = {}

    def random_latency() -> LatencyFunction:
        a = float(gen.uniform(*coefficient_range))
        if degree == 1:
            return LinearLatency(a, 0.0)
        return MonomialLatency(a, float(degree))

    nodes = ["s"] + [f"v{idx}" for idx in range(1, blocks)] + ["t"]
    for block in range(blocks):
        u, v = nodes[block], nodes[block + 1]
        for link in range(links_per_block):
            middle = f"{u}-{v}-{link}"
            graph.add_edge(u, middle)
            graph.add_edge(middle, v)
            edge_latencies[(u, middle)] = random_latency()
            edge_latencies[(middle, v)] = ConstantLatency(0.0)

    return NetworkCongestionGame(
        graph, "s", "t", num_players,
        edge_latencies=edge_latencies, name=name, validate=False,
    )
