"""Convenience constructors for general symmetric congestion games.

:class:`~repro.games.base.CongestionGame` already *is* the general symmetric
game; this module adds factory helpers that make it pleasant to define games
from dictionaries of named resources and named strategies, which is how the
examples and several experiments build their instances.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import GameDefinitionError
from .base import CongestionGame
from .latency import LatencyFunction

__all__ = ["SymmetricCongestionGame", "make_symmetric_game", "game_from_strategy_latencies"]


class SymmetricCongestionGame(CongestionGame):
    """Alias subclass kept for API clarity.

    All behaviour lives in :class:`CongestionGame`; this subclass exists so
    that user code can express intent (``SymmetricCongestionGame(...)``) and
    so that future symmetric-only optimisations have a home.
    """


def make_symmetric_game(
    num_players: int,
    resources: Mapping[str, LatencyFunction],
    strategies: Mapping[str, Iterable[str]],
    *,
    name: str = "symmetric-game",
) -> SymmetricCongestionGame:
    """Build a symmetric congestion game from named resources and strategies.

    Parameters
    ----------
    num_players:
        Number of players.
    resources:
        Mapping from resource name to its latency function.  The iteration
        order of the mapping fixes the resource indices.
    strategies:
        Mapping from strategy name to an iterable of resource names.

    Examples
    --------
    >>> from repro.games.latency import linear, constant
    >>> game = make_symmetric_game(
    ...     10,
    ...     {"top": linear(1.0), "bottom": constant(5.0)},
    ...     {"use-top": ["top"], "use-bottom": ["bottom"]},
    ... )
    >>> game.num_strategies
    2
    """
    resource_names = list(resources.keys())
    index_of = {rname: idx for idx, rname in enumerate(resource_names)}
    latencies = [resources[rname] for rname in resource_names]

    strategy_names = list(strategies.keys())
    strategy_sets: list[list[int]] = []
    for sname in strategy_names:
        members = list(strategies[sname])
        unknown = [m for m in members if m not in index_of]
        if unknown:
            raise GameDefinitionError(
                f"strategy {sname!r} references unknown resources {unknown}"
            )
        strategy_sets.append([index_of[m] for m in members])

    return SymmetricCongestionGame(
        num_players,
        latencies,
        strategy_sets,
        resource_names=resource_names,
        strategy_names=strategy_names,
        name=name,
    )


def game_from_strategy_latencies(
    num_players: int,
    strategy_latencies: Sequence[LatencyFunction],
    *,
    name: str = "strategy-latency-game",
) -> SymmetricCongestionGame:
    """Build a game in which every strategy is its own private resource.

    This is exactly a singleton game but constructed through the generic
    interface; it is occasionally useful in tests to cross-check the
    dedicated :class:`~repro.games.singleton.SingletonCongestionGame`.
    """
    strategies = [[idx] for idx in range(len(strategy_latencies))]
    return SymmetricCongestionGame(
        num_players,
        list(strategy_latencies),
        strategies,
        name=name,
    )
