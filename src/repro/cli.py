"""Command-line interface.

Examples
--------
List the registered experiments::

    python -m repro list

Run one experiment at the quick scale and print its table::

    python -m repro run E2 --quick

Run the full suite and write a markdown report::

    python -m repro run-all --output report.md

Simulate a protocol on a generated instance::

    python -m repro simulate --game linear-singleton --players 200 --rounds 500

Simulate 64 replicas at once through the batched ensemble engine::

    python -m repro simulate --replicas 64 --rounds 500

Shard a 25-point parameter grid over 4 worker processes with a resumable
on-disk result store::

    python -m repro sweep --preset eps-delta --workers 4 --store .sweeps

Serve sweep results over HTTP (see docs/SERVICE.md) and query them::

    python -m repro serve --port 8080 --store .sweep-service
    python -m repro submit --preset logn --quick
    python -m repro fetch <spec-hash> --group-by n
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from .core import (
    EnsembleCollector,
    ExplorationProtocol,
    ImitationProtocol,
    MetricsCollector,
    make_hybrid_protocol,
    simulate,
    simulate_ensemble,
)
from .engines import ENGINES
from .errors import ReproError
from .experiments import (
    list_experiments,
    render_markdown_report,
    render_report,
    run_all,
    run_experiment,
)
from .experiments.registry import experiment_accepts
from .experiments.reporting import render_markdown_table, render_table
from .info import render_info
from .presets import get_sweep_preset, list_sweep_presets
from .games.generators import (
    random_linear_singleton,
    random_monomial_singleton,
    two_link_overshoot_game,
)
from .games.network import (
    braess_network_game,
    grid_network_game,
    layered_random_network_game,
)
from .sweeps import (
    SweepError,
    SweepSpec,
    SweepStore,
    aggregate_rows,
    run_sweep,
    table_rows,
)

__all__ = ["main", "build_parser"]

_GAME_CHOICES = ("linear-singleton", "quadratic-singleton", "braess", "grid",
                 "layered", "two-link")
_PROTOCOL_CHOICES = ("imitation", "exploration", "hybrid")
_ENGINE_CHOICES = ENGINES

#: Topology knobs of the `simulate` command and the games they apply to.
_GAME_KNOBS = {
    "rows": ("grid",),
    "cols": ("grid",),
    "layers": ("layered",),
    "k_paths": ("grid", "layered"),
}

_EPILOG = ("Parameter sweeps (the `sweep` command) are documented in "
           "docs/SWEEPS.md: spec format, store layout, resume semantics and "
           "the determinism guarantees of sharded execution.  Presets: "
           "logn/eps-delta (E2/E3 hitting-time grids), overshoot (E5 "
           "one-round overshoot ratios), protocol-work (E11 concurrent-vs-"
           "sequential work), virtual-agents (E13 innovativeness recovery), "
           "error-terms (F1 Lemma 1/2 error-term ratios), network-scaling "
           "(E14 layered-DAG routing with sampled path strategy sets).  "
           "The sweep service (`serve`/`worker`/`submit`/`status`/`fetch` — "
           "a long-running daemon with a job queue, a content-hash result "
           "cache and a shard-lease board for remote workers over the same "
           "store) is documented in docs/SERVICE.md.  Stores are pluggable: "
           "--store accepts dir:PATH, sqlite:FILE and object:PREFIX URLs as "
           "well as bare directory paths.  "
           "Telemetry — engine round tracing (`simulate --trace`), sweep "
           "metrics (`sweep --metrics-out`), the service's /v1/metrics "
           "Prometheus endpoint, distributed span tracing (`serve/worker "
           "--spans-out`, analysed by `repro trace`) and the "
           "`bench-history` trend table — is "
           "documented in docs/OBSERVABILITY.md.  The `lint` command runs "
           "the repo's static invariant checks (determinism, lock "
           "discipline, hash-input stability — docs/LINT.md).")

_DEFAULT_SERVICE_URL = "http://127.0.0.1:8080"


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="imitation-dynamics",
        description="Concurrent imitation dynamics in congestion games (PODC 2009) reproduction",
        epilog=_EPILOG,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment identifier, e.g. E2")
    run_parser.add_argument("--quick", action="store_true", help="scaled-down configuration")
    run_parser.add_argument("--seed", type=int, default=2009)
    run_parser.add_argument("--markdown", action="store_true", help="emit a markdown table")
    run_parser.add_argument("--engine", choices=_ENGINE_CHOICES, default="batch",
                            help="round engine: batched ensemble (default), "
                                 "per-trial loop, or the fused native kernel")
    run_parser.add_argument("--trials", type=int, default=None,
                            help="Monte-Carlo trials per configuration (experiments "
                                 "that take a trial count only)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for grid-backed experiments "
                                 "(same pool as `sweep --workers`)")

    all_parser = subparsers.add_parser("run-all", help="run the full experiment suite")
    all_parser.add_argument("--quick", action="store_true", help="scaled-down configuration")
    all_parser.add_argument("--seed", type=int, default=2009)
    all_parser.add_argument("--only", nargs="*", default=None,
                            help="restrict to the given experiment identifiers")
    all_parser.add_argument("--markdown", action="store_true", help="emit markdown")
    all_parser.add_argument("--output", default=None, help="write the report to a file")
    all_parser.add_argument("--engine", choices=_ENGINE_CHOICES, default="batch",
                            help="round engine: batched ensemble (default), "
                                 "per-trial loop, or the fused native kernel")
    all_parser.add_argument("--jobs", type=int, default=1,
                            help="run independent experiments over this many "
                                 "worker processes (same pool as `sweep --workers`)")

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a sharded parameter sweep (see docs/SWEEPS.md)",
        epilog=_EPILOG,
    )
    source = sweep_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", choices=list_sweep_presets(),
                        help="a named grid (the grid experiments' SweepSpecs)")
    source.add_argument("--spec", default=None, metavar="FILE",
                        help="path to a SweepSpec as JSON")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = in-process)")
    sweep_parser.add_argument("--store", default=None, metavar="URL",
                              help="result store for resume/caching: a "
                                   "directory path, or a backend URL — "
                                   "dir:PATH, sqlite:FILE, object:PREFIX "
                                   "(see docs/SWEEPS.md)")
    sweep_parser.add_argument("--resume", dest="resume", action="store_true",
                              default=True,
                              help="skip points already in the store (default)")
    sweep_parser.add_argument("--no-resume", dest="resume", action="store_false",
                              help="drop stored rows and recompute every point")
    sweep_parser.add_argument("--quick", action="store_true",
                              help="scaled-down preset grid")
    sweep_parser.add_argument("--seed", type=int, default=None,
                              help="override the spec's master seed")
    sweep_parser.add_argument("--engine", choices=_ENGINE_CHOICES, default=None,
                              help="override the spec's engine (folded into "
                                   "the spec, so it changes the store key)")
    sweep_parser.add_argument("--group-by", default=None, metavar="COL[,COL]",
                              help="also print an aggregate table grouped by "
                                   "these row columns")
    sweep_parser.add_argument("--value", default="rounds_mean",
                              help="row column aggregated by --group-by")
    sweep_parser.add_argument("--markdown", action="store_true",
                              help="emit markdown tables")
    sweep_parser.add_argument("--metrics-out", default=None, metavar="FILE",
                              dest="metrics_out",
                              help="write the run's metrics snapshot (point/"
                                   "shard timings, cache counters, worker "
                                   "utilization) as JSON; '-' for stdout")

    sim_parser = subparsers.add_parser("simulate", help="simulate a protocol on a generated game")
    sim_parser.add_argument("--game", choices=_GAME_CHOICES, default="linear-singleton")
    sim_parser.add_argument("--protocol", choices=_PROTOCOL_CHOICES, default="imitation")
    sim_parser.add_argument("--players", type=int, default=200)
    sim_parser.add_argument("--links", type=int, default=8)
    sim_parser.add_argument("--rounds", type=int, default=500)
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument("--every", type=int, default=10,
                            help="record metrics every N rounds")
    sim_parser.add_argument("--replicas", type=int, default=1,
                            help="number of independent replicas to simulate")
    sim_parser.add_argument("--engine", choices=_ENGINE_CHOICES, default=None,
                            help="round engine; defaults to batch for --replicas > 1 "
                                 "and to the loop engine for a single trajectory")
    sim_parser.add_argument("--dtype", choices=("float64", "float32"),
                            default="float64",
                            help="latency arithmetic precision; float32 is a "
                                 "native-engine feature (see docs/ENGINE.md)")
    sim_parser.add_argument("--rows", type=int, default=None,
                            help="grid rows (--game grid; default 2)")
    sim_parser.add_argument("--cols", type=int, default=None,
                            help="grid columns (--game grid; default 3)")
    sim_parser.add_argument("--layers", type=int, default=None,
                            help="internal layers (--game layered; default 3)")
    sim_parser.add_argument("--k-paths", type=int, default=None, dest="k_paths",
                            help="bound the strategy set to this many sampled "
                                 "s-t paths instead of enumerating them "
                                 "(--game grid/layered)")
    sim_parser.add_argument("--trace", default=None, metavar="FILE",
                            help="write a per-round JSONL trace (migrations, "
                                 "potential/social-cost deltas, wall time) to "
                                 "FILE; never changes the simulated "
                                 "trajectory (docs/OBSERVABILITY.md)")

    info_parser = subparsers.add_parser(
        "info", help="print versions, registered experiments/presets and "
                     "optional-dependency availability")
    info_parser.add_argument("--json", action="store_true",
                             help="machine-readable JSON instead of prose "
                                  "(for CI and monitoring scrapes)")

    bench_parser = subparsers.add_parser(
        "bench-history",
        help="per-guard trend table over the committed BENCH_<pr>.json "
             "benchmark records")
    bench_parser.add_argument("--dir", default=".", metavar="DIR",
                              help="directory holding the BENCH_*.json "
                                   "records (default: current directory)")
    bench_parser.add_argument("--only", nargs="*", default=None,
                              help="restrict to the given benchmark names")
    bench_parser.add_argument("--markdown", action="store_true",
                              help="emit a markdown table")

    serve_parser = subparsers.add_parser(
        "serve", help="run the sweep-service daemon (see docs/SERVICE.md)",
        epilog=_EPILOG,
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="listen port (0 picks a free one)")
    serve_parser.add_argument("--store", default=".sweep-service", metavar="URL",
                              help="result store served by the daemon: a "
                                   "directory path or a backend URL — "
                                   "dir:PATH, sqlite:FILE, object:PREFIX")
    serve_parser.add_argument("--workers", type=int, default=1,
                              help="concurrent jobs (service-level parallelism)")
    serve_parser.add_argument("--sweep-workers", type=int, default=1,
                              dest="sweep_workers",
                              help="worker processes per job's sweep "
                                   "(same pool as `sweep --workers`)")
    serve_parser.add_argument("--lease-ttl", type=float, default=30.0,
                              dest="lease_ttl", metavar="SEC",
                              help="shard lease lifetime for remote workers; "
                                   "a worker that stops heartbeating for "
                                   "this long has its shard requeued")
    serve_parser.add_argument("--shard-points", type=int, default=None,
                              dest="shard_points", metavar="N",
                              help="points per remote shard (default: the "
                                   "scheduler's own granularity)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every HTTP request to stderr "
                                   "(http.server's plain one-line format)")
    serve_parser.add_argument("--access-log", action="store_true",
                              dest="access_log",
                              help="emit one structured JSON line per "
                                   "request to stderr (method, route "
                                   "template, status, latency); off by "
                                   "default")
    serve_parser.add_argument("--spans-out", default=None, dest="spans_out",
                              metavar="FILE",
                              help="record distributed-tracing spans "
                                   "(requests, jobs, leases, sweeps) to "
                                   "this JSONL file; analyse with "
                                   "`repro trace` (docs/OBSERVABILITY.md)")

    worker_parser = subparsers.add_parser(
        "worker", help="run a remote sweep worker against a daemon "
                       "(leases shards over HTTP; see docs/SERVICE.md)")
    worker_parser.add_argument("--connect", required=True, metavar="URL",
                               help="base URL of the daemon to pull "
                                    "shards from")
    worker_parser.add_argument("--worker-id", default=None, dest="worker_id",
                               help="name reported with each lease "
                                    "(default: a random worker-<hex>)")
    worker_parser.add_argument("--poll", type=float, default=0.5,
                               help="idle sleep between lease attempts "
                                    "when no shard is pending")
    worker_parser.add_argument("--lease-ttl", type=float, default=None,
                               dest="lease_ttl", metavar="SEC",
                               help="per-lease TTL override (default: the "
                                    "daemon's --lease-ttl)")
    worker_parser.add_argument("--max-idle", type=float, default=None,
                               dest="max_idle", metavar="SEC",
                               help="exit after this long without work "
                                    "(default: run until killed)")
    worker_parser.add_argument("--max-shards", type=int, default=None,
                               dest="max_shards", metavar="N",
                               help="exit after completing N shards")
    worker_parser.add_argument("--verbose", action="store_true",
                               help="emit one structured JSON line per "
                                    "worker event to stderr")
    worker_parser.add_argument("--spans-out", default=None, dest="spans_out",
                               metavar="FILE",
                               help="record this worker's spans to a JSONL "
                                    "file; they join the daemon's trace "
                                    "via the lease traceparent (merge the "
                                    "files for `repro trace`)")

    submit_parser = subparsers.add_parser(
        "submit", help="submit a sweep to a running service and wait for it",
        epilog=_EPILOG,
    )
    submit_source = submit_parser.add_mutually_exclusive_group(required=True)
    submit_source.add_argument("--preset", choices=list_sweep_presets(),
                               help="a named grid (the grid experiments' "
                                    "SweepSpecs)")
    submit_source.add_argument("--spec", default=None, metavar="FILE",
                               help="path to a SweepSpec as JSON")
    submit_parser.add_argument("--url", default=_DEFAULT_SERVICE_URL,
                               help="service base URL")
    submit_parser.add_argument("--quick", action="store_true",
                               help="scaled-down preset grid")
    submit_parser.add_argument("--seed", type=int, default=None,
                               help="override the spec's master seed")
    submit_parser.add_argument("--priority", type=int, default=0,
                               help="queue priority (higher runs first)")
    submit_parser.add_argument("--remote", action="store_true",
                               help="execute on leased `repro worker` "
                                    "agents instead of the daemon's own "
                                    "pool (see docs/SERVICE.md)")
    submit_parser.add_argument("--wait", dest="wait", action="store_true",
                               default=True,
                               help="poll the job to completion (default)")
    submit_parser.add_argument("--no-wait", dest="wait", action="store_false",
                               help="return immediately after enqueueing")
    submit_parser.add_argument("--timeout", type=float, default=None,
                               help="give up waiting after this many seconds")

    status_parser = subparsers.add_parser(
        "status", help="show service health, or one job's state")
    status_parser.add_argument("job_id", nargs="?", default=None,
                               help="a job id; omitted: daemon health + "
                                    "every job")
    status_parser.add_argument("--url", default=_DEFAULT_SERVICE_URL,
                               help="service base URL")

    fetch_parser = subparsers.add_parser(
        "fetch", help="fetch a sweep's rows (or an aggregate) from a service")
    fetch_parser.add_argument("spec_hash",
                              help="the sweep's content hash (printed by "
                                   "`submit`, also in /v1/jobs)")
    fetch_parser.add_argument("--url", default=_DEFAULT_SERVICE_URL,
                              help="service base URL")
    fetch_parser.add_argument("--group-by", default=None, metavar="COL[,COL]",
                              help="print an aggregate over these columns "
                                   "instead of the raw rows")
    fetch_parser.add_argument("--value", default="rounds_mean",
                              help="row column aggregated by --group-by")
    fetch_parser.add_argument("--jsonl", action="store_true",
                              help="print raw JSONL rows instead of a table")
    fetch_parser.add_argument("--markdown", action="store_true",
                              help="emit a markdown table")

    trace_parser = subparsers.add_parser(
        "trace",
        help="analyse recorded span JSONL: critical path, shard timeline, "
             "lease churn (see docs/OBSERVABILITY.md)",
        epilog="Span files come from `serve --spans-out`, `worker "
               "--spans-out` or a traced run; pass every file of one run "
               "so the tree is connected (exit 1 on orphan spans).")
    trace_parser.add_argument("spans", nargs="+", metavar="FILE",
                              help="span JSONL file(s) to merge and analyse")
    trace_parser.add_argument("--top", type=int, default=5, metavar="N",
                              help="slowest points / orphans listed per "
                                   "trace (default 5)")
    trace_parser.add_argument("--width", type=int, default=48, metavar="COLS",
                              help="timeline bar width in characters")
    trace_parser.add_argument("--all", action="store_true", dest="all_traces",
                              help="expand short traces too (idle lease "
                                   "polls, health checks); folded by "
                                   "default")

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the static invariant checks over the repro package",
        epilog="Rule catalogue, suppression syntax and the baseline "
               "workflow are documented in docs/LINT.md.")
    lint_parser.add_argument("paths", nargs="*", metavar="PATH",
                             help="files/directories to lint (default: the "
                                  "installed repro package)")
    lint_parser.add_argument("--format", choices=("text", "json"),
                             default="text", dest="output_format",
                             help="report format (json is what CI archives)")
    lint_parser.add_argument("--baseline", default=None, metavar="FILE",
                             help="accepted-findings file; findings in it "
                                  "are reported but do not fail the run")
    lint_parser.add_argument("--write-baseline", default=None, metavar="FILE",
                             help="snapshot the current findings as the new "
                                  "baseline and exit 0")
    lint_parser.add_argument("--rules", default=None, metavar="ID[,ID]",
                             help="run only these rule ids (e.g. "
                                  "DET003,LOCK001)")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="print the rule catalogue and exit")
    return parser


def _build_game(name: str, players: int, links: int, seed: int, *,
                rows: Optional[int] = None, cols: Optional[int] = None,
                layers: Optional[int] = None, k_paths: Optional[int] = None):
    sampler = ({"strategy_mode": "dag-sample", "num_paths": k_paths}
               if k_paths is not None else {})
    if name == "linear-singleton":
        return random_linear_singleton(players, links, rng=seed)
    if name == "quadratic-singleton":
        return random_monomial_singleton(players, links, 2.0, rng=seed)
    if name == "braess":
        return braess_network_game(players)
    if name == "grid":
        return grid_network_game(players,
                                 rows=rows if rows is not None else 2,
                                 cols=cols if cols is not None else 3,
                                 rng=seed, **sampler)
    if name == "layered":
        return layered_random_network_game(
            players, layers=layers if layers is not None else 3,
            rng=seed, **sampler)
    if name == "two-link":
        return two_link_overshoot_game(players, 2.0)
    raise ValueError(f"unknown game {name!r}")


def _build_protocol(name: str):
    if name == "imitation":
        return ImitationProtocol()
    if name == "exploration":
        return ExplorationProtocol()
    if name == "hybrid":
        return make_hybrid_protocol()
    raise ValueError(f"unknown protocol {name!r}")


def _require_positive(name: str, value: Optional[int], *, minimum: int = 1) -> None:
    """Reject non-sensical integer options with a one-line CLI error.

    Raises :class:`~repro.errors.ReproError`, which ``main`` turns into exit
    status 1 — instead of letting e.g. ``--replicas 0`` die with a numpy
    traceback deep inside the engine.
    """
    if value is not None and value < minimum:
        raise ReproError(f"{name} must be at least {minimum}, got {value}")


def _command_list() -> int:
    for spec in list_experiments():
        print(f"{spec.experiment_id:>4}  {spec.title}")
        print(f"      {spec.claim}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    _require_positive("--trials", args.trials)
    _require_positive("--workers", args.workers)
    kwargs = {}
    if args.trials is not None:
        kwargs["trials"] = args.trials
        if not experiment_accepts(args.experiment, "trials"):
            print(f"note: experiment {args.experiment} takes no --trials; "
                  "the option is ignored", file=sys.stderr)
    if args.workers != 1 and not experiment_accepts(args.experiment, "workers"):
        print(f"note: experiment {args.experiment} takes no --workers; "
              "the option is ignored", file=sys.stderr)
    result = run_experiment(args.experiment, quick=args.quick, seed=args.seed,
                            engine=args.engine, workers=args.workers, **kwargs)
    print(result.render_markdown() if args.markdown else result.render())
    return 0


def _command_run_all(args: argparse.Namespace) -> int:
    _require_positive("--jobs", args.jobs)
    results = run_all(quick=args.quick, seed=args.seed, only=args.only, verbose=False,
                      engine=args.engine, jobs=args.jobs)
    report = render_markdown_report(results) if args.markdown else render_report(results)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote report for {len(results)} experiments to {args.output}")
    else:
        print(report)
    return 0


def _load_sweep_spec(args: argparse.Namespace) -> SweepSpec:
    if args.preset is not None:
        return get_sweep_preset(args.preset, quick=args.quick, seed=args.seed)
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise SweepError(f"cannot read sweep spec {args.spec!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise SweepError(f"sweep spec {args.spec!r} is not valid JSON: {error}") from error
    spec = SweepSpec.from_dict(payload)
    if args.seed is not None:
        spec = SweepSpec.from_dict({**spec.to_dict(), "seed": args.seed})
    return spec


def _apply_engine_override(spec: SweepSpec, args: argparse.Namespace) -> SweepSpec:
    """Fold a ``--engine`` override into the spec (and thus its store key)."""
    engine = getattr(args, "engine", None)
    if engine is not None and engine != spec.engine:
        spec = SweepSpec.from_dict({**spec.to_dict(), "engine": engine})
    return spec


def _command_sweep(args: argparse.Namespace) -> int:
    _require_positive("--workers", args.workers)
    spec = _apply_engine_override(_load_sweep_spec(args), args)
    store = SweepStore(args.store) if args.store else None
    result = run_sweep(spec, workers=args.workers, store=store, resume=args.resume)
    print(f"sweep {spec.name} [{spec.content_hash()}]: {len(result.rows)} points "
          f"({result.computed} computed, {result.cached} cached) "
          f"in {result.elapsed_seconds:.2f}s [workers={result.workers}]")
    render = render_markdown_table if args.markdown else render_table
    print(render(table_rows(result.rows)))
    if args.group_by:
        by = [column.strip() for column in args.group_by.split(",") if column.strip()]
        aggregated = aggregate_rows(result.rows, by=by, value=args.value)
        print()
        print(render(aggregated))
    if args.metrics_out:
        payload = result.metrics.to_json() + "\n"
        if args.metrics_out == "-":
            sys.stdout.write(payload)
        else:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(payload)
            print(f"wrote metrics snapshot to {args.metrics_out}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    if args.json:
        from .info import runtime_info

        print(json.dumps(runtime_info(), indent=2, sort_keys=True))
        return 0
    print(render_info())
    return 0


def _command_bench_history(args: argparse.Namespace) -> int:
    from .bench_history import render_bench_history

    print(render_bench_history(args.dir, markdown=args.markdown,
                               names=args.only))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .service import run_service

    _require_positive("--workers", args.workers)
    _require_positive("--sweep-workers", args.sweep_workers)
    _require_positive("--port", args.port, minimum=0)
    return run_service(args.store, host=args.host, port=args.port,
                       workers=args.workers, sweep_workers=args.sweep_workers,
                       lease_ttl=args.lease_ttl,
                       shard_points=args.shard_points,
                       quiet=not args.verbose, access_log=args.access_log,
                       spans_out=args.spans_out)


def _command_worker(args: argparse.Namespace) -> int:
    from .service import run_worker

    _require_positive("--max-shards", args.max_shards)
    log = None
    if args.verbose:
        from .telemetry import StructuredLogger

        log = StructuredLogger(sys.stderr, component="worker")
    stats = run_worker(args.connect, worker_id=args.worker_id,
                       poll=args.poll, lease_ttl=args.lease_ttl,
                       max_idle=args.max_idle, max_shards=args.max_shards,
                       log=log, spans_out=args.spans_out)
    print(f"worker {stats['worker_id']} done: "
          f"{stats['shards_completed']} shards, "
          f"{stats['points_computed']} points computed, "
          f"{stats['stale_results']} stale results discarded")
    return 0


def _submit_summary(response: dict) -> str:
    """One line per submit outcome; the CI smoke job greps these."""
    prefix = f"spec {response['spec_name']} [{response['spec_hash']}]"
    if response["cached"]:
        return (f"{prefix}: cache hit — {response['points']} points served "
                "from store, no job enqueued")
    job = response["job"]
    if job["state"] == "done":
        summary = job["summary"]
        return (f"{prefix}: job {job['job_id']} done — "
                f"{summary['points']} points "
                f"({summary['computed']} computed, {summary['cached']} cached) "
                f"in {summary['elapsed_seconds']:.2f}s")
    joined = "" if response["created"] else " (joined in-flight job)"
    return f"{prefix}: job {job['job_id']} {job['state']}{joined}"


def _command_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(args.url)
    if args.spec is not None:
        kwargs = {"spec": _load_sweep_spec(args)}
    else:
        kwargs = {"preset": args.preset, "quick": args.quick,
                  "seed": args.seed}
    kwargs["priority"] = args.priority
    if args.remote:
        kwargs["mode"] = "remote"
    if args.wait:
        response = client.submit_and_wait(timeout=args.timeout, **kwargs)
    else:
        response = client.submit(**kwargs)
    print(_submit_summary(response))
    return 0


def _format_job_line(job: dict) -> str:
    tail = ""
    if job["state"] == "done" and job["summary"]:
        summary = job["summary"]
        tail = (f" — {summary['points']} points "
                f"({summary['computed']} computed, "
                f"{summary['cached']} cached)")
    elif job["state"] == "failed":
        tail = f" — {job['error']}"
    return (f"{job['job_id']}  {job['state']:>9}  "
            f"{job['spec_name']} [{job['spec_hash']}]{tail}")


def _command_status(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id is not None:
        print(_format_job_line(client.job(args.job_id)))
        return 0
    health = client.healthz()
    tally = ", ".join(f"{state}={count}"
                      for state, count in sorted(health["jobs"].items())
                      if count)
    print(f"service {health['status']} at {args.url} "
          f"(code version {health['code_version']}, "
          f"store {health['store_root']}, "
          f"uptime {health['uptime_seconds']:.0f}s)")
    print(f"jobs: {tally or 'none yet'}")
    for job in client.jobs():
        print(_format_job_line(job))
    return 0


def _command_fetch(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(args.url)
    if args.jsonl:
        if args.group_by:
            raise ReproError("--jsonl streams raw rows; it cannot be "
                             "combined with --group-by")
        for line in client.iter_row_lines(args.spec_hash):
            print(line)
        return 0
    render = render_markdown_table if args.markdown else render_table
    if args.group_by:
        by = [column.strip() for column in args.group_by.split(",")
              if column.strip()]
        print(render(client.aggregate(args.spec_hash, by=by,
                                      value=args.value)))
        return 0
    print(render(table_rows(client.rows(args.spec_hash))))
    return 0


def _warn_inapplicable_game_knobs(args: argparse.Namespace) -> None:
    """Warn (like `run` does for --trials) when a topology knob was given
    for a game family that has no such parameter."""
    for knob, games in _GAME_KNOBS.items():
        if getattr(args, knob) is not None and args.game not in games:
            flag = "--" + knob.replace("_", "-")
            print(f"note: {flag} does not apply to --game {args.game}; "
                  "the option is ignored", file=sys.stderr)


def _command_simulate(args: argparse.Namespace) -> int:
    _require_positive("--replicas", args.replicas)
    _require_positive("--players", args.players)
    _require_positive("--links", args.links)
    _require_positive("--rounds", args.rounds)
    _require_positive("--every", args.every)
    _require_positive("--rows", args.rows)
    _require_positive("--cols", args.cols)
    _require_positive("--layers", args.layers)
    _require_positive("--k-paths", args.k_paths)
    _warn_inapplicable_game_knobs(args)
    engine = args.engine or ("batch" if args.replicas > 1 else "loop")
    if engine == "loop" and args.replicas > 1:
        raise ReproError("--engine loop simulates a single trajectory; "
                         "use --engine batch for --replicas > 1")
    if args.dtype != "float64" and engine != "native":
        raise ReproError("--dtype float32 is a native-engine feature; "
                         "add --engine native")
    game = _build_game(args.game, args.players, args.links, args.seed,
                       rows=args.rows, cols=args.cols, layers=args.layers,
                       k_paths=args.k_paths)
    protocol = _build_protocol(args.protocol)
    trace = _build_tracer(args, engine)
    try:
        if engine in ("batch", "native"):
            return _simulate_ensemble(args, game, protocol, engine,
                                      trace=trace)
        collector = MetricsCollector(game, every=args.every)
        result = simulate(game, protocol, rounds=args.rounds, rng=args.seed,
                          collector=collector, trace=trace)
    finally:
        if trace is not None:
            trace.close()
            print(f"wrote round trace to {args.trace}", file=sys.stderr)
    print(f"game: {game.describe()}")
    print(f"protocol: {protocol.describe()}")
    print(f"rounds executed: {result.rounds} (stop reason: {result.stop_reason.value})")
    print(f"total migrations: {result.total_migrations}")
    print(f"{'round':>8} {'potential':>14} {'avg latency':>12} {'unsatisfied':>12} {'support':>8}")
    for record in result.records:
        print(f"{record.round_index:>8} {record.potential:>14.4f} "
              f"{record.average_latency:>12.4f} {record.unsatisfied_fraction:>12.3f} "
              f"{record.support_size:>8}")
    return 0


def _build_tracer(args: argparse.Namespace, engine: str):
    """The ``--trace`` tracer: a JSONL sink keyed by the simulate params."""
    if args.trace is None:
        return None
    from .telemetry import JsonlTraceSink, RoundTracer, make_run_id

    run_id = make_run_id({
        "game": args.game, "protocol": args.protocol, "players": args.players,
        "links": args.links, "rounds": args.rounds, "seed": args.seed,
        "replicas": args.replicas, "engine": engine, "dtype": args.dtype,
    })
    return RoundTracer(JsonlTraceSink(args.trace), run_id=run_id)


def _simulate_ensemble(args: argparse.Namespace, game, protocol,
                       engine: str = "batch", trace=None) -> int:
    collector = EnsembleCollector(game, every=args.every)
    result = simulate_ensemble(
        game, protocol, replicas=args.replicas, rounds=args.rounds,
        rng=args.seed, collector=collector, backend=engine, dtype=args.dtype,
        trace=trace,
    )
    print(f"game: {game.describe()}")
    print(f"protocol: {protocol.describe()}")
    replica_word = "replica" if result.num_replicas == 1 else "replicas"
    suffix = "" if args.dtype == "float64" else f", dtype={args.dtype}"
    print(f"engine: {engine} ({result.num_replicas} {replica_word}{suffix})")
    rounds = result.rounds
    print(f"rounds executed: min={int(rounds.min())} mean={float(rounds.mean()):.1f} "
          f"max={int(rounds.max())}")
    quiescent = sum(1 for reason in result.stop_reasons if reason.value == "quiescent")
    print(f"quiescent replicas: {quiescent}/{result.num_replicas}")
    print(f"total migrations: {int(result.total_migrations.sum())}")
    potential = result.metric("potential")
    latency = result.metric("average_latency")
    support = result.metric("support_size")
    print(f"{'round':>8} {'mean potential':>15} {'mean latency':>13} {'mean support':>13}")
    for row, round_index in enumerate(result.trace_rounds):
        print(f"{round_index:>8} {float(np.mean(potential[row])):>15.4f} "
              f"{float(np.mean(latency[row])):>13.4f} "
              f"{float(np.mean(support[row])):>13.2f}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from .trace_analysis import run_trace_analysis

    _require_positive("--top", args.top)
    _require_positive("--width", args.width)
    return run_trace_analysis(args.spans, top=args.top, width=args.width,
                              all_traces=args.all_traces, out=sys.stdout)


def _command_lint(args: argparse.Namespace) -> int:
    from .lint import runner as lint_runner

    if args.list_rules:
        lint_runner.list_rules_text(sys.stdout)
        return 0
    rule_ids = ([part.strip() for part in args.rules.split(",") if part.strip()]
                if args.rules else None)
    return lint_runner.run(
        args.paths or None,
        output_format=args.output_format,
        baseline_path=args.baseline,
        write_baseline_path=args.write_baseline,
        rule_ids=rule_ids,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.

    Library failures (:class:`~repro.errors.ReproError` — e.g. an unknown
    experiment identifier or an invalid sweep spec) are printed to stderr
    and reported as exit status 1 instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "run-all":
            return _command_run_all(args)
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "info":
            return _command_info(args)
        if args.command == "bench-history":
            return _command_bench_history(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "worker":
            return _command_worker(args)
        if args.command == "submit":
            return _command_submit(args)
        if args.command == "status":
            return _command_status(args)
        if args.command == "fetch":
            return _command_fetch(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "lint":
            return _command_lint(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
