"""Command-line interface.

Examples
--------
List the registered experiments::

    python -m repro list

Run one experiment at the quick scale and print its table::

    python -m repro run E2 --quick

Run the full suite and write a markdown report::

    python -m repro run-all --output report.md

Simulate a protocol on a generated instance::

    python -m repro simulate --game linear-singleton --players 200 --rounds 500

Simulate 64 replicas at once through the batched ensemble engine::

    python -m repro simulate --replicas 64 --rounds 500

Shard a 25-point parameter grid over 4 worker processes with a resumable
on-disk result store::

    python -m repro sweep --preset eps-delta --workers 4 --store .sweeps
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from .core import (
    EnsembleCollector,
    ExplorationProtocol,
    ImitationProtocol,
    MetricsCollector,
    make_hybrid_protocol,
    simulate,
    simulate_ensemble,
)
from .errors import ReproError
from .experiments import (
    list_experiments,
    render_markdown_report,
    render_report,
    run_all,
    run_experiment,
)
from .experiments.registry import experiment_accepts
from .experiments.exp_eps_delta_sweep import eps_delta_grid_spec
from .experiments.exp_error_terms import error_terms_spec
from .experiments.exp_logn_scaling import logn_scaling_spec
from .experiments.exp_network_scaling import network_scaling_spec
from .experiments.exp_overshooting import overshoot_spec
from .experiments.exp_protocol_comparison import protocol_comparison_spec
from .experiments.exp_virtual_agents import virtual_agents_spec
from .experiments.reporting import render_markdown_table, render_table
from .games.generators import (
    random_linear_singleton,
    random_monomial_singleton,
    two_link_overshoot_game,
)
from .games.network import (
    braess_network_game,
    grid_network_game,
    layered_random_network_game,
)
from .sweeps import (
    SweepError,
    SweepSpec,
    SweepStore,
    aggregate_rows,
    run_sweep,
    table_rows,
)

__all__ = ["main", "build_parser"]

_GAME_CHOICES = ("linear-singleton", "quadratic-singleton", "braess", "grid",
                 "layered", "two-link")
_PROTOCOL_CHOICES = ("imitation", "exploration", "hybrid")
_ENGINE_CHOICES = ("loop", "batch")

#: Topology knobs of the `simulate` command and the games they apply to.
_GAME_KNOBS = {
    "rows": ("grid",),
    "cols": ("grid",),
    "layers": ("layered",),
    "k_paths": ("grid", "layered"),
}

#: Named sweep presets: the grid experiments expressed as SweepSpecs.
_SWEEP_PRESETS = {
    "logn": logn_scaling_spec,
    "eps-delta": eps_delta_grid_spec,
    "overshoot": overshoot_spec,
    "protocol-work": protocol_comparison_spec,
    "virtual-agents": virtual_agents_spec,
    "error-terms": error_terms_spec,
    "network-scaling": network_scaling_spec,
}

_EPILOG = ("Parameter sweeps (the `sweep` command) are documented in "
           "docs/SWEEPS.md: spec format, store layout, resume semantics and "
           "the determinism guarantees of sharded execution.  Presets: "
           "logn/eps-delta (E2/E3 hitting-time grids), overshoot (E5 "
           "one-round overshoot ratios), protocol-work (E11 concurrent-vs-"
           "sequential work), virtual-agents (E13 innovativeness recovery), "
           "error-terms (F1 Lemma 1/2 error-term ratios), network-scaling "
           "(E14 layered-DAG routing with sampled path strategy sets).")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="imitation-dynamics",
        description="Concurrent imitation dynamics in congestion games (PODC 2009) reproduction",
        epilog=_EPILOG,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment identifier, e.g. E2")
    run_parser.add_argument("--quick", action="store_true", help="scaled-down configuration")
    run_parser.add_argument("--seed", type=int, default=2009)
    run_parser.add_argument("--markdown", action="store_true", help="emit a markdown table")
    run_parser.add_argument("--engine", choices=_ENGINE_CHOICES, default="batch",
                            help="round engine: batched ensemble (default) or per-trial loop")
    run_parser.add_argument("--trials", type=int, default=None,
                            help="Monte-Carlo trials per configuration (experiments "
                                 "that take a trial count only)")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for grid-backed experiments "
                                 "(same pool as `sweep --workers`)")

    all_parser = subparsers.add_parser("run-all", help="run the full experiment suite")
    all_parser.add_argument("--quick", action="store_true", help="scaled-down configuration")
    all_parser.add_argument("--seed", type=int, default=2009)
    all_parser.add_argument("--only", nargs="*", default=None,
                            help="restrict to the given experiment identifiers")
    all_parser.add_argument("--markdown", action="store_true", help="emit markdown")
    all_parser.add_argument("--output", default=None, help="write the report to a file")
    all_parser.add_argument("--engine", choices=_ENGINE_CHOICES, default="batch",
                            help="round engine: batched ensemble (default) or per-trial loop")
    all_parser.add_argument("--jobs", type=int, default=1,
                            help="run independent experiments over this many "
                                 "worker processes (same pool as `sweep --workers`)")

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a sharded parameter sweep (see docs/SWEEPS.md)",
        epilog=_EPILOG,
    )
    source = sweep_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", choices=sorted(_SWEEP_PRESETS),
                        help="a named grid (the grid experiments' SweepSpecs)")
    source.add_argument("--spec", default=None, metavar="FILE",
                        help="path to a SweepSpec as JSON")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = in-process)")
    sweep_parser.add_argument("--store", default=None, metavar="DIR",
                              help="result-store root for resume/caching")
    sweep_parser.add_argument("--resume", dest="resume", action="store_true",
                              default=True,
                              help="skip points already in the store (default)")
    sweep_parser.add_argument("--no-resume", dest="resume", action="store_false",
                              help="drop stored rows and recompute every point")
    sweep_parser.add_argument("--quick", action="store_true",
                              help="scaled-down preset grid")
    sweep_parser.add_argument("--seed", type=int, default=None,
                              help="override the spec's master seed")
    sweep_parser.add_argument("--group-by", default=None, metavar="COL[,COL]",
                              help="also print an aggregate table grouped by "
                                   "these row columns")
    sweep_parser.add_argument("--value", default="rounds_mean",
                              help="row column aggregated by --group-by")
    sweep_parser.add_argument("--markdown", action="store_true",
                              help="emit markdown tables")

    sim_parser = subparsers.add_parser("simulate", help="simulate a protocol on a generated game")
    sim_parser.add_argument("--game", choices=_GAME_CHOICES, default="linear-singleton")
    sim_parser.add_argument("--protocol", choices=_PROTOCOL_CHOICES, default="imitation")
    sim_parser.add_argument("--players", type=int, default=200)
    sim_parser.add_argument("--links", type=int, default=8)
    sim_parser.add_argument("--rounds", type=int, default=500)
    sim_parser.add_argument("--seed", type=int, default=0)
    sim_parser.add_argument("--every", type=int, default=10,
                            help="record metrics every N rounds")
    sim_parser.add_argument("--replicas", type=int, default=1,
                            help="number of independent replicas to simulate")
    sim_parser.add_argument("--engine", choices=_ENGINE_CHOICES, default=None,
                            help="round engine; defaults to batch for --replicas > 1 "
                                 "and to the loop engine for a single trajectory")
    sim_parser.add_argument("--rows", type=int, default=None,
                            help="grid rows (--game grid; default 2)")
    sim_parser.add_argument("--cols", type=int, default=None,
                            help="grid columns (--game grid; default 3)")
    sim_parser.add_argument("--layers", type=int, default=None,
                            help="internal layers (--game layered; default 3)")
    sim_parser.add_argument("--k-paths", type=int, default=None, dest="k_paths",
                            help="bound the strategy set to this many sampled "
                                 "s-t paths instead of enumerating them "
                                 "(--game grid/layered)")
    return parser


def _build_game(name: str, players: int, links: int, seed: int, *,
                rows: Optional[int] = None, cols: Optional[int] = None,
                layers: Optional[int] = None, k_paths: Optional[int] = None):
    sampler = ({"strategy_mode": "dag-sample", "num_paths": k_paths}
               if k_paths is not None else {})
    if name == "linear-singleton":
        return random_linear_singleton(players, links, rng=seed)
    if name == "quadratic-singleton":
        return random_monomial_singleton(players, links, 2.0, rng=seed)
    if name == "braess":
        return braess_network_game(players)
    if name == "grid":
        return grid_network_game(players,
                                 rows=rows if rows is not None else 2,
                                 cols=cols if cols is not None else 3,
                                 rng=seed, **sampler)
    if name == "layered":
        return layered_random_network_game(
            players, layers=layers if layers is not None else 3,
            rng=seed, **sampler)
    if name == "two-link":
        return two_link_overshoot_game(players, 2.0)
    raise ValueError(f"unknown game {name!r}")


def _build_protocol(name: str):
    if name == "imitation":
        return ImitationProtocol()
    if name == "exploration":
        return ExplorationProtocol()
    if name == "hybrid":
        return make_hybrid_protocol()
    raise ValueError(f"unknown protocol {name!r}")


def _require_positive(name: str, value: Optional[int], *, minimum: int = 1) -> None:
    """Reject non-sensical integer options with a one-line CLI error.

    Raises :class:`~repro.errors.ReproError`, which ``main`` turns into exit
    status 1 — instead of letting e.g. ``--replicas 0`` die with a numpy
    traceback deep inside the engine.
    """
    if value is not None and value < minimum:
        raise ReproError(f"{name} must be at least {minimum}, got {value}")


def _command_list() -> int:
    for spec in list_experiments():
        print(f"{spec.experiment_id:>4}  {spec.title}")
        print(f"      {spec.claim}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    _require_positive("--trials", args.trials)
    _require_positive("--workers", args.workers)
    kwargs = {}
    if args.trials is not None:
        kwargs["trials"] = args.trials
        if not experiment_accepts(args.experiment, "trials"):
            print(f"note: experiment {args.experiment} takes no --trials; "
                  "the option is ignored", file=sys.stderr)
    if args.workers != 1 and not experiment_accepts(args.experiment, "workers"):
        print(f"note: experiment {args.experiment} takes no --workers; "
              "the option is ignored", file=sys.stderr)
    result = run_experiment(args.experiment, quick=args.quick, seed=args.seed,
                            engine=args.engine, workers=args.workers, **kwargs)
    print(result.render_markdown() if args.markdown else result.render())
    return 0


def _command_run_all(args: argparse.Namespace) -> int:
    _require_positive("--jobs", args.jobs)
    results = run_all(quick=args.quick, seed=args.seed, only=args.only, verbose=False,
                      engine=args.engine, jobs=args.jobs)
    report = render_markdown_report(results) if args.markdown else render_report(results)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote report for {len(results)} experiments to {args.output}")
    else:
        print(report)
    return 0


def _load_sweep_spec(args: argparse.Namespace) -> SweepSpec:
    if args.preset is not None:
        spec = _SWEEP_PRESETS[args.preset](
            quick=args.quick, seed=args.seed if args.seed is not None else 2009,
        )
        return spec
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise SweepError(f"cannot read sweep spec {args.spec!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise SweepError(f"sweep spec {args.spec!r} is not valid JSON: {error}") from error
    spec = SweepSpec.from_dict(payload)
    if args.seed is not None:
        spec = SweepSpec.from_dict({**spec.to_dict(), "seed": args.seed})
    return spec


def _command_sweep(args: argparse.Namespace) -> int:
    _require_positive("--workers", args.workers)
    spec = _load_sweep_spec(args)
    store = SweepStore(args.store) if args.store else None
    result = run_sweep(spec, workers=args.workers, store=store, resume=args.resume)
    print(f"sweep {spec.name} [{spec.content_hash()}]: {len(result.rows)} points "
          f"({result.computed} computed, {result.cached} cached) "
          f"in {result.elapsed_seconds:.2f}s [workers={result.workers}]")
    render = render_markdown_table if args.markdown else render_table
    print(render(table_rows(result.rows)))
    if args.group_by:
        by = [column.strip() for column in args.group_by.split(",") if column.strip()]
        aggregated = aggregate_rows(result.rows, by=by, value=args.value)
        print()
        print(render(aggregated))
    return 0


def _warn_inapplicable_game_knobs(args: argparse.Namespace) -> None:
    """Warn (like `run` does for --trials) when a topology knob was given
    for a game family that has no such parameter."""
    for knob, games in _GAME_KNOBS.items():
        if getattr(args, knob) is not None and args.game not in games:
            flag = "--" + knob.replace("_", "-")
            print(f"note: {flag} does not apply to --game {args.game}; "
                  "the option is ignored", file=sys.stderr)


def _command_simulate(args: argparse.Namespace) -> int:
    _require_positive("--replicas", args.replicas)
    _require_positive("--players", args.players)
    _require_positive("--links", args.links)
    _require_positive("--rounds", args.rounds)
    _require_positive("--every", args.every)
    _require_positive("--rows", args.rows)
    _require_positive("--cols", args.cols)
    _require_positive("--layers", args.layers)
    _require_positive("--k-paths", args.k_paths)
    _warn_inapplicable_game_knobs(args)
    engine = args.engine or ("batch" if args.replicas > 1 else "loop")
    if engine == "loop" and args.replicas > 1:
        raise ReproError("--engine loop simulates a single trajectory; "
                         "use --engine batch for --replicas > 1")
    game = _build_game(args.game, args.players, args.links, args.seed,
                       rows=args.rows, cols=args.cols, layers=args.layers,
                       k_paths=args.k_paths)
    protocol = _build_protocol(args.protocol)
    if engine == "batch":
        return _simulate_ensemble(args, game, protocol)
    collector = MetricsCollector(game, every=args.every)
    result = simulate(game, protocol, rounds=args.rounds, rng=args.seed, collector=collector)
    print(f"game: {game.describe()}")
    print(f"protocol: {protocol.describe()}")
    print(f"rounds executed: {result.rounds} (stop reason: {result.stop_reason.value})")
    print(f"total migrations: {result.total_migrations}")
    print(f"{'round':>8} {'potential':>14} {'avg latency':>12} {'unsatisfied':>12} {'support':>8}")
    for record in result.records:
        print(f"{record.round_index:>8} {record.potential:>14.4f} "
              f"{record.average_latency:>12.4f} {record.unsatisfied_fraction:>12.3f} "
              f"{record.support_size:>8}")
    return 0


def _simulate_ensemble(args: argparse.Namespace, game, protocol) -> int:
    collector = EnsembleCollector(game, every=args.every)
    result = simulate_ensemble(
        game, protocol, replicas=args.replicas, rounds=args.rounds,
        rng=args.seed, collector=collector,
    )
    print(f"game: {game.describe()}")
    print(f"protocol: {protocol.describe()}")
    replica_word = "replica" if result.num_replicas == 1 else "replicas"
    print(f"engine: batch ({result.num_replicas} {replica_word})")
    rounds = result.rounds
    print(f"rounds executed: min={int(rounds.min())} mean={float(rounds.mean()):.1f} "
          f"max={int(rounds.max())}")
    quiescent = sum(1 for reason in result.stop_reasons if reason.value == "quiescent")
    print(f"quiescent replicas: {quiescent}/{result.num_replicas}")
    print(f"total migrations: {int(result.total_migrations.sum())}")
    potential = result.metric("potential")
    latency = result.metric("average_latency")
    support = result.metric("support_size")
    print(f"{'round':>8} {'mean potential':>15} {'mean latency':>13} {'mean support':>13}")
    for row, round_index in enumerate(result.trace_rounds):
        print(f"{round_index:>8} {float(np.mean(potential[row])):>15.4f} "
              f"{float(np.mean(latency[row])):>13.4f} "
              f"{float(np.mean(support[row])):>13.2f}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.

    Library failures (:class:`~repro.errors.ReproError` — e.g. an unknown
    experiment identifier or an invalid sweep spec) are printed to stderr
    and reported as exit status 1 instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "run-all":
            return _command_run_all(args)
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "sweep":
            return _command_sweep(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
