"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can distinguish library failures from programming errors with a
single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GameDefinitionError(ReproError):
    """Raised when a congestion game is constructed from inconsistent data.

    Examples include empty strategy sets, strategies referencing unknown
    resources, a non-positive number of players, or latency functions that
    violate the model assumptions (negative latencies, non-monotone values).
    """


class StateError(ReproError):
    """Raised when a game state is invalid for the game it is used with.

    A state is invalid if its strategy-count vector has the wrong length,
    contains negative entries, or does not sum to the number of players.
    """


class ProtocolError(ReproError):
    """Raised when a revision protocol is configured inconsistently.

    Examples include a non-positive damping constant ``lambda``, a migration
    probability outside ``[0, 1]`` that cannot be repaired by clipping, or a
    protocol applied to a game it does not support.
    """


class MetricError(ReproError):
    """Raised when a trajectory/ensemble metric is requested under a name
    that was never recorded.

    The message lists the valid metric names, so a typo in e.g.
    ``TrajectoryResult.metric("potental")`` fails with an actionable error
    instead of an opaque ``AttributeError``.
    """


class ConvergenceError(ReproError):
    """Raised when a dynamics run exhausts its round budget without
    satisfying the requested stopping condition and the caller asked for
    strict behaviour."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for unknown experiment names or
    invalid experiment configurations."""


class EngineError(ReproError):
    """Raised when an unknown round engine / backend is requested, or when a
    backend cannot execute the requested configuration.

    Every surface that accepts an ``engine=`` argument (experiments, sweep
    kernels, the CLI) validates the name up front and raises this error
    listing the valid backends, instead of letting the typo surface as a
    backend-specific failure deep inside a run.
    """


class TelemetryError(ReproError):
    """Raised for invalid telemetry usage: registering one metric name under
    two different kinds (counter vs gauge), merging snapshots whose
    histograms were built with different bucket boundaries, or observing
    non-finite values.  Telemetry must never corrupt silently — a merged
    counter that double-counts is worse than no counter at all."""


class NativeBackendError(EngineError):
    """Raised when the native (compiled) backend cannot lower a game or
    protocol to its kernel representation.

    The message names the offending component (an unsupported protocol
    class, a latency function that can be neither expressed as polynomial
    coefficients nor tabulated) so the caller can fall back to
    ``engine="batch"`` deliberately rather than silently."""
