"""Goldberg-style randomized sequential local search.

Goldberg (PODC 2004) analyses a protocol for parallel-links load balancing in
which, in every step, a randomly selected player samples a resource uniformly
at random and migrates if that strictly improves its latency; the expected
time to reach a Nash equilibrium is pseudopolynomial.  We implement the
natural generalisation to arbitrary symmetric games (the sampled object is a
strategy) as a *sequential, uniform-sampling* comparator for the concurrent,
proportional-sampling IMITATION PROTOCOL.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConvergenceError
from ..games.base import CongestionGame
from ..games.nash import is_nash
from ..games.state import GameState, StateLike
from ..rng import RngLike, ensure_rng
from .best_response import BaselineResult

__all__ = ["run_goldberg_baseline"]


def run_goldberg_baseline(
    game: CongestionGame,
    initial_state: Optional[StateLike] = None,
    *,
    max_steps: int = 1_000_000,
    min_gain: float = 0.0,
    check_every: int = 64,
    rng: RngLike = None,
    strict: bool = False,
) -> BaselineResult:
    """Randomized sequential local search.

    Every step: pick a player uniformly at random (equivalently an occupied
    origin strategy with probability proportional to its count), pick a
    destination strategy uniformly at random, migrate if the latency gain
    exceeds ``min_gain``.  Nash equilibrium is checked every ``check_every``
    steps (a full check per step would dominate the running time).

    Returns the number of *elementary steps* (including the unsuccessful
    ones), which is the quantity Goldberg's analysis bounds.
    """
    if initial_state is None:
        initial_state = game.uniform_random_state(rng)
    counts = game.validate_state(initial_state).copy()
    gen = ensure_rng(rng)
    num_strategies = game.num_strategies

    for step_index in range(max_steps):
        if step_index % check_every == 0 and is_nash(game, counts, tolerance=min_gain):
            return BaselineResult(GameState(counts), step_index, True)
        # Origin strategy of the sampled player: proportional to counts.
        origin = int(gen.choice(num_strategies, p=counts / counts.sum()))
        destination = int(gen.integers(0, num_strategies))
        if destination == origin:
            continue
        latencies = game.strategy_latencies(counts)
        post = game.post_migration_latency_matrix(counts)
        gain = float(latencies[origin] - post[origin, destination])
        if gain > min_gain:
            counts[origin] -= 1
            counts[destination] += 1
    if is_nash(game, counts, tolerance=min_gain):
        return BaselineResult(GameState(counts), max_steps, True)
    if strict:
        raise ConvergenceError(f"Goldberg dynamics did not stop within {max_steps} steps")
    return BaselineResult(GameState(counts), max_steps, False)
