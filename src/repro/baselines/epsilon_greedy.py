"""Epsilon-greedy sequential better-response dynamics.

Chien and Sinclair study sequential dynamics in which a player only deviates
when its latency decreases by a relative factor of at least ``1 + eps``; with
bounded-jump latency functions these dynamics reach an approximate Nash
equilibrium quickly.  The baseline is included to compare the *number of
moves* needed by a sequential epsilon-greedy process with the *number of
rounds* needed by the concurrent imitation protocol to reach comparable
approximation quality.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConvergenceError
from ..games.base import CongestionGame
from ..games.state import GameState, StateLike
from ..rng import RngLike, ensure_rng
from .best_response import BaselineResult

__all__ = ["run_epsilon_greedy_baseline"]


def run_epsilon_greedy_baseline(
    game: CongestionGame,
    epsilon: float,
    initial_state: Optional[StateLike] = None,
    *,
    max_steps: int = 1_000_000,
    pivot: str = "max-gain",
    rng: RngLike = None,
    strict: bool = False,
) -> BaselineResult:
    """Sequential better-response with a relative improvement threshold.

    A move from ``P`` to ``Q`` is admissible when
    ``l_P(x) > (1 + eps) * l_Q(x + 1_Q - 1_P)``.  The dynamics stop when no
    admissible move remains — by construction the resulting state is a
    relative ``(1 + eps)``-approximate Nash equilibrium.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if initial_state is None:
        initial_state = game.uniform_random_state(rng)
    counts = game.validate_state(initial_state).copy()
    gen = ensure_rng(rng)

    for step_index in range(max_steps):
        latencies = game.strategy_latencies(counts)
        post = game.post_migration_latency_matrix(counts)
        admissible = latencies[:, np.newaxis] > (1.0 + epsilon) * post
        occupied = counts > 0
        admissible &= occupied[:, np.newaxis]
        np.fill_diagonal(admissible, False)
        moves = np.argwhere(admissible)
        if moves.size == 0:
            return BaselineResult(GameState(counts), step_index, True)
        if pivot == "max-gain":
            gains = latencies[moves[:, 0]] - post[moves[:, 0], moves[:, 1]]
            chosen = int(np.argmax(gains))
        elif pivot == "random":
            chosen = int(gen.integers(0, moves.shape[0]))
        else:
            raise ValueError(f"unknown pivot rule {pivot!r}")
        origin, destination = moves[chosen]
        counts[origin] -= 1
        counts[destination] += 1
    if strict:
        raise ConvergenceError(
            f"epsilon-greedy dynamics did not stop within {max_steps} steps"
        )
    return BaselineResult(GameState(counts), max_steps, False)
