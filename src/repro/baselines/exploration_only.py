"""Pure exploration dynamics (no imitation).

Section 6 of the paper points out that the EXPLORATION PROTOCOL alone also
converges to a Nash equilibrium, but its migration probabilities must be
damped much more aggressively (by ``|P| l_min / (beta n)`` instead of
``1/d``), so convergence is significantly slower.  The experiment comparing
the two (E9) runs this baseline side by side with the imitation and hybrid
protocols.
"""

from __future__ import annotations

from typing import Optional

from ..core.dynamics import TrajectoryResult
from ..core.ensemble import EnsembleDynamics, EnsembleResult, batch_stop_at_nash
from ..core.exploration import ExplorationProtocol
from ..core.imitation import DEFAULT_LAMBDA
from ..core.run import run_until_nash
from ..games.base import CongestionGame
from ..games.state import BatchStateLike, StateLike
from ..rng import RngLike

__all__ = ["run_exploration_only", "run_exploration_only_ensemble"]


def run_exploration_only(
    game: CongestionGame,
    *,
    lambda_: float = DEFAULT_LAMBDA,
    initial_state: Optional[StateLike] = None,
    max_rounds: int = 1_000_000,
    tolerance: float = 1e-9,
    rng: RngLike = None,
) -> TrajectoryResult:
    """Run the pure EXPLORATION PROTOCOL until a Nash equilibrium."""
    protocol = ExplorationProtocol(lambda_)
    return run_until_nash(
        game,
        protocol,
        tolerance=tolerance,
        initial_state=initial_state,
        max_rounds=max_rounds,
        rng=rng,
    )


def run_exploration_only_ensemble(
    game: CongestionGame,
    *,
    replicas: int,
    lambda_: float = DEFAULT_LAMBDA,
    initial_states: Optional[BatchStateLike] = None,
    max_rounds: int = 1_000_000,
    tolerance: float = 1e-9,
    rng: RngLike = None,
) -> EnsembleResult:
    """Run ``replicas`` replicas of the pure EXPLORATION PROTOCOL to Nash
    equilibria through the batched ensemble engine (exploration is by far the
    slowest baseline, so batching pays off the most here)."""
    dynamics = EnsembleDynamics(game, ExplorationProtocol(lambda_), rng=rng)
    return dynamics.run(
        initial_states,
        replicas=replicas,
        max_rounds=max_rounds,
        stop_condition=batch_stop_at_nash(tolerance),
    )
