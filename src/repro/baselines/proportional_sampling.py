"""Concurrent proportional imitation *without* elasticity damping.

Section 2.3 of the paper motivates the ``1/d`` damping factor with a two-link
example: with a constant link and an ``x**d`` link, an undamped
proportional-imitation rule lets an expected ``Theta(b * d)`` latency mass
flood the fast link and overshoot the balanced state by a factor ``d``.  This
module packages the undamped rule as a first-class baseline protocol so that
the overshooting ablation (experiment E5) can run both rules through exactly
the same engine.

Two variants are exported:

* :class:`ProportionalImitationProtocol` — migration probability
  ``lambda * (l_P - l_Q(x+1_Q-1_P)) / l_P`` with the usual ``nu`` threshold;
* :func:`make_aggressive_proportional_protocol` — the same rule with
  ``lambda = 1`` and no threshold, the most aggressive (and most
  overshoot-prone) member of the family.
"""

from __future__ import annotations

from ..core.imitation import UndampedImitationProtocol

__all__ = ["ProportionalImitationProtocol", "make_aggressive_proportional_protocol"]


class ProportionalImitationProtocol(UndampedImitationProtocol):
    """Alias of :class:`~repro.core.imitation.UndampedImitationProtocol`.

    Kept as a distinct name so experiment tables can talk about the baseline
    without referencing the internals of the core package.  The vectorised
    :meth:`~repro.core.protocols.Protocol.switch_probabilities_batch` comes
    with the inheritance (only the elasticity damping differs), so the
    baseline runs under the ensemble engine at full speed.
    """

    name = "proportional-imitation"


def make_aggressive_proportional_protocol() -> ProportionalImitationProtocol:
    """The fully undamped, threshold-free proportional imitation rule
    (``lambda = 1``), maximising the overshooting effect."""
    return ProportionalImitationProtocol(1.0, use_nu_threshold=False)
