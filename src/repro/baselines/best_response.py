"""Sequential best-response dynamics (Rosenthal's baseline).

The classical comparator for any congestion-game dynamics: in every step one
player (full knowledge of the whole strategy space) switches to a best
response.  Convergence to a Nash equilibrium is guaranteed because every step
strictly decreases the Rosenthal potential, but the number of steps can be
exponential in general (Fabrikant, Papadimitriou, Talwar) and the process is
inherently sequential — one move per round, versus up to ``n`` moves per
round for the concurrent IMITATION PROTOCOL.

The heavy lifting lives in :mod:`repro.games.nash`; this module adapts it to
the baseline interface used by the experiment harness (a callable returning a
:class:`BaselineResult`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..games.base import CongestionGame
from ..games.nash import run_best_response
from ..games.state import GameState, StateLike
from ..rng import RngLike

__all__ = ["BaselineResult", "run_best_response_baseline"]


@dataclass(frozen=True)
class BaselineResult:
    """Common result type for all sequential baselines.

    Attributes
    ----------
    final_state:
        The state reached when the dynamics stopped.
    steps:
        Number of single-player moves executed.
    converged:
        True if the dynamics stopped at their target solution concept rather
        than by exhausting the step budget.
    """

    final_state: GameState
    steps: int
    converged: bool


def run_best_response_baseline(
    game: CongestionGame,
    initial_state: Optional[StateLike] = None,
    *,
    max_steps: int = 1_000_000,
    pivot: str = "max-gain",
    rng: RngLike = None,
) -> BaselineResult:
    """Run sequential best response until a Nash equilibrium.

    ``pivot`` is either ``"max-gain"`` (the player with the largest available
    improvement moves, then to its best response) or ``"random"`` (a random
    improving player moves).
    """
    if initial_state is None:
        initial_state = game.uniform_random_state(rng)
    final, steps = run_best_response(
        game, initial_state, max_steps=max_steps, pivot=pivot, rng=rng
    )
    return BaselineResult(final_state=final, steps=steps, converged=steps < max_steps)
