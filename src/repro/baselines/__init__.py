"""Baseline dynamics the paper compares against (or motivates against).

* sequential best response (Rosenthal),
* epsilon-greedy sequential better response (Chien-Sinclair style),
* randomized sequential local search (Goldberg style),
* concurrent proportional imitation without elasticity damping (the
  overshooting strawman of Section 2.3),
* pure exploration (Protocol 2 run on its own).
"""

from .best_response import BaselineResult, run_best_response_baseline
from .epsilon_greedy import run_epsilon_greedy_baseline
from .exploration_only import run_exploration_only, run_exploration_only_ensemble
from .goldberg import run_goldberg_baseline
from .proportional_sampling import (
    ProportionalImitationProtocol,
    make_aggressive_proportional_protocol,
)

__all__ = [
    "BaselineResult",
    "run_best_response_baseline",
    "run_epsilon_greedy_baseline",
    "run_exploration_only",
    "run_exploration_only_ensemble",
    "run_goldberg_baseline",
    "ProportionalImitationProtocol",
    "make_aggressive_proportional_protocol",
]
