"""Concurrent imitation dynamics in congestion games (PODC 2009) — reproduction.

The package is organised in five layers:

* :mod:`repro.games` — the congestion-game substrate (latency functions,
  symmetric / singleton / network / threshold games, states, Nash equilibria,
  social optima, instance generators);
* :mod:`repro.core` — the paper's contribution: the IMITATION PROTOCOL, the
  EXPLORATION PROTOCOL, protocol mixtures, the exact concurrent round engine,
  sequential dynamics, stability predicates and potential bookkeeping;
* :mod:`repro.baselines` — comparator dynamics (best response,
  epsilon-greedy, Goldberg-style local search, undamped proportional
  imitation, pure exploration);
* :mod:`repro.analysis` — hitting times, scaling fits, martingale and
  extinction diagnostics, Price-of-Imitation estimation;
* :mod:`repro.experiments` — the experiment registry that regenerates every
  quantitative claim of the paper (see ``EXPERIMENTS.md``).

Quickstart
----------
>>> from repro.games import make_linear_singleton
>>> from repro.core import ImitationProtocol, run_until_approx_equilibrium
>>> game = make_linear_singleton(200, [1.0, 2.0, 4.0])
>>> result = run_until_approx_equilibrium(
...     game, ImitationProtocol(), delta=0.1, epsilon=0.2, rng=0)
>>> result.rounds >= 0
True
"""

from . import analysis, baselines, core, games
from .core import (
    ConcurrentDynamics,
    ExplorationProtocol,
    ImitationProtocol,
    MixtureProtocol,
    UndampedImitationProtocol,
    make_hybrid_protocol,
    run_until_approx_equilibrium,
    run_until_imitation_stable,
    run_until_nash,
    simulate,
)
from .games import (
    CongestionGame,
    GameState,
    NetworkCongestionGame,
    SingletonCongestionGame,
    SymmetricCongestionGame,
    make_linear_singleton,
    make_symmetric_game,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "games",
    "ConcurrentDynamics",
    "ExplorationProtocol",
    "ImitationProtocol",
    "MixtureProtocol",
    "UndampedImitationProtocol",
    "make_hybrid_protocol",
    "run_until_approx_equilibrium",
    "run_until_imitation_stable",
    "run_until_nash",
    "simulate",
    "CongestionGame",
    "GameState",
    "NetworkCongestionGame",
    "SingletonCongestionGame",
    "SymmetricCongestionGame",
    "make_linear_singleton",
    "make_symmetric_game",
    "__version__",
]
