"""Concurrent imitation dynamics in congestion games (PODC 2009) — reproduction.

The package is organised in seven layers:

* :mod:`repro.games` — the congestion-game substrate (latency functions,
  symmetric / singleton / network / threshold games, states, Nash equilibria,
  social optima, instance generators);
* :mod:`repro.core` — the paper's contribution: the IMITATION PROTOCOL, the
  EXPLORATION PROTOCOL, protocol mixtures, the round engines, sequential
  dynamics, stability predicates and potential bookkeeping;
* :mod:`repro.baselines` — comparator dynamics (best response,
  epsilon-greedy, Goldberg-style local search, undamped proportional
  imitation, pure exploration);
* :mod:`repro.analysis` — hitting times, scaling fits, martingale and
  extinction diagnostics, Price-of-Imitation estimation;
* :mod:`repro.experiments` — the experiment registry that regenerates every
  quantitative claim of the paper (see ``EXPERIMENTS.md``);
* :mod:`repro.sweeps` — declarative parameter grids sharded over worker
  processes with a resumable content-hash-keyed result store (see
  ``docs/SWEEPS.md``);
* :mod:`repro.service` — the sweep service: a long-running daemon (job
  queue, result cache, HTTP + client API) serving the sweep store (see
  ``docs/SERVICE.md``).

Round engines
-------------
Two engines implement the same exact finite-population dynamics (one
multinomial per occupied origin, never a mean-field approximation):

* the **loop engine** (:class:`~repro.core.dynamics.ConcurrentDynamics`)
  advances a single trajectory and offers the richest per-round
  instrumentation (full :class:`~repro.core.metrics.RoundRecord` snapshots,
  state histories, arbitrary Python stop conditions);
* the **ensemble engine** (:class:`~repro.core.ensemble.EnsembleDynamics`)
  advances ``R`` independent replicas as one vectorized ``(R, S)`` system —
  batched switch matrices, one stacked multinomial sweep per round, and
  early retirement of finished replicas.  It is the default for everything
  statistical (hitting-time, survival and price estimation run many replicas
  of the same game) and is several times to orders of magnitude faster at
  realistic replica counts.

For one replica the two engines consume the random stream identically; for
``R > 1`` the ensemble interleaves replicas round by round and is therefore a
*different* (equally exact, equally reproducible) sampling of the same
process than ``R`` sequential loop runs.  ``docs/ENGINE.md`` explains the
``(R, S)`` layout, the exactness argument and when to pick which engine.

Quickstart
----------
>>> from repro.games import make_linear_singleton
>>> from repro.core import ImitationProtocol, run_until_approx_equilibrium
>>> game = make_linear_singleton(200, [1.0, 2.0, 4.0])
>>> result = run_until_approx_equilibrium(
...     game, ImitationProtocol(), delta=0.1, epsilon=0.2, rng=0)
>>> result.rounds >= 0
True

Batched (many replicas at once):

>>> from repro.core import EnsembleDynamics
>>> ensemble = EnsembleDynamics(game, ImitationProtocol(), rng=0)
>>> result = ensemble.run(replicas=32, max_rounds=2_000)
>>> int(result.num_replicas)
32
"""

from . import analysis, baselines, core, games
from .core import (
    ConcurrentDynamics,
    EnsembleCollector,
    EnsembleDynamics,
    EnsembleResult,
    ExplorationProtocol,
    ImitationProtocol,
    MixtureProtocol,
    UndampedImitationProtocol,
    make_hybrid_protocol,
    run_until_approx_equilibrium,
    run_until_imitation_stable,
    run_until_nash,
    simulate,
    simulate_ensemble,
)
from .games import (
    BatchGameState,
    CongestionGame,
    GameState,
    NetworkCongestionGame,
    SingletonCongestionGame,
    SymmetricCongestionGame,
    make_linear_singleton,
    make_symmetric_game,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "games",
    "ConcurrentDynamics",
    "EnsembleCollector",
    "EnsembleDynamics",
    "EnsembleResult",
    "ExplorationProtocol",
    "ImitationProtocol",
    "MixtureProtocol",
    "UndampedImitationProtocol",
    "make_hybrid_protocol",
    "run_until_approx_equilibrium",
    "run_until_imitation_stable",
    "run_until_nash",
    "simulate",
    "simulate_ensemble",
    "BatchGameState",
    "CongestionGame",
    "GameState",
    "NetworkCongestionGame",
    "SingletonCongestionGame",
    "SymmetricCongestionGame",
    "make_linear_singleton",
    "make_symmetric_game",
    "__version__",
]
