"""The paper's primary contribution: concurrent imitation dynamics.

This subpackage implements the IMITATION PROTOCOL (Protocol 1), the
EXPLORATION PROTOCOL (Protocol 2), protocol mixtures, the exact concurrent
round engines (the single-trajectory loop engine and the batched ensemble
engine), the sequential dynamics used by the lower-bound constructions, the
stability/equilibrium predicates and the potential bookkeeping of the
convergence proofs.
"""

from .dynamics import (
    ConcurrentDynamics,
    StepOutcome,
    StopReason,
    TrajectoryResult,
    sample_migration_matrix,
    step,
)
from .ensemble import (
    EnsembleCollector,
    EnsembleDynamics,
    EnsembleResult,
    batch_stop_at_approx_equilibrium,
    batch_stop_at_imitation_stable,
    batch_stop_at_nash,
    batch_stop_from_scalar,
    sample_migration_matrices,
    simulate_ensemble,
)
from .exploration import ExplorationProtocol
from .hybrid import MixtureProtocol, make_hybrid_protocol
from .imitation import DEFAULT_LAMBDA, ImitationProtocol, UndampedImitationProtocol
from .metrics import MetricsCollector, RoundRecord
from .virtual_agents import VirtualAgentImitationProtocol
from .potential import (
    PotentialBreakdown,
    error_terms,
    estimate_expected_drift,
    expected_virtual_potential_gain,
    potential_breakdown,
    true_potential_gain,
    virtual_potential_gain,
)
from .protocols import Protocol, SwitchProbabilities
from .run import (
    run_until_approx_equilibrium,
    run_until_imitation_stable,
    run_until_nash,
    simulate,
    stop_after_rounds,
    stop_at_approx_equilibrium,
    stop_at_imitation_stable,
    stop_at_nash,
)
from .sequential import (
    SequentialEnsembleResult,
    SequentialResult,
    run_sequential_ensemble,
    run_sequential_imitation_asymmetric,
    run_sequential_imitation_symmetric,
)
from .stability import (
    DeviationSets,
    deviation_sets,
    is_approx_equilibrium,
    is_imitation_stable,
    max_imitation_gain,
    unsatisfied_fraction,
)

__all__ = [
    "ConcurrentDynamics",
    "StepOutcome",
    "StopReason",
    "TrajectoryResult",
    "sample_migration_matrix",
    "step",
    "EnsembleCollector",
    "EnsembleDynamics",
    "EnsembleResult",
    "batch_stop_at_approx_equilibrium",
    "batch_stop_at_imitation_stable",
    "batch_stop_at_nash",
    "batch_stop_from_scalar",
    "sample_migration_matrices",
    "simulate_ensemble",
    "ExplorationProtocol",
    "MixtureProtocol",
    "make_hybrid_protocol",
    "DEFAULT_LAMBDA",
    "ImitationProtocol",
    "UndampedImitationProtocol",
    "VirtualAgentImitationProtocol",
    "MetricsCollector",
    "RoundRecord",
    "PotentialBreakdown",
    "error_terms",
    "estimate_expected_drift",
    "expected_virtual_potential_gain",
    "potential_breakdown",
    "true_potential_gain",
    "virtual_potential_gain",
    "Protocol",
    "SwitchProbabilities",
    "run_until_approx_equilibrium",
    "run_until_imitation_stable",
    "run_until_nash",
    "simulate",
    "stop_after_rounds",
    "stop_at_approx_equilibrium",
    "stop_at_imitation_stable",
    "stop_at_nash",
    "SequentialEnsembleResult",
    "SequentialResult",
    "run_sequential_ensemble",
    "run_sequential_imitation_asymmetric",
    "run_sequential_imitation_symmetric",
    "DeviationSets",
    "deviation_sets",
    "is_approx_equilibrium",
    "is_imitation_stable",
    "max_imitation_gain",
    "unsatisfied_fraction",
]
