"""The batched ensemble engine: R replicas as one vectorized (R, S) system.

Every experiment of the paper is an *ensemble* statement — convergence times,
survival probabilities and the Price of Imitation are all means or tails over
many independent replicas of the same dynamics.  Instead of looping a Python
round engine once per replica, :class:`EnsembleDynamics` advances all live
replicas together:

* the state of the ensemble is an ``(R, S)`` counts matrix
  (:class:`~repro.games.state.BatchGameState`),
* protocols produce an ``(R, S, S)`` stack of switch matrices in one
  broadcasted evaluation (:meth:`~repro.core.protocols.Protocol.switch_probabilities_batch`),
* the migration step draws **one** stacked multinomial over all occupied
  (replica, origin) rows (:func:`sample_migration_matrices`) — this is still
  the *exact* finite-population simulation, because players revise
  independently across replicas as well as within them,
* replicas that hit their stop condition or become quiescent are retired
  from the active set, so a finished replica costs nothing while its slower
  siblings keep running.

Reproducibility: the ensemble consumes a *single* generator in (replica,
origin) row order, so for ``R = 1`` it consumes the stream exactly like
:class:`~repro.core.dynamics.ConcurrentDynamics`.  For ``R > 1`` the stream
interleaves replicas round by round and therefore differs from ``R``
sequential runs of the loop engine — both are reproducible from their seed,
but they are *different* random processes sample-path-wise (see
``docs/ENGINE.md`` and :mod:`repro.rng`).

When pathwise loop/batch equality *is* required (the engine-parity tests of
the ported experiments), :meth:`EnsembleDynamics.run` accepts
``rng_streams`` — one generator per replica.  Each replica then draws its
migrations from its own stream, exactly as ``R`` independent
:class:`~repro.core.dynamics.ConcurrentDynamics` runs on the same
generators would, so the two engines produce bit-identical trajectories
while the protocol evaluation stays batched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError, MetricError
from ..games.base import CongestionGame
from ..games.state import BatchGameState, BatchStateLike, GameState
from ..rng import RngLike, ensure_rng
from .dynamics import (
    StopCondition,
    StopReason,
    TrajectoryResult,
    sample_migration_matrices,
    sample_migration_matrix,
)
from .protocols import Protocol, quiescent_mask

#: A batched stopping condition receives ``(game, counts_rs, round_index)``
#: for the *active* replicas and returns a boolean mask of shape ``(R,)``
#: marking the replicas that should stop before executing that round.
BatchStopCondition = Callable[[CongestionGame, np.ndarray, int], np.ndarray]

#: An observer receives ``(game, counts_rs, active_indices, round_index)``
#: after every executed round: ``counts_rs`` is the full ``(R, S)`` matrix and
#: ``active_indices`` the replicas that actually moved this round.
EnsembleObserver = Callable[[CongestionGame, np.ndarray, np.ndarray, int], None]

__all__ = [
    "BatchStopCondition",
    "EnsembleObserver",
    "EnsembleCollector",
    "EnsembleResult",
    "EnsembleDynamics",
    "sample_migration_matrices",
    "simulate_ensemble",
    "batch_stop_from_scalar",
    "batch_stop_at_approx_equilibrium",
    "batch_stop_at_imitation_stable",
    "batch_stop_at_nash",
]


#: Metrics the collector can evaluate with one broadcasted call per round.
_BATCH_METRICS: dict[str, Callable[[CongestionGame, np.ndarray], np.ndarray]] = {
    "potential": lambda game, counts: game.potential_batch(counts),
    "average_latency": lambda game, counts: game.average_latency_batch(counts),
    "average_latency_after_join": lambda game, counts: game.average_latency_after_join_batch(counts),
    "social_cost": lambda game, counts: game.social_cost_batch(counts),
    "total_latency": lambda game, counts: game.total_latency_batch(counts),
    "makespan": lambda game, counts: game.makespan_batch(counts),
    "support_size": lambda game, counts: np.count_nonzero(counts, axis=1).astype(float),
}


class EnsembleCollector:
    """Batched metric traces along an ensemble run.

    Parameters
    ----------
    game:
        The game being simulated.
    metrics:
        Names of the batched metrics to record each round (any of
        ``potential``, ``average_latency``, ``average_latency_after_join``,
        ``social_cost``, ``total_latency``, ``makespan``, ``support_size``).
    every:
        Record every ``every``-th round (round 0 and the final round are
        always recorded by the engine).
    """

    def __init__(
        self,
        game: CongestionGame,
        *,
        metrics: Sequence[str] = ("potential", "average_latency", "support_size"),
        every: int = 1,
    ):
        if every < 1:
            raise ValueError("every must be at least 1")
        unknown = [name for name in metrics if name not in _BATCH_METRICS]
        if unknown:
            raise MetricError(
                f"unknown batched metric(s) {unknown}; "
                f"valid names: {sorted(_BATCH_METRICS)}"
            )
        self.game = game
        self.metrics = tuple(metrics)
        self.every = int(every)
        self._rounds: list[int] = []
        self._values: dict[str, list[np.ndarray]] = {name: [] for name in self.metrics}
        self._migrations: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def should_record(self, round_index: int) -> bool:
        """True if the collector wants a record for this round."""
        return round_index % self.every == 0

    def record(self, round_index: int, counts: np.ndarray,
               migrations: Optional[np.ndarray] = None) -> None:
        """Evaluate and store all configured metrics for the whole batch."""
        self._rounds.append(int(round_index))
        for name in self.metrics:
            self._values[name].append(
                np.asarray(_BATCH_METRICS[name](self.game, counts), dtype=float)
            )
        replicas = counts.shape[0]
        if migrations is None:
            migrations = np.zeros(replicas, dtype=np.int64)
        self._migrations.append(np.asarray(migrations, dtype=np.int64))

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> list[int]:
        """The recorded round indices."""
        return list(self._rounds)

    def trace(self, name: str) -> np.ndarray:
        """One metric as a ``(T, R)`` array over the recorded rounds."""
        if name == "migrations":
            return np.stack(self._migrations).astype(float)
        if name not in self._values:
            raise MetricError(
                f"metric {name!r} was not recorded; "
                f"recorded: {sorted(self._values)} + ['migrations']"
            )
        return np.stack(self._values[name])

    def traces(self) -> dict[str, np.ndarray]:
        """All recorded metrics as ``(T, R)`` arrays (plus ``migrations``)."""
        result = {name: self.trace(name) for name in self.metrics}
        result["migrations"] = self.trace("migrations")
        return result

    def __len__(self) -> int:
        return len(self._rounds)


@dataclass
class EnsembleResult:
    """Outcome of a batched ensemble run.

    Attributes
    ----------
    final_states:
        ``(R, S)`` batch of final states (replica ``r``'s state after its
        last executed round; retired replicas keep the state they stopped in).
    rounds:
        Per-replica number of executed rounds, shape ``(R,)``.
    stop_reasons:
        Why each replica ended.
    total_migrations:
        Per-replica total number of player moves, shape ``(R,)``.
    trace_rounds:
        Round indices of the recorded metric traces (empty without a
        collector).
    traces:
        Mapping from metric name to a ``(T, R)`` trace array.
    """

    final_states: BatchGameState
    rounds: np.ndarray
    stop_reasons: list[StopReason]
    total_migrations: np.ndarray
    trace_rounds: list[int] = field(default_factory=list)
    traces: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_replicas(self) -> int:
        """Number of replicas in the ensemble."""
        return self.final_states.num_replicas

    @property
    def converged(self) -> np.ndarray:
        """Per-replica convergence mask (True unless the budget ran out)."""
        return np.array([reason is not StopReason.MAX_ROUNDS
                         for reason in self.stop_reasons])

    def metric(self, name: str) -> np.ndarray:
        """One recorded metric trace as a ``(T, R)`` array."""
        if name not in self.traces:
            raise MetricError(
                f"metric {name!r} was not recorded for this ensemble; "
                f"recorded: {sorted(self.traces)}"
            )
        return self.traces[name]

    def replica(self, index: int) -> TrajectoryResult:
        """A single replica's outcome as a :class:`TrajectoryResult`.

        The thin compatibility bridge for callers written against the
        single-trajectory API; metric records are not reconstructed (the
        batched traces hold the same information in ``(T, R)`` form).
        """
        return TrajectoryResult(
            final_state=self.final_states.replica(index),
            rounds=int(self.rounds[index]),
            stop_reason=self.stop_reasons[index],
            records=[],
            total_migrations=int(self.total_migrations[index]),
        )


# ----------------------------------------------------------------------
# Batched stop conditions
# ----------------------------------------------------------------------

def batch_stop_from_scalar(condition: StopCondition) -> BatchStopCondition:
    """Adapt a scalar stop condition to the batched interface (row loop).

    Use only for conditions without a vectorised form — the built-in stops
    below evaluate the whole batch with broadcasted latency calls.
    """

    def batched(game: CongestionGame, counts: np.ndarray, round_index: int) -> np.ndarray:
        return np.array([bool(condition(game, row, round_index)) for row in counts])

    return batched


def batch_stop_at_approx_equilibrium(delta: float, epsilon: float,
                                     nu: Optional[float] = None) -> BatchStopCondition:
    """Batched Definition 1: per-replica (delta, eps, nu)-equilibrium test."""
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")

    def batched(game: CongestionGame, counts: np.ndarray, round_index: int) -> np.ndarray:
        bound = game.nu_bound if nu is None else nu
        latencies = game.strategy_latencies_batch(counts)  # (R, S)
        average = game.average_latency_batch(counts)  # (R,)
        average_plus = game.average_latency_after_join_batch(counts)  # (R,)
        expensive = latencies > (1.0 + epsilon) * average_plus[:, np.newaxis] + bound
        cheap = latencies < (1.0 - epsilon) * average[:, np.newaxis] - bound
        deviating = expensive | cheap
        unsatisfied = np.where(deviating, counts, 0).sum(axis=1) / game.num_players
        return unsatisfied <= delta

    # The native backend fuses this test into its round kernel instead of
    # calling back into Python (see repro.core.native.lower_stop_condition).
    batched.native_spec = ("approx_equilibrium", delta, epsilon, nu)
    return batched


def batch_stop_at_imitation_stable(nu: Optional[float] = None) -> BatchStopCondition:
    """Batched imitation stability: no player of a replica can gain more than
    ``nu`` by copying a currently used strategy."""

    def batched(game: CongestionGame, counts: np.ndarray, round_index: int) -> np.ndarray:
        bound = game.nu_bound if nu is None else nu
        latencies = game.strategy_latencies_batch(counts)
        post = game.post_migration_latency_matrix_batch(counts)
        gains = latencies[:, :, np.newaxis] - post  # (R, S, S)
        occupied = counts > 0
        mask = occupied[:, :, np.newaxis] & occupied[:, np.newaxis, :]
        diag = np.arange(counts.shape[1])
        mask[:, diag, diag] = False
        best_gain = np.where(mask, gains, -np.inf).max(axis=(1, 2))
        best_gain = np.maximum(np.where(np.isfinite(best_gain), best_gain, 0.0), 0.0)
        return best_gain <= bound

    batched.native_spec = ("imitation_stable", nu)
    return batched


def batch_stop_at_nash(tolerance: float = 1e-9) -> BatchStopCondition:
    """Batched Nash test: no occupied origin of a replica has a strictly
    improving destination (up to ``tolerance``)."""

    def batched(game: CongestionGame, counts: np.ndarray, round_index: int) -> np.ndarray:
        latencies = game.strategy_latencies_batch(counts)
        post = game.post_migration_latency_matrix_batch(counts)
        gains = latencies[:, :, np.newaxis] - post  # (R, S, S)
        diag = np.arange(counts.shape[1])
        gains[:, diag, diag] = -np.inf
        occupied = counts > 0
        best_gain = np.where(occupied[:, :, np.newaxis], gains, -np.inf).max(axis=(1, 2))
        return ~(best_gain > tolerance)

    batched.native_spec = ("nash", tolerance)
    return batched


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class EnsembleDynamics:
    """Concurrent dynamics of ``R`` independent replicas, advanced together.

    Parameters
    ----------
    game, protocol:
        The congestion game and the revision protocol (shared by all
        replicas — the replicas differ only in their states and randomness).
    rng:
        Seed or generator for **all** randomness of the ensemble.
    """

    def __init__(self, game: CongestionGame, protocol: Protocol, *, rng: RngLike = None):
        if not protocol.supports_game(game):
            raise ConvergenceError(
                f"protocol {protocol.describe()} does not support game {game.name}"
            )
        self.game = game
        self.protocol = protocol
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def run(
        self,
        initial_states: Optional[BatchStateLike] = None,
        *,
        replicas: Optional[int] = None,
        max_rounds: int = 10_000,
        stop_condition: Optional[BatchStopCondition] = None,
        stop_when_quiescent: bool = True,
        collector: Optional[EnsembleCollector] = None,
        observer: Optional[EnsembleObserver] = None,
        strict: bool = False,
        rng_streams: Optional[Sequence[np.random.Generator]] = None,
        backend: str = "batch",
        dtype: str = "float64",
        trace=None,
    ) -> EnsembleResult:
        """Advance all live replicas round by round.

        Parameters
        ----------
        initial_states:
            ``(R, S)`` batch of initial states.  ``None`` draws ``replicas``
            independent uniform-random initialisations from the engine's
            generator (the paper's random start).
        replicas:
            Number of replicas when ``initial_states`` is ``None``.
        max_rounds:
            Hard per-replica budget on the number of rounds.
        stop_condition:
            Optional batched predicate evaluated on the active replicas
            before each round (and before round 0, so an initially satisfied
            replica retires with ``rounds = 0``).  Use
            :func:`batch_stop_from_scalar` to lift a scalar condition.
        stop_when_quiescent:
            Retire replicas in which no occupied strategy has a positive
            switch probability (the dynamics can never move again there).
        collector:
            Optional :class:`EnsembleCollector` for batched metric traces.
        observer:
            Optional callback invoked after every executed round with
            ``(game, counts_rs, active_indices, round_index)`` — the hook the
            survival analysis uses to watch per-round congestions without
            slowing down runs that don't need it.
        strict:
            Raise :class:`ConvergenceError` if any replica exhausts the
            budget without meeting a stop condition.
        rng_streams:
            One generator per replica.  Each replica draws its migrations
            exclusively from its own stream (retiring a replica does not
            shift the draws its siblings see), so a replica's trajectory is
            bit-identical to a :class:`~repro.core.dynamics.ConcurrentDynamics`
            run on the same generator — the parity mode used by the ported
            experiments' ``engine="loop"``/``engine="batch"`` contract.
            Requires explicit ``initial_states``; the engine's own ``rng``
            is not consumed.  Without it the ensemble draws one stacked
            multinomial per round from its single generator (the fast
            default).
        backend:
            ``"batch"`` (this engine, the default) or ``"native"`` — the
            fused round kernel of :mod:`repro.core.native` (numba-JIT when
            available, vectorised numpy otherwise).  The native backend is
            deterministic from its seed but draws through a different
            decomposition of the multinomial, so it matches this engine in
            distribution and on all deterministic quantities, not
            bit-for-bit (docs/ENGINE.md).
        dtype:
            Accumulation precision of the native backend's buffers
            (``"float64"`` default, ``"float32"`` opt-in); the batch
            backend always computes in float64.
        trace:
            Optional :class:`repro.telemetry.RoundTracer`.  When given, the
            engine emits one JSONL event per round (migrations, potential /
            social-cost means and deltas, live-replica count, wall time)
            bracketed by ``run_started``/``run_finished``.  The tracer
            consumes no randomness, so a traced run's final states are
            bit-identical to the untraced run; the native backend reports
            coarsely at kernel-chunk boundaries instead of per round so the
            hot loop stays fused (docs/OBSERVABILITY.md).
        """
        from ..errors import EngineError

        if backend not in ("batch", "native"):
            raise EngineError(
                f"unknown ensemble backend {backend!r}; "
                f"valid backends: ['batch', 'native']"
            )
        if backend == "native":
            if rng_streams is not None:
                raise EngineError(
                    "the native backend draws from a single stream; "
                    "rng_streams is a loop/batch bit-parity feature — use "
                    "backend='batch' for pathwise parity runs"
                )
            from .native import run_native_ensemble  # lazy: ensemble ↔ native

            return run_native_ensemble(
                self.game,
                self.protocol,
                initial_states,
                replicas=replicas,
                max_rounds=max_rounds,
                stop_condition=stop_condition,
                stop_when_quiescent=stop_when_quiescent,
                collector=collector,
                observer=observer,
                strict=strict,
                rng=self.rng,
                dtype=dtype,
                trace=trace,
            )
        if dtype != "float64":
            raise EngineError(
                "dtype='float32' accumulation is a native-backend feature; "
                "pass backend='native' (the batch backend is float64-only)"
            )
        if initial_states is None:
            if rng_streams is not None:
                raise ValueError("rng_streams requires explicit initial_states")
            if replicas is None or replicas <= 0:
                raise ValueError("need replicas > 0 when no initial states are given")
            counts = self.game.uniform_random_batch_state(replicas, self.rng).to_array()
        else:
            counts = self.game.validate_batch_state(initial_states).copy()
            if replicas is not None and replicas != counts.shape[0]:
                raise ValueError(
                    f"initial_states has {counts.shape[0]} replicas, "
                    f"but replicas={replicas} was requested"
                )
        num_replicas = counts.shape[0]
        if rng_streams is not None and len(rng_streams) != num_replicas:
            raise ValueError(
                f"rng_streams has {len(rng_streams)} generators for "
                f"{num_replicas} replicas"
            )

        rounds = np.zeros(num_replicas, dtype=np.int64)
        total_migrations = np.zeros(num_replicas, dtype=np.int64)
        reasons: list[StopReason] = [StopReason.MAX_ROUNDS] * num_replicas
        active = np.ones(num_replicas, dtype=bool)

        if collector is not None:
            collector.record(0, counts)
        if trace is not None:
            trace.run_started(self.game, engine="batch",
                              replicas=num_replicas, max_rounds=max_rounds)

        last_recorded = 0
        for round_index in range(max_rounds):
            if not np.any(active):
                break
            indices = np.nonzero(active)[0]

            if stop_condition is not None:
                stopped = np.asarray(stop_condition(self.game, counts[indices], round_index))
                if np.any(stopped):
                    for replica in indices[stopped]:
                        reasons[replica] = StopReason.STOP_CONDITION
                    active[indices[stopped]] = False
                    indices = indices[~stopped]
                    if indices.size == 0:
                        continue

            matrices = self.protocol.switch_probabilities_batch(self.game, counts[indices])
            if stop_when_quiescent:
                quiet = quiescent_mask(matrices, counts[indices])
                if np.any(quiet):
                    for replica in indices[quiet]:
                        reasons[replica] = StopReason.QUIESCENT
                    active[indices[quiet]] = False
                    indices = indices[~quiet]
                    matrices = matrices[~quiet]
                    if indices.size == 0:
                        continue

            if rng_streams is None:
                migration = sample_migration_matrices(counts[indices], matrices, self.rng)
            else:
                migration = np.stack([
                    sample_migration_matrix(counts[replica], matrices[position],
                                            rng_streams[replica])
                    for position, replica in enumerate(indices)
                ])
            delta = migration.sum(axis=1) - migration.sum(axis=2)
            counts[indices] += delta
            rounds[indices] = round_index + 1
            moves = migration.sum(axis=(1, 2))
            total_migrations[indices] += moves

            if observer is not None:
                observer(self.game, counts, indices, round_index + 1)
            if trace is not None:
                trace.round_completed(self.game, counts, indices,
                                      round_index + 1, int(moves.sum()))
            if collector is not None and collector.should_record(round_index + 1):
                all_moves = np.zeros(num_replicas, dtype=np.int64)
                all_moves[indices] = moves
                collector.record(round_index + 1, counts, migrations=all_moves)
                last_recorded = round_index + 1
        else:
            # Budget exhausted with replicas still live: give the stop
            # condition one final look (mirrors the loop engine).
            indices = np.nonzero(active)[0]
            if indices.size and stop_condition is not None:
                stopped = np.asarray(stop_condition(self.game, counts[indices], max_rounds))
                for replica in indices[stopped]:
                    reasons[replica] = StopReason.STOP_CONDITION
                indices = indices[~stopped]
            if indices.size and strict:
                raise ConvergenceError(
                    f"{indices.size} of {num_replicas} replicas did not stop "
                    f"within {max_rounds} rounds"
                )

        max_executed = int(rounds.max()) if num_replicas else 0
        if collector is not None and last_recorded != max_executed:
            collector.record(max_executed, counts)
        if trace is not None:
            trace.run_finished(
                self.game, counts, None, rounds=max_executed,
                total_migrations=int(total_migrations.sum()),
                converged=all(reason is not StopReason.MAX_ROUNDS
                              for reason in reasons),
            )

        return EnsembleResult(
            final_states=BatchGameState(counts),
            rounds=rounds,
            stop_reasons=reasons,
            total_migrations=total_migrations,
            trace_rounds=collector.rounds if collector is not None else [],
            traces=collector.traces() if collector is not None else {},
        )

    # ------------------------------------------------------------------
    def run_single(
        self,
        initial_state=None,
        *,
        max_rounds: int = 10_000,
        stop_condition: Optional[StopCondition] = None,
        stop_when_quiescent: bool = True,
        strict: bool = False,
    ) -> TrajectoryResult:
        """Single-trajectory convenience wrapper: an ensemble of one.

        With the same seed this consumes the generator exactly like
        :class:`~repro.core.dynamics.ConcurrentDynamics` (the batched
        multinomial visits the same occupied origins in the same order), so
        the two engines are interchangeable for one replica.
        """
        if initial_state is None:
            batch: Optional[BatchStateLike] = None
        elif isinstance(initial_state, GameState):
            batch = initial_state.counts[np.newaxis, :]
        else:
            batch = np.asarray(initial_state)[np.newaxis, :]
        result = self.run(
            batch,
            replicas=1,
            max_rounds=max_rounds,
            stop_condition=(batch_stop_from_scalar(stop_condition)
                            if stop_condition is not None else None),
            stop_when_quiescent=stop_when_quiescent,
            strict=strict,
        )
        return result.replica(0)


def simulate_ensemble(
    game: CongestionGame,
    protocol: Protocol,
    *,
    replicas: int,
    rounds: int = 1_000,
    initial_states: Optional[BatchStateLike] = None,
    rng: RngLike = None,
    collector: Optional[EnsembleCollector] = None,
    stop_condition: Optional[BatchStopCondition] = None,
    backend: str = "batch",
    dtype: str = "float64",
    trace=None,
) -> EnsembleResult:
    """Run ``replicas`` replicas of ``protocol`` on ``game`` for at most
    ``rounds`` rounds each (the batched sibling of :func:`repro.core.run.simulate`)."""
    dynamics = EnsembleDynamics(game, protocol, rng=rng)
    return dynamics.run(
        initial_states,
        replicas=replicas,
        max_rounds=rounds,
        stop_condition=stop_condition,
        collector=collector,
        backend=backend,
        dtype=dtype,
        trace=trace,
    )
