"""The native round kernel: a fused, buffer-reusing ensemble engine.

The batched engine (:mod:`repro.core.ensemble`) is pure numpy: every round
materialises an ``(R, S, S)`` switch-probability stack plus half a dozen
same-shaped temporaries, and its floor is numpy's per-call dispatch
overhead.  This module executes the same dynamics as one fused pass per
round — switch-probability evaluation, migration draws, and the migration
apply happen in a single sweep over the occupied (replica, origin) rows,
and no ``(R, S, S)`` tensor ever exists:

* games are lowered once to flat arrays (:func:`lower_game`): CSR-style
  incidence index arrays plus per-resource latency coefficients/value
  tables (:meth:`~repro.games.base.CongestionGame.kernel_latency_tables`);
* protocols are lowered to :class:`~repro.core.protocols.KernelComponents`
  — all of the paper's protocols (imitation in every variant, exploration,
  and their mixtures) share one component form;
* the hot loop runs as a numba ``@njit`` kernel when numba is importable
  and as a vectorised numpy implementation otherwise (same dynamics, same
  results up to the random stream — both are selected automatically, or
  explicitly via ``use_numba=``);
* retired replicas are compacted out of the working arrays in place each
  round (stable order, original indices preserved through an ``orig``
  index map), so a finished replica costs nothing;
* ``dtype="float32"`` switches every latency/probability buffer to single
  precision — halving the kernel's memory traffic for large games — while
  counts stay exact ``int64``.

Reproducibility contract (docs/ENGINE.md): the native backend is exactly
reproducible from its seed, but it draws each origin's migrations through a
sequential conditional-binomial decomposition of the multinomial rather
than numpy's stacked ``multinomial``.  The two samplers have identical
distributions yet different bit streams, so native agrees with loop/batch
in distribution and on every *deterministic* quantity (switch
probabilities, stop decisions, latencies — ``allclose``), not
sample-path-wise.  Fused stop conditions reproduce the batched stop
semantics exactly: the stop test runs on the pre-round state, then
quiescence, then the migration draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import EngineError, NativeBackendError
from ..games.base import CongestionGame
from ..rng import RngLike, ensure_rng
from .dynamics import StopReason
from .protocols import KernelComponents, Protocol

try:  # numba is optional: without it the vectorised numpy fallback runs
    import numba as _numba
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised on numba-free installs
    _numba = None
    _njit = None
    NUMBA_AVAILABLE = False

__all__ = [
    "NUMBA_AVAILABLE",
    "numba_version",
    "KernelGame",
    "lower_game",
    "lower_protocol",
    "lower_stop_condition",
    "run_native_ensemble",
]

#: Rounds advanced per kernel invocation when nothing (collector cadence,
#: observer, generic stop condition) forces a shorter synchronisation.
_DEFAULT_CHUNK = 512

#: Stop-kind codes shared by both kernel implementations.
_STOP_NONE = 0
_STOP_APPROX_EQ = 1
_STOP_IMITATION_STABLE = 2
_STOP_NASH = 3

#: Reason codes written by the kernels (mapped to StopReason at the end).
_REASON_MAX_ROUNDS = 0
_REASON_STOP = 1
_REASON_QUIESCENT = 2

_REASONS = {
    _REASON_MAX_ROUNDS: StopReason.MAX_ROUNDS,
    _REASON_STOP: StopReason.STOP_CONDITION,
    _REASON_QUIESCENT: StopReason.QUIESCENT,
}


def numba_version() -> Optional[str]:
    """Installed numba version, or ``None`` without numba."""
    return _numba.__version__ if NUMBA_AVAILABLE else None


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class KernelGame:
    """A congestion game lowered to flat arrays for the fused kernel."""

    num_players: int
    num_strategies: int
    num_resources: int
    dtype: np.dtype
    # CSR incidence, both directions (see CongestionGame.kernel_incidence).
    strat_indptr: np.ndarray
    strat_indices: np.ndarray
    res_indptr: np.ndarray
    res_indices: np.ndarray
    # Latency lowering (see CongestionGame.kernel_latency_tables).
    lat_kind: np.ndarray
    poly_coeffs: np.ndarray
    lat_table: np.ndarray
    table_row: np.ndarray
    # Dense incidence in the working dtype (numpy-fallback matmuls).
    incidence: np.ndarray


def _resolve_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise EngineError(
            f"native backend supports dtype 'float64' or 'float32', "
            f"got {dtype!r}"
        )
    return resolved


def lower_game(game: CongestionGame, dtype="float64") -> KernelGame:
    """Lower ``game`` to the kernel representation (cheap; the underlying
    index/table arrays are cached on the game instance)."""
    resolved = _resolve_dtype(dtype)
    strat_indptr, strat_indices, res_indptr, res_indices = game.kernel_incidence()
    lat_kind, poly_coeffs, lat_table, table_row = game.kernel_latency_tables(resolved)
    return KernelGame(
        num_players=game.num_players,
        num_strategies=game.num_strategies,
        num_resources=game.num_resources,
        dtype=resolved,
        strat_indptr=strat_indptr,
        strat_indices=strat_indices,
        res_indptr=res_indptr,
        res_indices=res_indices,
        lat_kind=lat_kind,
        poly_coeffs=poly_coeffs,
        lat_table=lat_table,
        table_row=table_row,
        incidence=game.incidence.astype(resolved),
    )


def lower_protocol(protocol: Protocol, game: CongestionGame) -> KernelComponents:
    """Lower ``protocol`` or raise :class:`NativeBackendError` naming it."""
    components = protocol.kernel_components(game)
    if components is None:
        raise NativeBackendError(
            f"protocol {type(protocol).__name__} ({protocol.describe()}) has "
            f"no kernel lowering (kernel_components returned None); use "
            f"engine='batch' for bespoke protocols"
        )
    return components


def lower_stop_condition(stop_condition, game: CongestionGame
                         ) -> Optional[tuple[int, float, float, float]]:
    """Fused-stop parameters ``(kind, a, b, c)`` for a tagged batched stop
    condition, or ``None`` for a generic callable.

    The batched stop factories in :mod:`repro.core.ensemble` tag their
    closures with ``native_spec``; anything untagged is evaluated as
    ordinary Python between rounds (forcing per-round synchronisation).
    """
    spec = getattr(stop_condition, "native_spec", None)
    if spec is None:
        return None
    kind = spec[0]
    if kind == "approx_equilibrium":
        delta, epsilon, nu = spec[1:]
        bound = game.nu_bound if nu is None else float(nu)
        return (_STOP_APPROX_EQ, float(delta), float(epsilon), bound)
    if kind == "imitation_stable":
        (nu,) = spec[1:]
        bound = game.nu_bound if nu is None else float(nu)
        return (_STOP_IMITATION_STABLE, 0.0, 0.0, bound)
    if kind == "nash":
        (tolerance,) = spec[1:]
        return (_STOP_NASH, 0.0, 0.0, float(tolerance))
    raise NativeBackendError(f"unknown native stop spec {spec!r}")


# ----------------------------------------------------------------------
# Fused chunk kernel — loop form (numba-compiled when available)
# ----------------------------------------------------------------------

def _chunk_loops(counts, orig, num_active, round_start, num_rounds,
                 n_players, stop_quiescent,
                 s_indptr, s_indices, r_indptr, r_indices,
                 lat_kind, poly_coeffs, lat_table, table_row,
                 comp_w, comp_factor, comp_thresh, comp_kind, comp_virt,
                 stop_kind, stop_a, stop_b, stop_c,
                 rounds_out, moves_out, reason_out, final_counts, last_moves,
                 loads, lat_now, lat_plus, strat_lat, joined, ov, prob, delta):
    """Advance up to ``num_rounds`` rounds over the first ``num_active``
    rows of ``counts`` in one fused pass per (replica, round).

    Returns ``(new_num_active, rounds_entered)``.  Retired rows are
    compacted out in place (stable order); all ``*_out`` arrays are indexed
    by original replica index through ``orig``.  The scratch arrays
    (``loads`` .. ``delta``) are preallocated by the caller and shared
    across replicas, so a chunk allocates nothing.
    """
    S = counts.shape[1]
    m = lat_kind.shape[0]
    C = comp_w.shape[0]
    K = poly_coeffs.shape[1]
    A = num_active
    entered = 0
    for round_index in range(round_start, round_start + num_rounds):
        if A == 0:
            break
        entered += 1
        write = 0
        for i in range(A):
            oi = orig[i]
            # ---- resource loads -------------------------------------
            for e in range(m):
                loads[e] = 0
            for p in range(S):
                c = counts[i, p]
                if c > 0:
                    for idx in range(s_indptr[p], s_indptr[p + 1]):
                        loads[s_indices[idx]] += c
            # ---- resource latencies at x and x+1 --------------------
            for e in range(m):
                if lat_kind[e] == 0:
                    x = float(loads[e])
                    v0 = float(poly_coeffs[e, 0])
                    v1 = float(poly_coeffs[e, 0])
                    for k in range(1, K):
                        v0 = v0 * x + poly_coeffs[e, k]
                        v1 = v1 * (x + 1.0) + poly_coeffs[e, k]
                    lat_now[e] = v0
                    lat_plus[e] = v1
                else:
                    t = table_row[e]
                    lat_now[e] = lat_table[t, loads[e]]
                    lat_plus[e] = lat_table[t, loads[e] + 1]
            # ---- strategy latencies l_P(x) and l_P(x + 1_P) ---------
            for p in range(S):
                s0 = 0.0
                s1 = 0.0
                for idx in range(s_indptr[p], s_indptr[p + 1]):
                    e = s_indices[idx]
                    s0 += lat_now[e]
                    s1 += lat_plus[e]
                strat_lat[p] = s0
                joined[p] = s1
            # ---- fused stop condition (pre-round state) -------------
            stopped = False
            if stop_kind == 1:  # approx equilibrium (Definition 1)
                avg = 0.0
                avg_plus = 0.0
                for p in range(S):
                    cf = float(counts[i, p])
                    avg += cf * strat_lat[p]
                    avg_plus += cf * joined[p]
                avg /= n_players
                avg_plus /= n_players
                unsat = 0.0
                for p in range(S):
                    lp = strat_lat[p]
                    if (lp > (1.0 + stop_b) * avg_plus + stop_c
                            or lp < (1.0 - stop_b) * avg - stop_c):
                        unsat += float(counts[i, p])
                stopped = unsat / n_players <= stop_a
            elif stop_kind == 2 or stop_kind == 3:
                # Early-exit scan: the first pair gaining more than the
                # bound disproves stability, so non-final rounds are cheap.
                stopped = True
                for p in range(S):
                    if counts[i, p] <= 0:
                        continue
                    for q in range(S):
                        ov[q] = 0.0
                    for idx in range(s_indptr[p], s_indptr[p + 1]):
                        e = s_indices[idx]
                        mg = lat_plus[e] - lat_now[e]
                        for j in range(r_indptr[e], r_indptr[e + 1]):
                            ov[r_indices[j]] += mg
                    lp = strat_lat[p]
                    for q in range(S):
                        if q == p:
                            continue
                        if stop_kind == 2 and counts[i, q] <= 0:
                            continue
                        gain = lp - (joined[q] - ov[q])
                        if gain > stop_c:
                            stopped = False
                            break
                    if not stopped:
                        break
            if stopped:
                reason_out[oi] = 1
                for q in range(S):
                    final_counts[oi, q] = counts[i, q]
                continue
            # ---- probabilities + migration draws per occupied origin
            any_positive = False
            moved = 0
            for q in range(S):
                delta[q] = 0
            for p in range(S):
                c_p = counts[i, p]
                if c_p <= 0:
                    continue
                # overlap(P, Q) = sum_{e in P} marginal_e * [e in Q],
                # scattered over the users of each resource of P.
                for q in range(S):
                    ov[q] = 0.0
                for idx in range(s_indptr[p], s_indptr[p + 1]):
                    e = s_indices[idx]
                    mg = lat_plus[e] - lat_now[e]
                    for j in range(r_indptr[e], r_indptr[e + 1]):
                        ov[r_indices[j]] += mg
                lp = strat_lat[p]
                row_sum = 0.0
                for q in range(S):
                    if q == p:
                        prob[q] = 0.0
                        continue
                    gain = lp - (joined[q] - ov[q])
                    rel = gain / lp if lp > 0.0 else 0.0
                    pq = 0.0
                    for c in range(C):
                        if gain > comp_thresh[c]:
                            mu = comp_factor[c] * rel
                            if mu < 0.0:
                                mu = 0.0
                            elif mu > 1.0:
                                mu = 1.0
                            if comp_kind[c] == 0:
                                samp = ((float(counts[i, q]) + comp_virt[c])
                                        / (n_players + comp_virt[c] * S))
                            else:
                                samp = 1.0 / S
                            pq += comp_w[c] * mu * samp
                    prob[q] = pq
                    row_sum += pq
                if row_sum <= 0.0:
                    continue
                any_positive = True
                # Multinomial over destinations as a conditional-binomial
                # chain (identical distribution, different bit stream than
                # numpy's stacked multinomial — the native parity tier).
                remaining = c_p
                rem_p = 1.0
                for q in range(S):
                    pq = prob[q]
                    if pq <= 0.0:
                        continue
                    if remaining <= 0 or rem_p <= 0.0:
                        break
                    cond = pq / rem_p
                    if cond > 1.0:
                        cond = 1.0
                    k = np.random.binomial(remaining, cond)  # lint: disable=DET002 -- numba nopython RNG, seeded per chunk by _seed_loops
                    if k > 0:
                        delta[q] += k
                        delta[p] -= k
                        moved += k
                        remaining -= k
                    rem_p -= pq
            if not any_positive and stop_quiescent:
                reason_out[oi] = 2
                for q in range(S):
                    final_counts[oi, q] = counts[i, q]
                continue
            # ---- apply + stable in-place compaction -----------------
            for q in range(S):
                counts[write, q] = counts[i, q] + delta[q]
            orig[write] = oi
            rounds_out[oi] = round_index + 1
            moves_out[oi] += moved
            last_moves[oi] = moved
            write += 1
        A = write
    return A, entered


def _seed_loops(seed):
    """Seed the (numba-internal) RNG the loop kernel draws from.

    Inside an ``@njit`` function numba replaces ``np.random`` with its own
    thread-local generator — the module-level numpy stream is untouched,
    and the jitted kernels have no other RNG API available.  The engine
    seeds every chunk explicitly, so determinism holds; the lint
    suppressions record that this is the sanctioned exception.
    """
    np.random.seed(seed)  # lint: disable=DET002 -- numba-internal RNG, explicitly seeded per chunk


if NUMBA_AVAILABLE:  # compile lazily on first call, per dtype signature
    _chunk_loops_jit = _njit(cache=False)(_chunk_loops)
    _seed_loops_jit = _njit(cache=False)(_seed_loops)
else:  # pragma: no cover - numba-free installs use the numpy chunk only
    _chunk_loops_jit = None
    _seed_loops_jit = None


# ----------------------------------------------------------------------
# Fused chunk kernel — vectorised numpy form (the fallback)
# ----------------------------------------------------------------------

def _eval_latencies_numpy(loads_f, loads_i, kg: KernelGame, poly_cols,
                          table_cols, shift: float):
    """Latency matrix at ``loads + shift`` (shift 0 or 1), shape (A, m)."""
    out = np.empty(loads_f.shape, dtype=kg.dtype)
    if poly_cols.size:
        x = loads_f[:, poly_cols] + kg.dtype.type(shift)
        acc = np.broadcast_to(kg.poly_coeffs[poly_cols, 0],
                              x.shape).astype(kg.dtype)
        for k in range(1, kg.poly_coeffs.shape[1]):
            acc = acc * x + kg.poly_coeffs[poly_cols, k]
        out[:, poly_cols] = acc
    if table_cols.size:
        rows = kg.table_row[table_cols]
        out[:, table_cols] = kg.lat_table[rows[np.newaxis, :],
                                          loads_i[:, table_cols] + int(shift)]
    return out


def _chunk_numpy(counts, orig, num_active, round_start, num_rounds,
                 kg: KernelGame, kp: KernelComponents,
                 stop_kind, stop_a, stop_b, stop_c, stop_quiescent,
                 gen: np.random.Generator,
                 rounds_out, moves_out, reason_out, final_counts, last_moves):
    """Vectorised sibling of :func:`_chunk_loops`: same contract, same
    dynamics, one Python iteration per round instead of per element."""
    S = kg.num_strategies
    n = float(kg.num_players)
    dtype = kg.dtype
    poly_cols = np.nonzero(kg.lat_kind == 0)[0]
    table_cols = np.nonzero(kg.lat_kind == 1)[0]
    inc = kg.incidence  # (S, m) in the working dtype
    inc_t = inc.T
    A = num_active
    entered = 0
    for round_index in range(round_start, round_start + num_rounds):
        if A == 0:
            break
        entered += 1
        ca = counts[:A]
        loads_f = ca.astype(dtype) @ inc  # exact: integer-valued, < 2**24
        loads_i = (np.rint(loads_f).astype(np.int64) if table_cols.size
                   else loads_f)  # int loads only needed for table lookups
        lat_now = _eval_latencies_numpy(loads_f, loads_i, kg, poly_cols,
                                        table_cols, 0.0)
        lat_plus = _eval_latencies_numpy(loads_f, loads_i, kg, poly_cols,
                                         table_cols, 1.0)
        strat_lat = lat_now @ inc_t  # (A, S)
        joined = lat_plus @ inc_t
        marginal = lat_plus - lat_now

        occupied = ca > 0
        rows_a, rows_p = np.nonzero(occupied)
        overlap = (inc[rows_p] * marginal[rows_a]) @ inc_t  # (O, S)
        post = joined[rows_a] - overlap
        origin_lat = strat_lat[rows_a, rows_p]
        gains = origin_lat[:, np.newaxis] - post  # (O, S)

        # ---- fused stop condition (pre-round state) -----------------
        if stop_kind == _STOP_APPROX_EQ:
            caf = ca.astype(dtype)
            avg = (caf * strat_lat).sum(axis=1) / n
            avg_plus = (caf * joined).sum(axis=1) / n
            deviating = ((strat_lat > (1.0 + stop_b) * avg_plus[:, np.newaxis]
                          + stop_c)
                         | (strat_lat < (1.0 - stop_b) * avg[:, np.newaxis]
                            - stop_c))
            unsat = np.where(deviating, ca, 0).sum(axis=1) / n
            stopped = unsat <= stop_a
        elif stop_kind in (_STOP_IMITATION_STABLE, _STOP_NASH):
            violating = gains > stop_c
            dest = np.arange(S)[np.newaxis, :]
            violating &= dest != rows_p[:, np.newaxis]
            if stop_kind == _STOP_IMITATION_STABLE:
                violating &= occupied[rows_a]
            stopped = np.ones(A, dtype=bool)
            stopped[rows_a[violating.any(axis=1)]] = False
        else:
            stopped = np.zeros(A, dtype=bool)

        # ---- probabilities for rows of still-running replicas -------
        row_sel = np.nonzero(~stopped[rows_a])[0]
        ra = rows_a[row_sel]
        rp = rows_p[row_sel]
        g = gains[row_sel]
        ol = origin_lat[row_sel, np.newaxis]
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(ol > 0, g / ol, dtype.type(0.0))
        prob = np.zeros_like(g)
        for c in range(kp.num_components):
            mu = np.clip(kp.factors[c] * rel, 0.0, 1.0)
            mu[g <= kp.thresholds[c]] = 0.0
            if kp.sampling_kinds[c] == 0:
                virt = kp.sampling_virtual[c]
                samp = (ca[ra].astype(dtype) + dtype.type(virt)) / \
                    dtype.type(n + virt * S)
                prob += kp.weights[c] * mu * samp
            else:
                prob += (kp.weights[c] / S) * mu
        prob[np.arange(row_sel.size), rp] = 0.0
        row_sum = prob.sum(axis=1)
        has_move = row_sum > 0

        quiet = ~stopped
        quiet[ra[has_move]] = False  # running replica with a live row

        # ---- stacked migration draws --------------------------------
        delta = np.zeros((A, S), dtype=np.int64)
        moved = np.zeros(A, dtype=np.int64)
        mover_rows = np.nonzero(has_move)[0]
        if mover_rows.size:
            mra = ra[mover_rows]
            mrp = rp[mover_rows]
            # Draw probabilities in float64 regardless of the working dtype
            # (multinomial p-vectors must sum to 1 to float64 tolerance).
            pvals = np.empty((mover_rows.size, S + 1), dtype=np.float64)
            pvals[:, :S] = prob[mover_rows]
            pvals[:, S] = np.maximum(0.0, 1.0 - row_sum[mover_rows])
            np.clip(pvals, 0.0, None, out=pvals)
            pvals /= pvals.sum(axis=1, keepdims=True)
            draws = gen.multinomial(ca[mra, mrp], pvals)
            draws[np.arange(mover_rows.size), mrp] = 0  # P -> P stays
            departures = draws[:, :S].sum(axis=1)
            np.add.at(delta, mra, draws[:, :S])
            np.subtract.at(delta, (mra, mrp), departures)
            np.add.at(moved, mra, departures)

        # ---- apply, bookkeeping, retire + compact -------------------
        retire = stopped | (quiet if stop_quiescent else False)
        executed = ~retire
        ca += delta  # retired rows have all-zero delta rows
        oi = orig[:A]
        executors = oi[executed]
        rounds_out[executors] = round_index + 1
        moves_out[executors] += moved[executed]
        last_moves[executors] = moved[executed]
        if np.any(retire):
            retired = oi[retire]
            final_counts[retired] = ca[retire]
            reason_out[oi[stopped]] = _REASON_STOP
            if stop_quiescent:
                reason_out[oi[quiet]] = _REASON_QUIESCENT
            keep = np.nonzero(executed)[0]
            counts[:keep.size] = ca[keep]
            orig[:keep.size] = oi[keep]
            A = keep.size
    return A, entered


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------

def run_native_ensemble(
    game: CongestionGame,
    protocol: Protocol,
    initial_states=None,
    *,
    replicas: Optional[int] = None,
    max_rounds: int = 10_000,
    stop_condition=None,
    stop_when_quiescent: bool = True,
    collector=None,
    observer=None,
    strict: bool = False,
    rng: RngLike = None,
    dtype="float64",
    use_numba: Optional[bool] = None,
    trace=None,
):
    """Run the fused native engine; returns an
    :class:`~repro.core.ensemble.EnsembleResult` interchangeable with the
    batched engine's (original replica indexing everywhere, including
    traces and ``replica(i)`` round-trips, despite in-place compaction).

    Parameters mirror :meth:`EnsembleDynamics.run`; additionally ``dtype``
    selects the accumulation precision of the latency/probability buffers
    (``"float32"`` halves memory traffic at ~1e-5 relative accuracy) and
    ``use_numba`` forces the compiled (True) or vectorised-numpy (False)
    chunk implementation instead of auto-detection.

    ``trace`` (optional :class:`repro.telemetry.RoundTracer`) reports
    **coarsely, at kernel-chunk boundaries only** — per-round events would
    force ``sync = 1`` and deoptimize the fused hot loop, so the tracer
    samples the counters the kernel already maintains (``moves_out``,
    ``rounds_out``) outside the jitted region and never changes the
    synchronisation granularity.  Traced native runs therefore consume the
    identical random stream and produce identical results.
    """
    from .ensemble import EnsembleResult  # local import: ensemble ↔ native
    from ..games.state import BatchGameState

    kg = lower_game(game, dtype)
    kp = lower_protocol(protocol, game)
    if use_numba is None:
        use_numba = NUMBA_AVAILABLE
    if use_numba and not NUMBA_AVAILABLE:
        raise NativeBackendError(
            "use_numba=True but numba is not installed; install numba or "
            "pass use_numba=None/False for the numpy fallback"
        )
    if max_rounds <= 0:
        raise ValueError("max_rounds must be positive")
    gen = ensure_rng(rng)

    if initial_states is None:
        if replicas is None or replicas <= 0:
            raise ValueError("need replicas > 0 when no initial states are given")
        counts = game.uniform_random_batch_state(replicas, gen).to_array()
    else:
        counts = game.validate_batch_state(initial_states).copy()
        if replicas is not None and replicas != counts.shape[0]:
            raise ValueError(
                f"initial_states has {counts.shape[0]} replicas, "
                f"but replicas={replicas} was requested"
            )
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    num_replicas, S = counts.shape

    fused = (lower_stop_condition(stop_condition, game)
             if stop_condition is not None else (_STOP_NONE, 0.0, 0.0, 0.0))
    generic_stop = stop_condition if fused is None else None
    if fused is None:
        fused = (_STOP_NONE, 0.0, 0.0, 0.0)
    stop_kind, stop_a, stop_b, stop_c = fused

    # Synchronisation granularity: generic stops and observers need the
    # Python layer every round; a collector needs it at its cadence.
    if generic_stop is not None or observer is not None:
        sync = 1
    elif collector is not None:
        sync = collector.every
    else:
        sync = _DEFAULT_CHUNK

    orig = np.arange(num_replicas, dtype=np.int64)
    rounds_out = np.zeros(num_replicas, dtype=np.int64)
    moves_out = np.zeros(num_replicas, dtype=np.int64)
    reason_out = np.zeros(num_replicas, dtype=np.int64)  # MAX_ROUNDS
    last_moves = np.zeros(num_replicas, dtype=np.int64)
    final_counts = counts.copy()  # retired rows frozen here at retirement

    if use_numba:
        # The loop kernel draws from numba's internal RNG; seed it from the
        # driver's generator so the whole run derives from one seed.
        _seed_loops_jit(int(gen.integers(0, 2**32)))
        scratch = (
            np.zeros(kg.num_resources, dtype=np.int64),   # loads
            np.empty(kg.num_resources, dtype=kg.dtype),   # lat_now
            np.empty(kg.num_resources, dtype=kg.dtype),   # lat_plus
            np.empty(S, dtype=kg.dtype),                  # strat_lat
            np.empty(S, dtype=kg.dtype),                  # joined
            np.empty(S, dtype=np.float64),                # ov
            np.empty(S, dtype=np.float64),                # prob
            np.zeros(S, dtype=np.int64),                  # delta
        )

    def run_chunk(active, start, span):
        if use_numba:
            return _chunk_loops_jit(
                counts, orig, active, start, span,
                float(kg.num_players), stop_when_quiescent,
                kg.strat_indptr, kg.strat_indices,
                kg.res_indptr, kg.res_indices,
                kg.lat_kind, kg.poly_coeffs, kg.lat_table, kg.table_row,
                kp.weights, kp.factors, kp.thresholds,
                kp.sampling_kinds, kp.sampling_virtual,
                stop_kind, stop_a, stop_b, stop_c,
                rounds_out, moves_out, reason_out, final_counts, last_moves,
                *scratch,
            )
        return _chunk_numpy(
            counts, orig, active, start, span, kg, kp,
            stop_kind, stop_a, stop_b, stop_c, stop_when_quiescent, gen,
            rounds_out, moves_out, reason_out, final_counts, last_moves,
        )

    def snapshot() -> np.ndarray:
        final_counts[orig[:active]] = counts[:active]
        return final_counts

    active = num_replicas
    cursor = 0
    last_recorded = 0
    if collector is not None:
        collector.record(0, snapshot())
    if trace is not None:
        trace.run_started(game, engine="native", replicas=num_replicas,
                          max_rounds=max_rounds)

    while active > 0 and cursor < max_rounds:
        span = min(sync, max_rounds - cursor)
        if generic_stop is not None:
            mask = np.asarray(
                generic_stop(game, counts[:active], cursor), dtype=bool)
            if mask.any():
                retired = orig[:active][mask]
                final_counts[retired] = counts[:active][mask]
                reason_out[retired] = _REASON_STOP
                keep = np.nonzero(~mask)[0]
                counts[:keep.size] = counts[:active][keep]
                orig[:keep.size] = orig[:active][keep]
                active = keep.size
                if active == 0:
                    break
        moves_before = int(moves_out.sum()) if trace is not None else 0
        active, entered = run_chunk(active, cursor, span)
        if entered == 0:
            break
        cursor += entered
        if trace is not None:
            trace.chunk_completed(game, snapshot(), orig[:active], cursor,
                                  int(moves_out.sum()) - moves_before)
        if observer is not None:
            movers = np.nonzero(rounds_out == cursor)[0]
            if movers.size:
                observer(game, snapshot(), movers, cursor)
        if collector is not None and collector.should_record(cursor):
            migrations = np.where(rounds_out == cursor, last_moves, 0)
            collector.record(cursor, snapshot(), migrations=migrations)
            last_recorded = cursor

    snapshot()
    if active > 0 and stop_condition is not None:
        # Budget exhausted with live replicas: one final stop look
        # (mirrors the loop and batch engines).
        mask = np.asarray(
            stop_condition(game, counts[:active], max_rounds), dtype=bool)
        reason_out[orig[:active][mask]] = _REASON_STOP
        if (~mask).any() and strict:
            unstopped = int((~mask).sum())
            raise_strict(unstopped, num_replicas, max_rounds)
    elif active > 0 and strict:
        raise_strict(active, num_replicas, max_rounds)

    max_executed = int(rounds_out.max()) if num_replicas else 0
    if collector is not None and last_recorded != max_executed:
        collector.record(max_executed, final_counts)
    if trace is not None:
        trace.run_finished(
            game, final_counts, None, rounds=max_executed,
            total_migrations=int(moves_out.sum()),
            converged=bool((reason_out != _REASON_MAX_ROUNDS).all()),
        )

    return EnsembleResult(
        final_states=BatchGameState(final_counts),
        rounds=rounds_out,
        stop_reasons=[_REASONS[int(code)] for code in reason_out],
        total_migrations=moves_out,
        trace_rounds=collector.rounds if collector is not None else [],
        traces=collector.traces() if collector is not None else {},
    )


def raise_strict(unstopped: int, total: int, max_rounds: int):
    from ..errors import ConvergenceError

    raise ConvergenceError(
        f"{unstopped} of {total} replicas did not stop "
        f"within {max_rounds} rounds"
    )
