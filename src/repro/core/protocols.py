"""Revision-protocol interface.

A *protocol* describes how a single player revises its strategy in one round,
given only the information the paper allows (its own latency, the latency it
would experience on a sampled alternative, and coarse structural constants of
the game such as the elasticity bound).  The concurrent round dynamics
(:mod:`repro.core.dynamics`) only need one quantity from a protocol: the
matrix of *switch probabilities*

``R[P, Q]`` = probability that one specific player currently on strategy
``P`` ends the round on strategy ``Q != P``,

which already folds together the sampling step (who/what is sampled) and the
migration step (the coin flip with probability ``mu_PQ``).  Because players
are exchangeable and revise independently, the number of players moving from
``P`` to each ``Q`` is then multinomial with these probabilities.

The batched ensemble engine (:mod:`repro.core.ensemble`) asks the same
question for ``R`` replicas at once: :meth:`Protocol.switch_probabilities_batch`
maps an ``(R, S)`` counts matrix to an ``(R, S, S)`` stack of switch
matrices.  The base class provides a correct (row-by-row) fallback so every
protocol works with the ensemble engine out of the box; the paper's
protocols override it with fully vectorised implementations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ProtocolError
from ..games.base import CongestionGame
from ..games.state import BatchStateLike, StateLike

__all__ = ["KernelComponents", "Protocol", "SwitchProbabilities",
           "quiescent_mask"]


@dataclass(frozen=True)
class KernelComponents:
    """Flat parameter struct lowering a protocol for the native round kernel.

    Every protocol of the paper computes its switch probabilities as a
    weighted sum of components of one common shape:

    ``R[P, Q] = sum_c weights[c] * clip(factors[c] * relgain[P, Q], 0, 1)
                * 1[gain[P, Q] > thresholds[c]] * sampling_c[Q]``

    where ``relgain`` is the relative latency gain, the indicator applies
    the strict gain threshold, and the sampling distribution is either
    player-proportional (``sampling_kinds[c] = 0``:
    ``(x_Q + v_c) / (n + v_c * S)`` with ``v_c = sampling_virtual[c]``,
    covering plain/undamped/proportional imitation at ``v_c = 0`` and
    virtual-agent imitation at ``v_c > 0``) or uniform over strategies
    (``sampling_kinds[c] = 1``: ``1 / S``, the exploration protocol).
    Mixtures concatenate their components with scaled weights.  All arrays
    have one entry per component and plain numeric dtypes so nopython code
    can consume them directly.
    """

    weights: np.ndarray
    factors: np.ndarray
    thresholds: np.ndarray
    sampling_kinds: np.ndarray
    sampling_virtual: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", np.asarray(self.weights, dtype=float))
        object.__setattr__(self, "factors", np.asarray(self.factors, dtype=float))
        object.__setattr__(self, "thresholds",
                           np.asarray(self.thresholds, dtype=float))
        object.__setattr__(self, "sampling_kinds",
                           np.asarray(self.sampling_kinds, dtype=np.int64))
        object.__setattr__(self, "sampling_virtual",
                           np.asarray(self.sampling_virtual, dtype=float))
        sizes = {arr.size for arr in (self.weights, self.factors,
                                      self.thresholds, self.sampling_kinds,
                                      self.sampling_virtual)}
        if len(sizes) != 1 or 0 in sizes:
            raise ProtocolError("kernel components need matching, non-empty arrays")

    @property
    def num_components(self) -> int:
        return int(self.weights.size)


@dataclass(frozen=True)
class SwitchProbabilities:
    """Per-origin switch probabilities for one round.

    Attributes
    ----------
    matrix:
        ``(S, S)`` array; ``matrix[P, Q]`` is the probability that a player on
        ``P`` moves to ``Q`` this round.  The diagonal is zero, rows sum to at
        most 1 and the complement of the row sum is the probability of
        staying.
    gains:
        ``(S, S)`` array of anticipated latency gains
        ``l_P(x) - l_Q(x + 1_Q - 1_P)`` used to build the matrix (kept for
        diagnostics and the potential bookkeeping).
    """

    matrix: np.ndarray
    gains: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ProtocolError("switch probability matrix must be square")
        if np.any(matrix < -1e-12):
            raise ProtocolError("switch probabilities must be non-negative")
        if np.any(np.diagonal(matrix) > 1e-12):
            raise ProtocolError("the diagonal of the switch matrix must be zero")
        row_sums = matrix.sum(axis=1)
        if np.any(row_sums > 1.0 + 1e-9):
            raise ProtocolError("switch probabilities of an origin must sum to at most 1")
        object.__setattr__(self, "matrix", matrix)

    @property
    def stay_probabilities(self) -> np.ndarray:
        """Probability of staying on each origin strategy."""
        return np.clip(1.0 - self.matrix.sum(axis=1), 0.0, 1.0)

    def is_quiescent(self, counts: np.ndarray) -> bool:
        """True if no occupied strategy has any positive switch probability,
        i.e. the dynamics have stopped with probability 1."""
        occupied = np.asarray(counts) > 0
        if not np.any(occupied):
            return True
        return float(np.max(self.matrix[occupied])) <= 0.0


class Protocol(ABC):
    """Abstract revision protocol.

    Concrete protocols implement :meth:`switch_probabilities`; everything
    else (round sampling, trajectory bookkeeping) is protocol-agnostic.
    """

    #: Short name used in reports.
    name: str = "protocol"

    @abstractmethod
    def switch_probabilities(self, game: CongestionGame, state: StateLike) -> SwitchProbabilities:
        """Compute the per-origin switch probabilities in ``state``."""

    def switch_probabilities_batch(self, game: CongestionGame,
                                   batch: BatchStateLike) -> np.ndarray:
        """Switch matrices for a whole batch of states, shape ``(R, S, S)``.

        ``result[r]`` must equal ``switch_probabilities(game, batch[r]).matrix``
        for every replica ``r``.  The default implementation guarantees that
        by calling the scalar method row by row; protocols with vectorised
        formulas override it for speed (one broadcasted evaluation instead of
        ``R`` Python calls).
        """
        counts = game.validate_batch_state(batch)
        return np.stack([
            self.switch_probabilities(game, row).matrix for row in counts
        ])

    def expected_migration(self, game: CongestionGame, state: StateLike) -> np.ndarray:
        """Expected migration matrix ``E[Delta x_{PQ}] = x_P * R[P, Q]``."""
        counts = game.validate_state(state)
        probabilities = self.switch_probabilities(game, state)
        return counts[:, np.newaxis] * probabilities.matrix

    def supports_game(self, game: CongestionGame) -> bool:
        """Hook for protocols that only apply to particular game classes."""
        return True

    def kernel_components(self, game: CongestionGame) -> Optional[KernelComponents]:
        """Lowered parameter struct for the native round kernel, or ``None``.

        Protocols whose switch probabilities fit the
        :class:`KernelComponents` form return it here (with all
        game-dependent constants — damping denominators, thresholds —
        already resolved against ``game``); protocols with bespoke math
        return ``None`` and the native backend refuses them with an
        actionable error instead of silently computing something else.
        """
        return None

    def describe(self) -> str:
        """Human-readable one-line description for experiment tables."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def relative_gain_matrix(latencies: np.ndarray, post_migration: np.ndarray) -> np.ndarray:
    """Relative gains ``(l_P - l_Q(x + 1_Q - 1_P)) / l_P`` with a safe zero
    where the current latency vanishes."""
    gains = latencies[:, np.newaxis] - post_migration
    with np.errstate(divide="ignore", invalid="ignore"):
        relative = np.where(latencies[:, np.newaxis] > 0,
                            gains / latencies[:, np.newaxis], 0.0)
    return relative


def relative_gain_matrix_batch(latencies: np.ndarray, post_migration: np.ndarray) -> np.ndarray:
    """Batched :func:`relative_gain_matrix`: ``(R, S)`` latencies and
    ``(R, S, S)`` post-migration latencies give ``(R, S, S)`` relative gains."""
    origin = latencies[:, :, np.newaxis]
    gains = origin - post_migration
    with np.errstate(divide="ignore", invalid="ignore"):
        relative = np.where(origin > 0, gains / origin, 0.0)
    return relative


def zero_diagonal(matrices: np.ndarray) -> np.ndarray:
    """Zero the diagonal of every matrix in an ``(R, S, S)`` stack, in place."""
    diag = np.arange(matrices.shape[-1])
    matrices[..., diag, diag] = 0.0
    return matrices


def quiescent_mask(matrices: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-replica quiescence: True where no occupied strategy of replica
    ``r`` has a positive switch probability (the batched analogue of
    :meth:`SwitchProbabilities.is_quiescent`)."""
    occupied = np.asarray(counts) > 0  # (R, S)
    row_max = np.max(matrices, axis=2)  # (R, S): best switch prob per origin
    return ~np.any(occupied & (row_max > 0.0), axis=1)
