"""Revision-protocol interface.

A *protocol* describes how a single player revises its strategy in one round,
given only the information the paper allows (its own latency, the latency it
would experience on a sampled alternative, and coarse structural constants of
the game such as the elasticity bound).  The concurrent round dynamics
(:mod:`repro.core.dynamics`) only need one quantity from a protocol: the
matrix of *switch probabilities*

``R[P, Q]`` = probability that one specific player currently on strategy
``P`` ends the round on strategy ``Q != P``,

which already folds together the sampling step (who/what is sampled) and the
migration step (the coin flip with probability ``mu_PQ``).  Because players
are exchangeable and revise independently, the number of players moving from
``P`` to each ``Q`` is then multinomial with these probabilities.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ProtocolError
from ..games.base import CongestionGame
from ..games.state import StateLike

__all__ = ["Protocol", "SwitchProbabilities"]


@dataclass(frozen=True)
class SwitchProbabilities:
    """Per-origin switch probabilities for one round.

    Attributes
    ----------
    matrix:
        ``(S, S)`` array; ``matrix[P, Q]`` is the probability that a player on
        ``P`` moves to ``Q`` this round.  The diagonal is zero, rows sum to at
        most 1 and the complement of the row sum is the probability of
        staying.
    gains:
        ``(S, S)`` array of anticipated latency gains
        ``l_P(x) - l_Q(x + 1_Q - 1_P)`` used to build the matrix (kept for
        diagnostics and the potential bookkeeping).
    """

    matrix: np.ndarray
    gains: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ProtocolError("switch probability matrix must be square")
        if np.any(matrix < -1e-12):
            raise ProtocolError("switch probabilities must be non-negative")
        if np.any(np.diagonal(matrix) > 1e-12):
            raise ProtocolError("the diagonal of the switch matrix must be zero")
        row_sums = matrix.sum(axis=1)
        if np.any(row_sums > 1.0 + 1e-9):
            raise ProtocolError("switch probabilities of an origin must sum to at most 1")
        object.__setattr__(self, "matrix", matrix)

    @property
    def stay_probabilities(self) -> np.ndarray:
        """Probability of staying on each origin strategy."""
        return np.clip(1.0 - self.matrix.sum(axis=1), 0.0, 1.0)

    def is_quiescent(self, counts: np.ndarray) -> bool:
        """True if no occupied strategy has any positive switch probability,
        i.e. the dynamics have stopped with probability 1."""
        occupied = np.asarray(counts) > 0
        if not np.any(occupied):
            return True
        return float(np.max(self.matrix[occupied])) <= 0.0


class Protocol(ABC):
    """Abstract revision protocol.

    Concrete protocols implement :meth:`switch_probabilities`; everything
    else (round sampling, trajectory bookkeeping) is protocol-agnostic.
    """

    #: Short name used in reports.
    name: str = "protocol"

    @abstractmethod
    def switch_probabilities(self, game: CongestionGame, state: StateLike) -> SwitchProbabilities:
        """Compute the per-origin switch probabilities in ``state``."""

    def expected_migration(self, game: CongestionGame, state: StateLike) -> np.ndarray:
        """Expected migration matrix ``E[Delta x_{PQ}] = x_P * R[P, Q]``."""
        counts = game.validate_state(state)
        probabilities = self.switch_probabilities(game, state)
        return counts[:, np.newaxis] * probabilities.matrix

    def supports_game(self, game: CongestionGame) -> bool:
        """Hook for protocols that only apply to particular game classes."""
        return True

    def describe(self) -> str:
        """Human-readable one-line description for experiment tables."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def relative_gain_matrix(latencies: np.ndarray, post_migration: np.ndarray) -> np.ndarray:
    """Relative gains ``(l_P - l_Q(x + 1_Q - 1_P)) / l_P`` with a safe zero
    where the current latency vanishes."""
    gains = latencies[:, np.newaxis] - post_migration
    with np.errstate(divide="ignore", invalid="ignore"):
        relative = np.where(latencies[:, np.newaxis] > 0,
                            gains / latencies[:, np.newaxis], 0.0)
    return relative
