"""Per-round metric collection for dynamics trajectories.

Experiments care about different per-round quantities (the potential for the
martingale checks, the unsatisfied fraction for Definition 1, the social cost
for the Price of Imitation, ...).  The :class:`MetricsCollector` computes a
configurable bundle of them once per recorded round so that the round engine
itself stays measurement-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import MetricError
from ..games.base import CongestionGame
from ..games.state import StateLike
from .stability import max_imitation_gain, unsatisfied_fraction

__all__ = ["RoundRecord", "MetricsCollector"]


@dataclass(frozen=True)
class RoundRecord:
    """Snapshot of the dynamics after a given round.

    All quantities refer to the state *after* the round's migrations.
    """

    round_index: int
    potential: float
    average_latency: float
    average_latency_after_join: float
    social_cost: float
    makespan: float
    support_size: int
    unsatisfied_fraction: float
    max_imitation_gain: float
    migrations: int


class MetricsCollector:
    """Collects :class:`RoundRecord` snapshots along a trajectory.

    Parameters
    ----------
    game:
        The game being simulated.
    epsilon, nu:
        Parameters of the (delta, eps, nu)-equilibrium used for the
        ``unsatisfied_fraction`` column (``nu = None`` uses the game bound).
    every:
        Record every ``every``-th round (round 0 and the final round are
        always recorded by the engine).
    track_gain:
        The maximum imitation gain requires an ``S x S`` matrix per record;
        set to False to skip it on very large strategy spaces.
    """

    def __init__(
        self,
        game: CongestionGame,
        *,
        epsilon: float = 0.1,
        nu: Optional[float] = None,
        every: int = 1,
        track_gain: bool = True,
    ):
        if every < 1:
            raise ValueError("every must be at least 1")
        self.game = game
        self.epsilon = float(epsilon)
        self.nu = nu
        self.every = int(every)
        self.track_gain = bool(track_gain)
        self._records: list[RoundRecord] = []

    # ------------------------------------------------------------------
    def should_record(self, round_index: int) -> bool:
        """True if the collector wants a record for this round."""
        return round_index % self.every == 0

    def record(self, round_index: int, state: StateLike, migrations: int = 0) -> RoundRecord:
        """Compute and store a snapshot of ``state``."""
        counts = self.game.validate_state(state)
        record = RoundRecord(
            round_index=int(round_index),
            potential=float(self.game.potential(counts)),
            average_latency=float(self.game.average_latency(counts)),
            average_latency_after_join=float(self.game.average_latency_after_join(counts)),
            social_cost=float(self.game.social_cost(counts)),
            makespan=float(self.game.makespan(counts)),
            support_size=int(np.count_nonzero(counts)),
            unsatisfied_fraction=float(
                unsatisfied_fraction(self.game, counts, self.epsilon, self.nu)
            ),
            max_imitation_gain=(
                float(max_imitation_gain(self.game, counts)) if self.track_gain else float("nan")
            ),
            migrations=int(migrations),
        )
        self._records.append(record)
        return record

    # ------------------------------------------------------------------
    @property
    def records(self) -> list[RoundRecord]:
        """The collected snapshots, in round order."""
        return list(self._records)

    def column(self, name: str) -> np.ndarray:
        """Return one metric as an array over the recorded rounds.

        Unknown names raise :class:`~repro.errors.MetricError` listing the
        valid :class:`RoundRecord` fields.
        """
        valid = RoundRecord.__dataclass_fields__
        if name not in valid:
            raise MetricError(
                f"unknown metric {name!r}; valid metric names: {sorted(valid)}"
            )
        return np.array([getattr(record, name) for record in self._records], dtype=float)

    def potentials(self) -> np.ndarray:
        """Shorthand for the potential column."""
        return self.column("potential")

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
