"""High-level drivers and stopping conditions.

The functions here wrap :class:`~repro.core.dynamics.ConcurrentDynamics` for
the three runs that dominate the experiment suite:

* run until an **imitation-stable** state (Theorem 4),
* run until a **(delta, eps, nu)-equilibrium** (Theorem 7), recording the
  hitting time,
* run until a **Nash equilibrium** (Theorem 15, exploration/hybrid
  protocols).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..games.base import CongestionGame
from ..games.nash import is_nash
from ..games.state import GameState, StateLike
from ..rng import RngLike
from .dynamics import ConcurrentDynamics, StopCondition, TrajectoryResult
from .metrics import MetricsCollector
from .protocols import Protocol
from .stability import is_approx_equilibrium, is_imitation_stable

__all__ = [
    "stop_at_imitation_stable",
    "stop_at_approx_equilibrium",
    "stop_at_nash",
    "stop_after_rounds",
    "simulate",
    "run_until_imitation_stable",
    "run_until_approx_equilibrium",
    "run_until_nash",
]


# ----------------------------------------------------------------------
# Stop-condition factories
# ----------------------------------------------------------------------

def stop_at_imitation_stable(nu: Optional[float] = None) -> StopCondition:
    """Stop as soon as no player can gain more than ``nu`` by imitating."""

    def condition(game: CongestionGame, counts: np.ndarray, round_index: int) -> bool:
        return is_imitation_stable(game, counts, nu)

    return condition


def stop_at_approx_equilibrium(delta: float, epsilon: float,
                               nu: Optional[float] = None) -> StopCondition:
    """Stop at the first (delta, eps, nu)-equilibrium (Definition 1)."""

    def condition(game: CongestionGame, counts: np.ndarray, round_index: int) -> bool:
        return is_approx_equilibrium(game, counts, delta, epsilon, nu)

    return condition


def stop_at_nash(tolerance: float = 1e-9) -> StopCondition:
    """Stop at the first (tolerance-)Nash equilibrium."""

    def condition(game: CongestionGame, counts: np.ndarray, round_index: int) -> bool:
        return is_nash(game, counts, tolerance=tolerance)

    return condition


def stop_after_rounds(rounds: int) -> StopCondition:
    """Stop once ``rounds`` rounds have been executed (useful in mixtures of
    conditions when a fixed horizon should dominate)."""

    def condition(game: CongestionGame, counts: np.ndarray, round_index: int) -> bool:
        return round_index >= rounds

    return condition


# ----------------------------------------------------------------------
# Convenience drivers
# ----------------------------------------------------------------------

def simulate(
    game: CongestionGame,
    protocol: Protocol,
    *,
    initial_state: Optional[StateLike] = None,
    rounds: int = 1_000,
    rng: RngLike = None,
    collector: Optional[MetricsCollector] = None,
    record_states: bool = False,
    trace=None,
) -> TrajectoryResult:
    """Run ``protocol`` on ``game`` for a fixed number of rounds.

    The run still ends early if the protocol becomes quiescent (no move has
    positive probability).  ``initial_state`` defaults to the uniform random
    initialisation used throughout the paper.  ``trace`` is an optional
    :class:`repro.telemetry.RoundTracer` (see docs/OBSERVABILITY.md).
    """
    dynamics = ConcurrentDynamics(game, protocol, rng=rng)
    if initial_state is None:
        initial_state = game.uniform_random_state(dynamics.rng)
    return dynamics.run(
        initial_state,
        max_rounds=rounds,
        collector=collector,
        record_states=record_states,
        trace=trace,
    )


def run_until_imitation_stable(
    game: CongestionGame,
    protocol: Protocol,
    *,
    initial_state: Optional[StateLike] = None,
    max_rounds: int = 100_000,
    nu: Optional[float] = None,
    rng: RngLike = None,
    collector: Optional[MetricsCollector] = None,
) -> TrajectoryResult:
    """Run until an imitation-stable state (or the round budget is hit)."""
    dynamics = ConcurrentDynamics(game, protocol, rng=rng)
    if initial_state is None:
        initial_state = game.uniform_random_state(dynamics.rng)
    return dynamics.run(
        initial_state,
        max_rounds=max_rounds,
        stop_condition=stop_at_imitation_stable(nu),
        collector=collector,
    )


def run_until_approx_equilibrium(
    game: CongestionGame,
    protocol: Protocol,
    delta: float,
    epsilon: float,
    *,
    nu: Optional[float] = None,
    initial_state: Optional[StateLike] = None,
    max_rounds: int = 100_000,
    rng: RngLike = None,
    collector: Optional[MetricsCollector] = None,
) -> TrajectoryResult:
    """Run until the first (delta, eps, nu)-equilibrium.

    The number of executed rounds of the returned trajectory is the hitting
    time ``tau`` of Theorem 7.
    """
    dynamics = ConcurrentDynamics(game, protocol, rng=rng)
    if initial_state is None:
        initial_state = game.uniform_random_state(dynamics.rng)
    return dynamics.run(
        initial_state,
        max_rounds=max_rounds,
        stop_condition=stop_at_approx_equilibrium(delta, epsilon, nu),
        collector=collector,
    )


def run_until_nash(
    game: CongestionGame,
    protocol: Protocol,
    *,
    tolerance: float = 1e-9,
    initial_state: Optional[StateLike] = None,
    max_rounds: int = 1_000_000,
    rng: RngLike = None,
    collector: Optional[MetricsCollector] = None,
) -> TrajectoryResult:
    """Run until a Nash equilibrium (sensible for exploration/hybrid
    protocols; pure imitation generally stops earlier at an imitation-stable
    state and will then end with reason ``QUIESCENT``)."""
    dynamics = ConcurrentDynamics(game, protocol, rng=rng)
    if initial_state is None:
        initial_state = game.uniform_random_state(dynamics.rng)
    return dynamics.run(
        initial_state,
        max_rounds=max_rounds,
        stop_condition=stop_at_nash(tolerance),
        collector=collector,
    )
