"""Virtual-agent imitation (the second Section 6 alternative).

Section 6 of the paper sketches three ways to keep imitation dynamics from
losing strategies forever.  The second one adds a *virtual agent* to every
strategy: when a player samples "another player", every strategy is sampled
with probability proportional to its player count *plus one*, so no strategy
ever becomes invisible.  The price is a base load of one on every strategy's
resources, which slightly perturbs the latencies the analysis reasons about;
the paper notes the convergence-time analysis survives as long as the number
of virtual agents ``|P|`` is small compared to ``n``.

:class:`VirtualAgentImitationProtocol` implements this variant on top of the
ordinary game (the virtual agents are *not* added to the congestion — they
only change the sampling distribution, which is the part that restores
innovativeness; adding them to the congestion as well can be emulated by
shifting the latency functions).  With it, the dynamics can rediscover unused
strategies and — combined with a zero ``nu`` threshold — converge to Nash
equilibria in the long run, which :mod:`repro.experiments.exp_virtual_agents`
verifies experimentally against the plain protocol and the exploration-based
hybrid.
"""

from __future__ import annotations

import numpy as np

from ..games.base import CongestionGame
from ..games.state import StateLike
from .imitation import DEFAULT_LAMBDA, ImitationProtocol
from .protocols import SwitchProbabilities

__all__ = ["VirtualAgentImitationProtocol"]


class VirtualAgentImitationProtocol(ImitationProtocol):
    """Imitation with one virtual agent per strategy in the sampling step.

    Parameters
    ----------
    lambda_, use_nu_threshold, nu_override, elasticity_override:
        As for :class:`~repro.core.imitation.ImitationProtocol`.
    virtual_agents_per_strategy:
        Number of virtual agents placed on every strategy (default 1).  The
        sampling probability of strategy ``Q`` becomes
        ``(x_Q + v) / (n + v * |P|)``.
    """

    name = "imitation-virtual-agents"

    def __init__(
        self,
        lambda_: float = DEFAULT_LAMBDA,
        *,
        use_nu_threshold: bool = False,
        nu_override: float | None = None,
        elasticity_override: float | None = None,
        virtual_agents_per_strategy: int = 1,
    ):
        super().__init__(
            lambda_,
            use_nu_threshold=use_nu_threshold,
            nu_override=nu_override,
            elasticity_override=elasticity_override,
        )
        if virtual_agents_per_strategy < 1:
            raise ValueError("need at least one virtual agent per strategy")
        self.virtual_agents_per_strategy = int(virtual_agents_per_strategy)

    def sampling_distribution(self, game: CongestionGame, counts: np.ndarray) -> np.ndarray:
        """Probability of sampling each strategy (virtual agents included)."""
        virtual = float(self.virtual_agents_per_strategy)
        weights = counts.astype(float) + virtual
        return weights / weights.sum()

    def sampling_distribution_batch(self, game: CongestionGame,
                                    counts: np.ndarray) -> np.ndarray:
        """Per-replica sampling distribution with the virtual agents included
        (keeps the inherited batched switch computation correct)."""
        virtual = float(self.virtual_agents_per_strategy)
        weights = counts.astype(float) + virtual
        return weights / weights.sum(axis=1, keepdims=True)

    def switch_probabilities(self, game: CongestionGame, state: StateLike
                             ) -> SwitchProbabilities:
        counts = game.validate_state(state)
        latencies = game.strategy_latencies(counts)
        post = game.post_migration_latency_matrix(counts)
        gains = latencies[:, np.newaxis] - post
        mu = self.migration_probabilities(game, counts)
        sampling = self.sampling_distribution(game, counts)
        matrix = mu * sampling[np.newaxis, :]
        np.fill_diagonal(matrix, 0.0)
        return SwitchProbabilities(matrix=matrix, gains=gains)

    def describe(self) -> str:
        return (f"imitation-virtual-agents(lambda={self.lambda_:g}, "
                f"v={self.virtual_agents_per_strategy})")
