"""Mixtures of revision protocols.

Section 6 of the paper suggests combining the IMITATION PROTOCOL with the
EXPLORATION PROTOCOL: with probability one half a player imitates, otherwise
it explores.  The combination inherits the fast approximate convergence of
imitation (up to a constant factor) while the exploration component
guarantees convergence to a Nash equilibrium in the long run because no
strategy can be permanently lost.

The mixture is expressed at the level of switch probabilities: if in every
round a player follows protocol ``k`` with probability ``w_k`` (independent
of the state and of the other players), the resulting switch-probability
matrix is simply the ``w``-weighted average of the component matrices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ProtocolError
from ..games.base import CongestionGame
from ..games.state import BatchStateLike, StateLike
from .exploration import ExplorationProtocol
from .imitation import DEFAULT_LAMBDA, ImitationProtocol
from .protocols import KernelComponents, Protocol, SwitchProbabilities

__all__ = ["MixtureProtocol", "make_hybrid_protocol"]


class MixtureProtocol(Protocol):
    """A convex combination of revision protocols.

    Parameters
    ----------
    components:
        The protocols being mixed.
    weights:
        Probability with which a player follows each component in a round;
        must be non-negative and sum to 1.
    """

    name = "mixture"

    def __init__(self, components: Sequence[Protocol], weights: Sequence[float]):
        if len(components) != len(weights) or not components:
            raise ProtocolError("need matching, non-empty components and weights")
        weight_array = np.asarray(list(weights), dtype=float)
        if not np.all(np.isfinite(weight_array)):
            raise ProtocolError(f"mixture weights must be finite, got {list(weights)}")
        if np.any(weight_array < 0):
            raise ProtocolError(f"mixture weights must be non-negative, got {list(weights)}")
        total = float(weight_array.sum())
        if abs(total - 1.0) > 1e-9:
            raise ProtocolError(f"mixture weights must sum to 1, got sum {total!r}")
        self.components = list(components)
        self.weights = weight_array

    def switch_probabilities(self, game: CongestionGame, state: StateLike
                             ) -> SwitchProbabilities:
        counts = game.validate_state(state)
        matrix = np.zeros((game.num_strategies, game.num_strategies))
        gains = None
        for weight, component in zip(self.weights, self.components):
            if weight == 0.0:
                continue
            probabilities = component.switch_probabilities(game, counts)
            matrix += weight * probabilities.matrix
            if gains is None:
                gains = probabilities.gains
        assert gains is not None
        return SwitchProbabilities(matrix=matrix, gains=gains)

    def switch_probabilities_batch(self, game: CongestionGame,
                                   batch: BatchStateLike) -> np.ndarray:
        """The mixture of batched switch matrices is the weighted sum of the
        components' batched matrices (same argument as the scalar case)."""
        counts = game.validate_batch_state(batch)
        matrices = np.zeros(
            (counts.shape[0], game.num_strategies, game.num_strategies)
        )
        for weight, component in zip(self.weights, self.components):
            if weight == 0.0:
                continue
            matrices += weight * component.switch_probabilities_batch(game, counts)
        return matrices

    def kernel_components(self, game: CongestionGame):
        """Concatenation of the components' lowered structs with the mixture
        weights folded in; ``None`` if any (positive-weight) component has
        no kernel form — a mixture must lower completely or not at all."""
        parts = []
        for weight, component in zip(self.weights, self.components):
            if weight == 0.0:
                continue
            lowered = component.kernel_components(game)
            if lowered is None:
                return None
            parts.append((weight, lowered))
        return KernelComponents(
            weights=np.concatenate([w * k.weights for w, k in parts]),
            factors=np.concatenate([k.factors for _, k in parts]),
            thresholds=np.concatenate([k.thresholds for _, k in parts]),
            sampling_kinds=np.concatenate([k.sampling_kinds for _, k in parts]),
            sampling_virtual=np.concatenate([k.sampling_virtual for _, k in parts]),
        )

    def describe(self) -> str:
        parts = ", ".join(
            f"{weight:g}*{component.describe()}"
            for weight, component in zip(self.weights, self.components)
        )
        return f"mixture({parts})"


def make_hybrid_protocol(
    lambda_: float = DEFAULT_LAMBDA,
    *,
    imitation_weight: float = 0.5,
    use_nu_threshold: bool = True,
) -> MixtureProtocol:
    """The Section 6 half-and-half combination of imitation and exploration."""
    if not 0.0 <= imitation_weight <= 1.0:
        raise ProtocolError("imitation_weight must lie in [0, 1]")
    imitation = ImitationProtocol(lambda_, use_nu_threshold=use_nu_threshold)
    exploration = ExplorationProtocol(lambda_)
    return MixtureProtocol(
        [imitation, exploration],
        [imitation_weight, 1.0 - imitation_weight],
    )
