"""The EXPLORATION PROTOCOL (Protocol 2 of the paper, Section 6).

Imitation is not innovative: a strategy that loses its last user can never be
rediscovered.  The exploration protocol fixes this by sampling a *strategy*
uniformly at random instead of a *player*:

1. sample ``Q`` uniformly from the strategy set ``P`` (probability
   ``1 / |P|`` each),
2. if ``l_P(x) > l_Q(x + 1_Q - 1_P)`` migrate with probability

   ``mu_PQ = min{1, lambda * |P| * l_min / (beta * n)
                    * (l_P - l_Q(x + 1_Q - 1_P)) / l_P}``,

where ``beta`` is an upper bound on the maximum slope of the strategy
latencies and ``l_min = min_e l_e(1)``.  Because a sampled strategy may be
empty, the elasticity damping of the imitation protocol no longer controls
the expected inflow and the much stronger ``|P| l_min / (beta n)`` damping is
needed (Theorem 15: convergence to an exact Nash equilibrium, at the price of
a much larger convergence time).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ProtocolError
from ..games.base import CongestionGame
from ..games.state import BatchStateLike, StateLike
from .imitation import DEFAULT_LAMBDA
from .protocols import (
    KernelComponents,
    Protocol,
    SwitchProbabilities,
    relative_gain_matrix,
    relative_gain_matrix_batch,
    zero_diagonal,
)

__all__ = ["ExplorationProtocol"]


class ExplorationProtocol(Protocol):
    """Protocol 2 of the paper.

    Parameters
    ----------
    lambda_:
        Migration-probability constant ``lambda`` in ``(0, 1]``.
    min_gain:
        Minimum anticipated gain required to migrate.  The paper's protocol
        uses a strict improvement (``> 0``); a small positive value can be
        supplied to study epsilon-greedy exploration.
    beta_override, lmin_override:
        Explicit values for ``beta`` (maximum strategy slope) and ``l_min``
        replacing the game's own bounds.
    """

    name = "exploration"

    def __init__(
        self,
        lambda_: float = DEFAULT_LAMBDA,
        *,
        min_gain: float = 0.0,
        beta_override: Optional[float] = None,
        lmin_override: Optional[float] = None,
    ):
        if not 0.0 < lambda_ <= 1.0:
            raise ProtocolError("lambda must lie in (0, 1]")
        if min_gain < 0:
            raise ProtocolError("min_gain must be non-negative")
        if beta_override is not None and beta_override <= 0:
            raise ProtocolError("beta_override must be positive")
        if lmin_override is not None and lmin_override <= 0:
            raise ProtocolError("lmin_override must be positive")
        self.lambda_ = float(lambda_)
        self.min_gain = float(min_gain)
        self.beta_override = None if beta_override is None else float(beta_override)
        self.lmin_override = None if lmin_override is None else float(lmin_override)

    # ------------------------------------------------------------------
    def damping_factor(self, game: CongestionGame) -> float:
        """The factor ``lambda * |P| * l_min / (beta * n)`` for ``game``."""
        beta = self.beta_override if self.beta_override is not None else game.max_slope
        lmin = self.lmin_override if self.lmin_override is not None else game.min_resource_latency
        if beta <= 0:
            # A game where no strategy ever gets slower (all-constant
            # latencies): any migration probability is safe, use lambda.
            return self.lambda_
        return self.lambda_ * game.num_strategies * lmin / (beta * game.num_players)

    def migration_probabilities(self, game: CongestionGame, state: StateLike) -> np.ndarray:
        """The matrix ``mu_PQ`` (conditional on sampling strategy ``Q``)."""
        counts = game.validate_state(state)
        latencies = game.strategy_latencies(counts)
        post = game.post_migration_latency_matrix(counts)
        gains = latencies[:, np.newaxis] - post
        relative = relative_gain_matrix(latencies, post)
        eligible = gains > self.min_gain
        mu = np.where(eligible, self.damping_factor(game) * relative, 0.0)
        np.fill_diagonal(mu, 0.0)
        return np.clip(mu, 0.0, 1.0)

    def switch_probabilities(self, game: CongestionGame, state: StateLike
                             ) -> SwitchProbabilities:
        counts = game.validate_state(state)
        latencies = game.strategy_latencies(counts)
        post = game.post_migration_latency_matrix(counts)
        gains = latencies[:, np.newaxis] - post
        mu = self.migration_probabilities(game, counts)
        matrix = mu / game.num_strategies  # uniform strategy sampling
        np.fill_diagonal(matrix, 0.0)
        return SwitchProbabilities(matrix=matrix, gains=gains)

    # ------------------------------------------------------------------
    # Batched evaluation (ensemble engine)
    # ------------------------------------------------------------------
    def migration_probabilities_batch(self, game: CongestionGame,
                                      batch: BatchStateLike) -> np.ndarray:
        """Batched ``mu_PQ`` matrices, shape ``(R, S, S)``."""
        counts = game.validate_batch_state(batch)
        latencies = game.strategy_latencies_batch(counts)
        post = game.post_migration_latency_matrix_batch(counts)
        gains = latencies[:, :, np.newaxis] - post
        relative = relative_gain_matrix_batch(latencies, post)
        mu = np.where(gains > self.min_gain, self.damping_factor(game) * relative, 0.0)
        zero_diagonal(mu)
        return np.clip(mu, 0.0, 1.0)

    def switch_probabilities_batch(self, game: CongestionGame,
                                   batch: BatchStateLike) -> np.ndarray:
        counts = game.validate_batch_state(batch)
        matrices = self.migration_probabilities_batch(game, counts) / game.num_strategies
        return zero_diagonal(matrices)

    def kernel_components(self, game: CongestionGame) -> KernelComponents:
        """One uniform-strategy-sampling component with the exploration
        damping factor resolved against ``game``."""
        return KernelComponents(
            weights=np.array([1.0]),
            factors=np.array([self.damping_factor(game)]),
            thresholds=np.array([self.min_gain]),
            sampling_kinds=np.array([1], dtype=np.int64),
            sampling_virtual=np.array([0.0]),
        )

    def describe(self) -> str:
        return f"exploration(lambda={self.lambda_:g})"
