"""The concurrent round engine.

One round of the concurrent dynamics works as follows (paper, Section 2.3):
every player simultaneously and independently applies the revision protocol,
which yields for a player on strategy ``P`` a probability ``R[P, Q]`` of
ending the round on strategy ``Q``.  Because players are exchangeable and
revise independently, the vector of players leaving ``P`` towards the
different destinations is exactly multinomially distributed with these
probabilities (plus the stay probability) — so the engine draws one
multinomial per occupied origin strategy instead of iterating over players.
This is an *exact* finite-population simulation of the protocol, not a
mean-field approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

import numpy as np

from ..errors import ConvergenceError, MetricError
from ..games.base import CongestionGame
from ..games.state import GameState, StateLike
from ..rng import RngLike, ensure_rng
from .metrics import MetricsCollector, RoundRecord
from .protocols import Protocol

#: A stopping condition receives ``(game, counts, round_index)`` and returns
#: True when the dynamics should stop *before* executing that round.
StopCondition = Callable[[CongestionGame, np.ndarray, int], bool]

__all__ = [
    "StopReason",
    "StepOutcome",
    "TrajectoryResult",
    "sample_migration_matrix",
    "sample_migration_matrices",
    "step",
    "ConcurrentDynamics",
]


class StopReason(str, Enum):
    """Why a dynamics run ended."""

    STOP_CONDITION = "stop-condition"
    QUIESCENT = "quiescent"
    MAX_ROUNDS = "max-rounds"


@dataclass(frozen=True)
class StepOutcome:
    """Result of a single concurrent round."""

    state: GameState
    migration_matrix: np.ndarray
    migrations: int


@dataclass
class TrajectoryResult:
    """Outcome of a full dynamics run.

    Attributes
    ----------
    final_state:
        State after the last executed round.
    rounds:
        Number of rounds executed (0 if the initial state already satisfied
        the stop condition).
    stop_reason:
        Why the run ended.
    records:
        Metric snapshots (at least the initial and final states when a
        collector was attached).
    total_migrations:
        Total number of player moves over the whole run.
    states:
        Full state history when requested (round 0 first).
    """

    final_state: GameState
    rounds: int
    stop_reason: StopReason
    records: list[RoundRecord] = field(default_factory=list)
    total_migrations: int = 0
    states: Optional[list[GameState]] = None

    def metric(self, name: str) -> np.ndarray:
        """One recorded metric as an array over recorded rounds.

        Raises :class:`~repro.errors.MetricError` (listing the valid names)
        when ``name`` is not a :class:`~repro.core.metrics.RoundRecord`
        field.
        """
        from .metrics import RoundRecord  # local import, avoids cycle

        valid = RoundRecord.__dataclass_fields__
        if name not in valid:
            raise MetricError(
                f"unknown metric {name!r}; valid metric names: {sorted(valid)}"
            )
        return np.array([getattr(record, name) for record in self.records], dtype=float)

    @property
    def converged(self) -> bool:
        """True unless the run ended by exhausting its round budget."""
        return self.stop_reason is not StopReason.MAX_ROUNDS


def sample_migration_matrices(
    counts: np.ndarray,
    switch_matrices: np.ndarray,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw the random migration matrices of one round for a batch of states.

    ``counts`` has shape ``(R, S)`` and ``switch_matrices`` shape
    ``(R, S, S)``; the result ``M`` has shape ``(R, S, S)`` with
    ``M[r, P, Q]`` the number of players of replica ``r`` moving from ``P``
    to ``Q``.  For every occupied (replica, origin) row with positive leave
    probability the row ``(switch_matrices[r, P, :], stay)`` defines a
    multinomial over destinations; all such rows are drawn through **one**
    stacked :meth:`numpy.random.Generator.multinomial` call.  NumPy fills the
    stacked draw row by row (replica-major, origin-minor) from the same bit
    stream per-row calls would consume, so the draws are bit-for-bit
    identical to a per-origin loop for any fixed generator state — the
    invariant behind the loop/ensemble ``R = 1`` equivalence.
    """
    gen = ensure_rng(rng)
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 2:
        raise ValueError("batched sampling expects an (R, S) counts matrix")
    replicas, num_strategies = counts.shape
    migration = np.zeros((replicas, num_strategies, num_strategies), dtype=np.int64)

    leave = switch_matrices.sum(axis=2)  # (R, S) total leave probability
    rows_r, rows_p = np.nonzero((counts > 0) & (leave > 0.0))
    if rows_r.size == 0:
        return migration

    probabilities = np.empty((rows_r.size, num_strategies + 1))
    probabilities[:, :num_strategies] = switch_matrices[rows_r, rows_p]
    probabilities[:, num_strategies] = np.maximum(0.0, 1.0 - leave[rows_r, rows_p])
    # Guard against tiny negative values / rounding drift.
    np.clip(probabilities, 0.0, None, out=probabilities)
    probabilities /= probabilities.sum(axis=1, keepdims=True)

    draws = gen.multinomial(counts[rows_r, rows_p], probabilities)
    draws[np.arange(rows_r.size), rows_p] = 0  # a player "moving" P -> P stays
    migration[rows_r, rows_p, :] = draws[:, :num_strategies]
    return migration


def sample_migration_matrix(
    counts: np.ndarray,
    switch_matrix: np.ndarray,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw the random migration matrix for one round (single state).

    The single-state view of :func:`sample_migration_matrices` — one shared
    implementation keeps the two engines' random streams identical by
    construction.
    """
    counts = np.asarray(counts, dtype=np.int64)
    return sample_migration_matrices(
        counts[np.newaxis, :], np.asarray(switch_matrix)[np.newaxis, :, :], rng,
    )[0]


def step(
    game: CongestionGame,
    protocol: Protocol,
    state: StateLike,
    rng: RngLike = None,
) -> StepOutcome:
    """Execute one concurrent round of ``protocol`` on ``game``."""
    counts = game.validate_state(state)
    probabilities = protocol.switch_probabilities(game, counts)
    migration = sample_migration_matrix(counts, probabilities.matrix, rng)
    delta = migration.sum(axis=0) - migration.sum(axis=1)
    new_counts = counts + delta
    return StepOutcome(
        state=GameState(new_counts),
        migration_matrix=migration,
        migrations=int(migration.sum()),
    )


class ConcurrentDynamics:
    """Round-based concurrent dynamics of a revision protocol on a game.

    Parameters
    ----------
    game, protocol:
        The congestion game and the revision protocol every player applies.
    rng:
        Seed or generator for all randomness of the run.
    """

    def __init__(self, game: CongestionGame, protocol: Protocol, *, rng: RngLike = None):
        if not protocol.supports_game(game):
            raise ConvergenceError(
                f"protocol {protocol.describe()} does not support game {game.name}"
            )
        self.game = game
        self.protocol = protocol
        self.rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def run(
        self,
        initial_state: StateLike,
        *,
        max_rounds: int = 10_000,
        stop_condition: Optional[StopCondition] = None,
        stop_when_quiescent: bool = True,
        collector: Optional[MetricsCollector] = None,
        record_states: bool = False,
        strict: bool = False,
        trace=None,
    ) -> TrajectoryResult:
        """Run the dynamics from ``initial_state``.

        Parameters
        ----------
        max_rounds:
            Hard budget on the number of rounds.
        stop_condition:
            Optional predicate ``(game, counts, round) -> bool`` evaluated
            before each round (and before round 0, so a satisfying initial
            state stops immediately with ``rounds = 0``).
        stop_when_quiescent:
            Stop when no occupied strategy has a positive switch probability
            (the protocol can never move again — an imitation-stable state
            for the IMITATION PROTOCOL).
        collector:
            Optional :class:`MetricsCollector`; the initial and final states
            are always recorded, intermediate rounds according to the
            collector's ``every`` setting.
        record_states:
            Keep the full state history (memory-heavy for long runs).
        strict:
            Raise :class:`ConvergenceError` when the round budget runs out
            before the stop condition is met.
        trace:
            Optional :class:`repro.telemetry.RoundTracer` emitting one JSONL
            event per round.  Consumes no randomness — traced runs are
            bit-identical to untraced ones (docs/OBSERVABILITY.md).
        """
        counts = self.game.validate_state(initial_state).copy()
        states: Optional[list[GameState]] = [GameState(counts)] if record_states else None
        if collector is not None:
            collector.record(0, counts, migrations=0)
        if trace is not None:
            trace.run_started(self.game, engine="loop", replicas=1,
                              max_rounds=max_rounds)

        total_migrations = 0
        rounds = 0
        reason = StopReason.MAX_ROUNDS
        for round_index in range(max_rounds):
            if stop_condition is not None and stop_condition(self.game, counts, round_index):
                reason = StopReason.STOP_CONDITION
                break
            probabilities = self.protocol.switch_probabilities(self.game, counts)
            if stop_when_quiescent and probabilities.is_quiescent(counts):
                reason = StopReason.QUIESCENT
                break
            migration = sample_migration_matrix(counts, probabilities.matrix, self.rng)
            delta = migration.sum(axis=0) - migration.sum(axis=1)
            counts = counts + delta
            moves = int(migration.sum())
            total_migrations += moves
            rounds = round_index + 1
            if trace is not None:
                trace.round_completed(self.game, counts, None, rounds, moves)
            if collector is not None and collector.should_record(rounds):
                collector.record(rounds, counts, migrations=moves)
            if record_states and states is not None:
                states.append(GameState(counts))
        else:
            # Budget exhausted without hitting the stop condition.
            if stop_condition is not None and stop_condition(self.game, counts, max_rounds):
                reason = StopReason.STOP_CONDITION
            elif strict:
                raise ConvergenceError(
                    f"dynamics did not stop within {max_rounds} rounds"
                )

        if collector is not None and (not collector.records
                                      or collector.records[-1].round_index != rounds):
            collector.record(rounds, counts, migrations=0)
        if trace is not None:
            trace.run_finished(self.game, counts, None, rounds=rounds,
                               total_migrations=total_migrations,
                               converged=reason is not StopReason.MAX_ROUNDS)

        return TrajectoryResult(
            final_state=GameState(counts),
            rounds=rounds,
            stop_reason=reason,
            records=collector.records if collector is not None else [],
            total_migrations=total_migrations,
            states=states,
        )
