"""Sequential (one-move-per-round) dynamics.

Section 3.2 of the paper contrasts the concurrent protocol with *sequential
imitation dynamics*: in every step a single player is allowed to adopt the
strategy of some other player, and it does so whenever that is an
improvement, regardless of the size of the gain.  Theorem 6 shows that such
sequences can be exponentially long on the lifted quadratic threshold games.

This module provides sequential engines for both game representations:

* :func:`run_sequential_imitation_symmetric` for symmetric
  :class:`~repro.games.base.CongestionGame` states (count vectors), used as
  a baseline in the experiments, and
* :func:`run_sequential_imitation_asymmetric` for
  :class:`~repro.games.asymmetric.AsymmetricCongestionGame` profiles, which
  restricts imitation to players with identical strategy spaces — the setting
  of the Theorem 6 construction.

Both support three pivot rules: ``"max-gain"`` (largest improvement),
``"min-gain"`` (smallest improvement — the adversarial scheduler that makes
sequences long), and ``"random"`` (uniform over improving moves).

The inner move loop is inherently serial (each move conditions on the state
all previous moves produced), so parallelism comes from *replicas*:
:func:`run_sequential_ensemble` fans independent trajectories — different
start profiles and/or different random pivots — across the sweep
scheduler's worker pool, with per-replica seed sequences spawned up front
so the results are independent of the worker count.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import ConvergenceError
from ..games.asymmetric import AsymmetricCongestionGame
from ..games.base import CongestionGame
from ..games.state import GameState, StateLike
from ..rng import RngLike, ensure_rng, spawn_seed_sequences

__all__ = [
    "SequentialResult",
    "SequentialEnsembleResult",
    "run_sequential_imitation_symmetric",
    "run_sequential_imitation_asymmetric",
    "run_sequential_ensemble",
]

logger = logging.getLogger(__name__)

_PIVOTS = ("max-gain", "min-gain", "random")


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a sequential dynamics run.

    Attributes
    ----------
    final:
        Final state (a :class:`GameState` for symmetric games, a profile
        array for asymmetric ones).
    steps:
        Number of single-player moves executed.
    converged:
        True if the run stopped because no improving move remained.
    potentials:
        Potential after every step (including the initial state), recorded
        when requested.
    """

    final: object
    steps: int
    converged: bool
    potentials: Optional[list[float]] = None


def _select(gains: Sequence[float], pivot: str, rng: np.random.Generator) -> int:
    if pivot == "max-gain":
        return int(np.argmax(gains))
    if pivot == "min-gain":
        return int(np.argmin(gains))
    if pivot == "random":
        return int(rng.integers(0, len(gains)))
    raise ValueError(f"unknown pivot rule {pivot!r}; expected one of {_PIVOTS}")


def run_sequential_imitation_symmetric(
    game: CongestionGame,
    state: StateLike,
    *,
    max_steps: int = 1_000_000,
    pivot: str = "max-gain",
    min_gain: float = 0.0,
    rng: RngLike = None,
    record_potential: bool = False,
    strict: bool = False,
) -> SequentialResult:
    """Sequential imitation on a symmetric game.

    In every step one player switches to a *currently used* strategy if that
    strictly improves its latency by more than ``min_gain``.  The run stops
    when no such move exists (an imitation-stable state for threshold
    ``min_gain``).
    """
    counts = game.validate_state(state).copy()
    gen = ensure_rng(rng)
    potentials = [game.potential(counts)] if record_potential else None

    for step_index in range(max_steps):
        latencies = game.strategy_latencies(counts)
        post = game.post_migration_latency_matrix(counts)
        gains = latencies[:, np.newaxis] - post
        occupied = counts > 0
        eligible = occupied[:, np.newaxis] & occupied[np.newaxis, :]
        np.fill_diagonal(eligible, False)
        eligible &= gains > min_gain
        moves = np.argwhere(eligible)
        if moves.size == 0:
            return SequentialResult(GameState(counts), step_index, True, potentials)
        move_gains = gains[moves[:, 0], moves[:, 1]]
        chosen = _select(move_gains, pivot, gen)
        origin, destination = moves[chosen]
        counts[origin] -= 1
        counts[destination] += 1
        if potentials is not None:
            potentials.append(game.potential(counts))
    if strict:
        raise ConvergenceError(f"sequential imitation did not stop within {max_steps} steps")
    logger.warning(
        "sequential imitation (symmetric) truncated after %d steps without "
        "reaching an imitation-stable state; the returned state is NOT "
        "converged (check SequentialResult.converged)", max_steps,
    )
    return SequentialResult(GameState(counts), max_steps, False, potentials)


def run_sequential_imitation_asymmetric(
    game: AsymmetricCongestionGame,
    profile: Sequence[int],
    *,
    max_steps: int = 1_000_000,
    pivot: str = "min-gain",
    min_gain: float = 0.0,
    rng: RngLike = None,
    record_potential: bool = False,
    strict: bool = False,
) -> SequentialResult:
    """Sequential imitation on an asymmetric game (Theorem 6 setting).

    Players may only copy players with an identical strategy space.  The
    default pivot is ``"min-gain"``: always scheduling the smallest available
    improvement is the adversarial choice under which the lower-bound
    instances exhibit their long sequences (any pivot gives a valid
    imitation sequence, so the measured length is a lower bound on the worst
    case).
    """
    current = game.validate_profile(profile).copy()
    gen = ensure_rng(rng)
    potentials = [game.potential(current)] if record_potential else None

    for step_index in range(max_steps):
        moves = game.imitation_moves(current, tolerance=min_gain)
        if not moves:
            return SequentialResult(current, step_index, True, potentials)
        gains = [gain for (_, _, gain) in moves]
        chosen = _select(gains, pivot, gen)
        player, new_strategy, _ = moves[chosen]
        current = game.apply_move(current, player, new_strategy)
        if potentials is not None:
            potentials.append(game.potential(current))
    if strict:
        raise ConvergenceError(f"sequential imitation did not stop within {max_steps} steps")
    logger.warning(
        "sequential imitation (asymmetric) truncated after %d steps without "
        "reaching an imitation-stable state; the returned profile is NOT "
        "converged (check SequentialResult.converged)", max_steps,
    )
    return SequentialResult(current, max_steps, False, potentials)


# ----------------------------------------------------------------------
# Replica-parallel driver
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SequentialEnsembleResult:
    """Outcome of a fan-out of independent sequential trajectories.

    Attributes
    ----------
    results:
        One :class:`SequentialResult` per replica, in replica order
        (independent of the worker count that executed them).
    """

    results: list[SequentialResult]

    @property
    def num_replicas(self) -> int:
        """Number of trajectories in the ensemble."""
        return len(self.results)

    @property
    def steps(self) -> np.ndarray:
        """Per-replica move counts, shape ``(R,)``."""
        return np.array([result.steps for result in self.results], dtype=np.int64)

    @property
    def converged(self) -> np.ndarray:
        """Per-replica convergence mask, shape ``(R,)``."""
        return np.array([result.converged for result in self.results], dtype=bool)

    @property
    def num_truncated(self) -> int:
        """Replicas that exhausted their step budget without converging."""
        return int(np.sum(~self.converged))

    def converged_steps(self) -> np.ndarray:
        """Move counts of the converged replicas only (possibly empty)."""
        return self.steps[self.converged]


def _sequential_replica_worker(
    payload: tuple[object, StateLike, dict, np.random.SeedSequence],
) -> SequentialResult:
    """Worker entry point: run one self-contained sequential trajectory.

    The payload carries everything the replica needs (game, start, options,
    its own seed sequence), so the produced result depends only on the
    replica — never on which worker process ran it.
    """
    game, initial, options, seed_sequence = payload
    if isinstance(game, AsymmetricCongestionGame):
        return run_sequential_imitation_asymmetric(game, initial, rng=seed_sequence,
                                                   **options)
    return run_sequential_imitation_symmetric(game, initial, rng=seed_sequence,
                                              **options)


def run_sequential_ensemble(
    game: Union[CongestionGame, AsymmetricCongestionGame],
    initial_states: Sequence[StateLike],
    *,
    pivot: str = "min-gain",
    min_gain: float = 0.0,
    max_steps: int = 1_000_000,
    rng: RngLike = 0,
    workers: int = 1,
    record_potential: bool = False,
    strict: bool = False,
) -> SequentialEnsembleResult:
    """Run ``R`` independent sequential trajectories across a worker pool.

    The inner move loop of a sequential dynamics is serial by definition, so
    this driver parallelises over *replicas*: each entry of
    ``initial_states`` (a profile for asymmetric games, a count vector for
    symmetric ones) becomes one self-contained trajectory.  Per-replica seed
    sequences are spawned from ``rng`` via
    :func:`repro.rng.spawn_seed_sequences` *before* dispatch, and results
    are returned in replica order — the rows are therefore bit-identical
    for any ``workers`` value (the same guarantee the sweep scheduler
    gives sharded grids).
    """
    if pivot not in _PIVOTS:
        raise ValueError(f"unknown pivot rule {pivot!r}; expected one of {_PIVOTS}")
    from ..sweeps.scheduler import parallel_map  # local import, avoids cycle

    options = dict(pivot=pivot, min_gain=min_gain, max_steps=max_steps,
                   record_potential=record_potential, strict=strict)
    sequences = spawn_seed_sequences(rng, len(initial_states))
    payloads = [(game, initial, options, sequence)
                for initial, sequence in zip(initial_states, sequences)]
    results: list[Optional[SequentialResult]] = [None] * len(payloads)
    for index, result in parallel_map(_sequential_replica_worker, payloads,
                                      workers=workers):
        results[index] = result
    missing = [index for index, result in enumerate(results) if result is None]
    if missing:  # parallel_map yields every index exactly once
        raise RuntimeError(f"sequential ensemble lost replica(s) {missing}")
    return SequentialEnsembleResult(results=list(results))  # type: ignore[arg-type]
