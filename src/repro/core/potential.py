"""Potential bookkeeping: Rosenthal potential, virtual gains and error terms.

This module implements the quantities around which the convergence proofs of
Section 3 revolve:

* the **virtual potential gain** of a migration vector,
  ``V_PQ(x, Delta x) = Delta x_PQ * (l_Q(x + 1_Q - 1_P) - l_P(x))`` — the
  potential change each migrating player *would* cause if it moved alone;
* the **error terms** ``F_e(x, Delta x)`` that account for players moving
  concurrently onto/off the same resource (Lemma 1's correction);
* the **true potential gain** ``Delta Phi = Phi(x + Delta x) - Phi(x)``.

Lemma 1 states ``Delta Phi <= sum V_PQ + sum F_e`` for *any* migration
vector; Lemma 2 states that under the IMITATION PROTOCOL the expectation of
the error terms eats at most half of the (negative) virtual gain, so
``E[Delta Phi] <= 1/2 E[sum V_PQ] <= 0``.  The functions here let tests and
experiments verify both statements numerically on sampled rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import StateError
from ..games.base import CongestionGame
from ..games.state import StateLike
from ..rng import RngLike, ensure_rng
from .protocols import Protocol

__all__ = [
    "PotentialBreakdown",
    "BatchPotentialBreakdown",
    "virtual_potential_gain",
    "error_terms",
    "true_potential_gain",
    "potential_breakdown",
    "potential_breakdown_batch",
    "expected_virtual_potential_gain",
    "estimate_expected_drift",
]


@dataclass(frozen=True)
class PotentialBreakdown:
    """Decomposition of a single round's potential change (Lemma 1).

    Attributes
    ----------
    virtual_gain:
        ``sum_{P,Q} V_PQ`` — the sum of per-player virtual potential gains
        (non-positive for migration vectors produced by the protocol).
    error_term:
        ``sum_e F_e`` — the concurrency correction (non-negative).
    true_gain:
        ``Phi(x + Delta x) - Phi(x)``.
    """

    virtual_gain: float
    error_term: float
    true_gain: float

    @property
    def lemma1_upper_bound(self) -> float:
        """The Lemma 1 right-hand side ``virtual_gain + error_term``."""
        return self.virtual_gain + self.error_term

    @property
    def lemma1_holds(self) -> bool:
        """True if ``true_gain <= virtual_gain + error_term`` (up to rounding).

        For singleton games the inequality is an equality, so the comparison
        uses a relative tolerance scaled by the magnitude of the involved
        quantities to stay robust against floating-point accumulation on
        steep latency functions.
        """
        scale = 1.0 + abs(self.virtual_gain) + abs(self.error_term) + abs(self.true_gain)
        return self.true_gain <= self.lemma1_upper_bound + 1e-9 * scale


def _validate_migration(game: CongestionGame, counts: np.ndarray,
                        migration: np.ndarray) -> np.ndarray:
    migration = np.asarray(migration, dtype=np.int64)
    expected_shape = (game.num_strategies, game.num_strategies)
    if migration.shape != expected_shape:
        raise StateError(f"migration matrix must have shape {expected_shape}")
    if np.any(migration < 0):
        raise StateError("migration counts must be non-negative")
    if np.any(np.diagonal(migration) != 0):
        raise StateError("the diagonal of a migration matrix must be zero")
    if np.any(migration.sum(axis=1) > counts):
        raise StateError("more players leave a strategy than are present")
    return migration


def migration_delta(migration: np.ndarray) -> np.ndarray:
    """Net per-strategy change ``Delta x_P`` induced by a migration matrix."""
    migration = np.asarray(migration, dtype=np.int64)
    return migration.sum(axis=0) - migration.sum(axis=1)


def virtual_potential_gain(game: CongestionGame, state: StateLike,
                           migration: np.ndarray) -> float:
    """``sum_{P,Q} Delta x_PQ * (l_Q(x + 1_Q - 1_P) - l_P(x))``."""
    counts = game.validate_state(state)
    migration = _validate_migration(game, counts, migration)
    latencies = game.strategy_latencies(counts)
    post = game.post_migration_latency_matrix(counts)
    per_move_gain = post - latencies[:, np.newaxis]  # negative when improving
    return float(np.sum(migration * per_move_gain))


def error_terms(game: CongestionGame, state: StateLike, migration: np.ndarray
                ) -> np.ndarray:
    """Per-resource error terms ``F_e(x, Delta x)`` of Lemma 1."""
    counts = game.validate_state(state)
    migration = _validate_migration(game, counts, migration)
    delta_strategies = migration_delta(migration)
    loads = np.rint(game.congestion(counts)).astype(int)
    delta_loads = np.rint(game.incidence.T @ delta_strategies.astype(float)).astype(int)

    errors = np.zeros(game.num_resources)
    for resource, (load, delta) in enumerate(zip(loads, delta_loads)):
        latency = game.latencies[resource]
        if delta > 0:
            arguments = np.arange(load + 1, load + delta + 1, dtype=float)
            errors[resource] = float(np.sum(latency.value(arguments)
                                            - latency.value(np.asarray(float(load + 1)))))
        elif delta < 0:
            arguments = np.arange(load + delta + 1, load + 1, dtype=float)
            errors[resource] = float(np.sum(latency.value(np.asarray(float(load)))
                                            - latency.value(arguments)))
    return errors


def true_potential_gain(game: CongestionGame, state: StateLike, migration: np.ndarray
                        ) -> float:
    """``Phi(x + Delta x) - Phi(x)`` for the migration matrix."""
    counts = game.validate_state(state)
    migration = _validate_migration(game, counts, migration)
    new_counts = counts + migration_delta(migration)
    return float(game.potential(new_counts) - game.potential(counts))


def potential_breakdown(game: CongestionGame, state: StateLike, migration: np.ndarray
                        ) -> PotentialBreakdown:
    """Compute all three quantities of Lemma 1 for one migration matrix."""
    return PotentialBreakdown(
        virtual_gain=virtual_potential_gain(game, state, migration),
        error_term=float(np.sum(error_terms(game, state, migration))),
        true_gain=true_potential_gain(game, state, migration),
    )


@dataclass(frozen=True)
class BatchPotentialBreakdown:
    """Per-sample Lemma 1 decompositions for a stack of migration matrices.

    All attributes are arrays of shape ``(N,)`` — one entry per sampled
    round against the *same* base state.
    """

    virtual_gains: np.ndarray
    error_sums: np.ndarray
    true_gains: np.ndarray

    @property
    def lemma1_holds(self) -> np.ndarray:
        """Per-sample Lemma 1 check (same tolerance as the scalar version)."""
        scale = (1.0 + np.abs(self.virtual_gains) + np.abs(self.error_sums)
                 + np.abs(self.true_gains))
        return self.true_gains <= self.virtual_gains + self.error_sums + 1e-9 * scale


def potential_breakdown_batch(game: CongestionGame, state: StateLike,
                              migrations: np.ndarray) -> BatchPotentialBreakdown:
    """Lemma 1 decomposition for ``N`` migration matrices at once.

    ``migrations`` has shape ``(N, S, S)``; every matrix is a migration of
    the same base ``state``.  The per-move gains are evaluated once, the
    error terms come from table lookups against per-resource latency value
    and prefix tables, and the true gains reuse the game's batched
    potential — no per-sample Python work.
    """
    counts = game.validate_state(state)
    migrations = np.asarray(migrations, dtype=np.int64)
    expected_shape = (game.num_strategies, game.num_strategies)
    if migrations.ndim != 3 or migrations.shape[1:] != expected_shape:
        raise StateError(f"migration stack must have shape (N, {expected_shape[0]}, "
                         f"{expected_shape[1]})")
    if np.any(migrations < 0):
        raise StateError("migration counts must be non-negative")
    diag = np.arange(game.num_strategies)
    if np.any(migrations[:, diag, diag] != 0):
        raise StateError("the diagonal of a migration matrix must be zero")
    if np.any(migrations.sum(axis=2) > counts[np.newaxis, :]):
        raise StateError("more players leave a strategy than are present")

    latencies = game.strategy_latencies(counts)
    post = game.post_migration_latency_matrix(counts)
    per_move_gain = post - latencies[:, np.newaxis]
    virtual = np.einsum("npq,pq->n", migrations.astype(float), per_move_gain)

    deltas = migrations.sum(axis=1) - migrations.sum(axis=2)  # (N, S)
    loads = np.rint(game.congestion(counts)).astype(int)  # (m,)
    delta_loads = np.rint(deltas.astype(float) @ game.incidence).astype(int)  # (N, m)
    new_loads = loads[np.newaxis, :] + delta_loads

    # Value/prefix tables: V[e, k] = l_e(k), C[e, k] = sum_{i<=k} l_e(i).
    arguments = np.arange(0, game.num_players + 1, dtype=float)
    values = np.stack([np.asarray(lat.value(arguments), dtype=float)
                       for lat in game.latencies])
    prefix = np.concatenate(
        [np.zeros((game.num_resources, 1)), np.cumsum(values[:, 1:], axis=1)], axis=1,
    )
    resource = np.arange(game.num_resources)[np.newaxis, :]
    base = np.broadcast_to(loads[np.newaxis, :], new_loads.shape)
    # delta > 0: sum_{u=load+1..load+delta} l(u) - delta * l(load+1)
    up = (prefix[resource, new_loads] - prefix[resource, base]
          - delta_loads * values[resource, np.minimum(base + 1, game.num_players)])
    # delta < 0: (-delta) * l(load) - sum_{u=load+delta+1..load} l(u)
    down = (-delta_loads * values[resource, base]
            - (prefix[resource, base] - prefix[resource, new_loads]))
    errors = np.where(delta_loads > 0, up, np.where(delta_loads < 0, down, 0.0))

    base_potential = game.potential(counts)
    new_counts = counts[np.newaxis, :] + deltas
    true = game.potential_batch(new_counts) - base_potential

    return BatchPotentialBreakdown(
        virtual_gains=virtual,
        error_sums=errors.sum(axis=1),
        true_gains=true,
    )


def expected_virtual_potential_gain(game: CongestionGame, protocol: Protocol,
                                    state: StateLike) -> float:
    """``E[sum_{P,Q} V_PQ]`` in closed form.

    The expectation of the migration matrix under any protocol is
    ``x_P * R[P, Q]`` and the per-move gains are deterministic given the
    state, so the expected virtual gain is available without sampling.
    """
    counts = game.validate_state(state)
    expected_moves = protocol.expected_migration(game, counts)
    latencies = game.strategy_latencies(counts)
    post = game.post_migration_latency_matrix(counts)
    per_move_gain = post - latencies[:, np.newaxis]
    return float(np.sum(expected_moves * per_move_gain))


def estimate_expected_drift(
    game: CongestionGame,
    protocol: Protocol,
    state: StateLike,
    *,
    samples: int = 200,
    rng: RngLike = None,
) -> dict[str, float]:
    """Monte-Carlo estimate of the one-round expected potential change.

    Returns a dictionary with the sampled mean of the true potential gain,
    the closed-form expected virtual gain, and the Lemma 2 bound (half the
    virtual gain).  Used by the martingale diagnostics and the corresponding
    tests.
    """
    from .dynamics import sample_migration_matrix  # local import, avoids cycle

    counts = game.validate_state(state)
    gen = ensure_rng(rng)
    probabilities = protocol.switch_probabilities(game, counts)
    total_true = 0.0
    for _ in range(samples):
        migration = sample_migration_matrix(counts, probabilities.matrix, gen)
        total_true += true_potential_gain(game, counts, migration)
    expected_virtual = expected_virtual_potential_gain(game, protocol, counts)
    return {
        "mean_true_gain": total_true / samples,
        "expected_virtual_gain": expected_virtual,
        "lemma2_bound": 0.5 * expected_virtual,
    }
