"""Stability and equilibrium predicates.

Three nested solution concepts appear in the paper:

* **Nash equilibrium** — no player can improve by switching to *any*
  strategy (implemented in :mod:`repro.games.nash`, re-exported here);
* **imitation-stable state** — no player can improve by more than ``nu`` by
  switching to a strategy *currently in use* (the support restriction is
  what makes imitation non-innovative);
* **(delta, eps, nu)-equilibrium** (Definition 1) — at most a ``delta``
  fraction of the players uses a strategy whose latency deviates from the
  average by more than an ``eps`` fraction (plus the additive ``nu`` slack):
  expensive strategies have ``l_P > (1 + eps) L_av^+ + nu`` and cheap ones
  ``l_P < (1 - eps) L_av - nu``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..games.base import CongestionGame
from ..games.nash import is_epsilon_nash, is_nash
from ..games.state import StateLike

__all__ = [
    "DeviationSets",
    "deviation_sets",
    "unsatisfied_fraction",
    "is_approx_equilibrium",
    "is_imitation_stable",
    "max_imitation_gain",
    "is_nash",
    "is_epsilon_nash",
]


@dataclass(frozen=True)
class DeviationSets:
    """The expensive/cheap strategy sets of Definition 1.

    Attributes
    ----------
    expensive:
        Boolean mask over strategies: ``l_P > (1 + eps) * L_av^+ + nu``.
    cheap:
        Boolean mask over strategies: ``l_P < (1 - eps) * L_av - nu``.
    average_latency:
        ``L_av(x)``.
    average_latency_after_join:
        ``L_av^+(x)``.
    """

    expensive: np.ndarray
    cheap: np.ndarray
    average_latency: float
    average_latency_after_join: float

    @property
    def deviating(self) -> np.ndarray:
        """Mask of strategies in ``P_{eps,nu} = P^+ union P^-``."""
        return self.expensive | self.cheap


def deviation_sets(
    game: CongestionGame,
    state: StateLike,
    epsilon: float,
    nu: Optional[float] = None,
) -> DeviationSets:
    """Compute the expensive/cheap strategy sets of Definition 1."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    counts = game.validate_state(state)
    if nu is None:
        nu = game.nu_bound
    latencies = game.strategy_latencies(counts)
    average = game.average_latency(counts)
    average_plus = game.average_latency_after_join(counts)
    expensive = latencies > (1.0 + epsilon) * average_plus + nu
    cheap = latencies < (1.0 - epsilon) * average - nu
    return DeviationSets(
        expensive=expensive,
        cheap=cheap,
        average_latency=float(average),
        average_latency_after_join=float(average_plus),
    )


def unsatisfied_fraction(
    game: CongestionGame,
    state: StateLike,
    epsilon: float,
    nu: Optional[float] = None,
) -> float:
    """Fraction of players on strategies in ``P_{eps,nu}``."""
    counts = game.validate_state(state)
    sets = deviation_sets(game, counts, epsilon, nu)
    return float(counts[sets.deviating].sum() / game.num_players)


def is_approx_equilibrium(
    game: CongestionGame,
    state: StateLike,
    delta: float,
    epsilon: float,
    nu: Optional[float] = None,
) -> bool:
    """Definition 1: at most a ``delta`` fraction of players deviates by more
    than ``eps`` (relative) plus ``nu`` (absolute) from the average latency."""
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return unsatisfied_fraction(game, state, epsilon, nu) <= delta


def max_imitation_gain(game: CongestionGame, state: StateLike) -> float:
    """Largest latency gain available by copying a *currently used* strategy.

    Only occupied origins and occupied destinations are considered (a player
    can only sample strategies that someone is playing).  Returns 0 if no
    such improvement exists.
    """
    counts = game.validate_state(state)
    latencies = game.strategy_latencies(counts)
    post = game.post_migration_latency_matrix(counts)
    gains = latencies[:, np.newaxis] - post
    occupied = counts > 0
    mask = occupied[:, np.newaxis] & occupied[np.newaxis, :]
    np.fill_diagonal(mask, False)
    if not np.any(mask):
        return 0.0
    return float(max(np.max(gains[mask]), 0.0))


def is_imitation_stable(
    game: CongestionGame,
    state: StateLike,
    nu: Optional[float] = None,
) -> bool:
    """True if no player can improve by more than ``nu`` by imitating a
    currently used strategy.

    With the game's own ``nu`` bound this is exactly the notion under which
    the IMITATION PROTOCOL halts with probability 1 (no migration probability
    is positive).  Passing ``nu = 0`` asks for stability under the
    threshold-free protocol, i.e. a Nash equilibrium restricted to the
    current support.
    """
    if nu is None:
        nu = game.nu_bound
    return max_imitation_gain(game, state) <= nu
