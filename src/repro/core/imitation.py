"""The IMITATION PROTOCOL (Protocol 1 of the paper).

In every round each player independently

1. samples another player uniformly at random (so strategy ``Q`` is sampled
   with probability ``x_Q / n``),
2. computes the anticipated latency gain
   ``l_P(x) - l_Q(x + 1_Q - 1_P)`` of adopting the sampled strategy, and
3. if the gain exceeds the slope threshold ``nu``, migrates with probability

   ``mu_PQ = (lambda / d) * (l_P(x) - l_Q(x + 1_Q - 1_P)) / l_P(x)``,

where ``d`` is an upper bound on the elasticity of the latency functions and
``lambda`` is a small constant.  The ``1/d`` damping is what prevents
overshooting (the paper's central design point); the ``nu`` threshold guards
against probabilistic fluctuations on almost-empty resources and can be
dropped for large singleton games (Theorem 9 and the remark after it).

This module also provides :class:`UndampedImitationProtocol`, the strawman
without the ``1/d`` factor that the paper argues overshoots — used by the
overshooting ablation (experiment E5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ProtocolError
from ..games.base import CongestionGame
from ..games.state import BatchStateLike, StateLike
from .protocols import (
    KernelComponents,
    Protocol,
    SwitchProbabilities,
    relative_gain_matrix,
    relative_gain_matrix_batch,
    zero_diagonal,
)

__all__ = ["ImitationProtocol", "UndampedImitationProtocol", "DEFAULT_LAMBDA"]

#: Default damping constant.  The paper's proofs require a very small
#: constant (lambda < 1/512 and smaller in some cases); empirically the
#: dynamics remain monotone for much larger values, and the experiments use
#: this moderate default unless stated otherwise.
DEFAULT_LAMBDA = 0.25


class ImitationProtocol(Protocol):
    """Protocol 1 of the paper.

    Parameters
    ----------
    lambda_:
        Migration-probability constant ``lambda`` (must lie in ``(0, 1]``).
    use_nu_threshold:
        When True (default), a player only migrates if the anticipated gain
        strictly exceeds ``nu`` (the game's slope bound).  Theorem 9 shows
        the threshold can be dropped for large singleton games; setting this
        to False reproduces that variant.
    nu_override:
        Explicit value of ``nu`` to use instead of the game's
        :attr:`~repro.games.base.CongestionGame.nu_bound`.
    elasticity_override:
        Explicit value of ``d`` to use instead of the game's elasticity
        bound (clamped below at 1).
    """

    name = "imitation"

    def __init__(
        self,
        lambda_: float = DEFAULT_LAMBDA,
        *,
        use_nu_threshold: bool = True,
        nu_override: Optional[float] = None,
        elasticity_override: Optional[float] = None,
    ):
        if not 0.0 < lambda_ <= 1.0:
            raise ProtocolError("lambda must lie in (0, 1]")
        if nu_override is not None and nu_override < 0:
            raise ProtocolError("nu_override must be non-negative")
        if elasticity_override is not None and elasticity_override <= 0:
            raise ProtocolError("elasticity_override must be positive")
        self.lambda_ = float(lambda_)
        self.use_nu_threshold = bool(use_nu_threshold)
        self.nu_override = None if nu_override is None else float(nu_override)
        self.elasticity_override = (
            None if elasticity_override is None else float(elasticity_override)
        )

    # ------------------------------------------------------------------
    def effective_nu(self, game: CongestionGame) -> float:
        """The gain threshold actually applied to ``game``."""
        if not self.use_nu_threshold:
            return 0.0
        if self.nu_override is not None:
            return self.nu_override
        return game.nu_bound

    def effective_elasticity(self, game: CongestionGame) -> float:
        """The damping denominator ``d`` actually applied to ``game``."""
        if self.elasticity_override is not None:
            return max(1.0, self.elasticity_override)
        return game.elasticity_bound

    def migration_probabilities(self, game: CongestionGame, state: StateLike
                                ) -> np.ndarray:
        """The matrix ``mu_PQ`` (conditional on sampling ``Q``), zero where
        the gain threshold is not met."""
        counts = game.validate_state(state)
        latencies = game.strategy_latencies(counts)
        post = game.post_migration_latency_matrix(counts)
        gains = latencies[:, np.newaxis] - post
        relative = relative_gain_matrix(latencies, post)
        nu = self.effective_nu(game)
        d = self.effective_elasticity(game)
        eligible = gains > nu
        mu = np.where(eligible, (self.lambda_ / d) * relative, 0.0)
        np.fill_diagonal(mu, 0.0)
        return np.clip(mu, 0.0, 1.0)

    def switch_probabilities(self, game: CongestionGame, state: StateLike
                             ) -> SwitchProbabilities:
        counts = game.validate_state(state)
        latencies = game.strategy_latencies(counts)
        post = game.post_migration_latency_matrix(counts)
        gains = latencies[:, np.newaxis] - post
        mu = self.migration_probabilities(game, counts)
        sampling = counts.astype(float) / game.num_players  # P[sample strategy Q]
        matrix = mu * sampling[np.newaxis, :]
        np.fill_diagonal(matrix, 0.0)
        return SwitchProbabilities(matrix=matrix, gains=gains)

    # ------------------------------------------------------------------
    # Batched evaluation (ensemble engine)
    # ------------------------------------------------------------------
    def migration_probabilities_batch(self, game: CongestionGame,
                                      batch: BatchStateLike) -> np.ndarray:
        """Batched ``mu_PQ`` matrices, shape ``(R, S, S)``."""
        counts = game.validate_batch_state(batch)
        latencies = game.strategy_latencies_batch(counts)
        post = game.post_migration_latency_matrix_batch(counts)
        gains = latencies[:, :, np.newaxis] - post
        relative = relative_gain_matrix_batch(latencies, post)
        nu = self.effective_nu(game)
        d = self.effective_elasticity(game)
        mu = np.where(gains > nu, (self.lambda_ / d) * relative, 0.0)
        zero_diagonal(mu)
        return np.clip(mu, 0.0, 1.0)

    def sampling_distribution_batch(self, game: CongestionGame,
                                    counts: np.ndarray) -> np.ndarray:
        """Per-replica probability of sampling each strategy, shape ``(R, S)``."""
        return counts.astype(float) / game.num_players

    def switch_probabilities_batch(self, game: CongestionGame,
                                   batch: BatchStateLike) -> np.ndarray:
        counts = game.validate_batch_state(batch)
        mu = self.migration_probabilities_batch(game, counts)
        sampling = self.sampling_distribution_batch(game, counts)
        matrices = mu * sampling[:, np.newaxis, :]
        return zero_diagonal(matrices)

    def kernel_components(self, game: CongestionGame) -> KernelComponents:
        """One player-sampling component with the ``lambda/d`` damping and
        the effective ``nu`` threshold resolved against ``game``.

        :class:`UndampedImitationProtocol` (and the proportional-sampling
        baseline built on it) and
        :class:`~repro.core.virtual_agents.VirtualAgentImitationProtocol`
        inherit this lowering — they only change
        :meth:`effective_elasticity` respectively the virtual-agent count.
        """
        virtual = float(getattr(self, "virtual_agents_per_strategy", 0))
        return KernelComponents(
            weights=np.array([1.0]),
            factors=np.array([self.lambda_ / self.effective_elasticity(game)]),
            thresholds=np.array([self.effective_nu(game)]),
            sampling_kinds=np.array([0], dtype=np.int64),
            sampling_virtual=np.array([virtual]),
        )

    def describe(self) -> str:
        threshold = "nu-threshold" if self.use_nu_threshold else "no-threshold"
        return f"imitation(lambda={self.lambda_:g}, {threshold})"


class UndampedImitationProtocol(ImitationProtocol):
    """Imitation without the ``1/d`` damping factor.

    The migration probability is ``lambda * (l_P - l_Q(x+1_Q-1_P)) / l_P``
    regardless of the elasticity.  Section 2.3 of the paper shows this rule
    overshoots the balanced state by a factor ``Theta(d)`` on the two-link
    constant-versus-``x^d`` instance; experiment E5 reproduces that effect.
    """

    name = "imitation-undamped"

    def effective_elasticity(self, game: CongestionGame) -> float:
        return 1.0

    def describe(self) -> str:
        return f"imitation-undamped(lambda={self.lambda_:g})"
