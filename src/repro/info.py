"""Runtime introspection: versions, registries and optional dependencies.

One structured answer to "what can this installation do?", shared by two
surfaces:

* ``python -m repro info`` renders it as text for humans;
* the sweep service's ``GET /v1/healthz`` embeds it as JSON, so a client
  can check that a daemon's :data:`~repro.sweeps.spec.CODE_VERSION` (and
  therefore its result-cache keys) matches its own before submitting.
"""

from __future__ import annotations

import importlib.util
import platform
from typing import Any

import numpy as np

from .sweeps.spec import CODE_VERSION

__all__ = ["optional_dependencies", "render_info", "runtime_info"]

#: Optional third-party packages some subsystems use when present (scipy
#: enables sparse path×edge incidence, networkx the richer network
#: generators, numba JIT-compiles the native round kernel).  Everything
#: else degrades gracefully without them.
OPTIONAL_DEPENDENCIES = ("scipy", "networkx", "numba")


def optional_dependencies() -> dict[str, bool]:
    """Availability of each optional dependency (import not required)."""
    return {name: importlib.util.find_spec(name) is not None
            for name in OPTIONAL_DEPENDENCIES}


def runtime_info() -> dict[str, Any]:
    """Everything ``info``/``healthz`` report, as one JSON-able dict."""
    from .engines import engine_runtime_info
    from .experiments import list_experiments
    from .presets import preset_summaries

    return {
        "code_version": CODE_VERSION,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "dependencies": optional_dependencies(),
        "engines": engine_runtime_info(),
        "experiments": [{"id": spec.experiment_id, "title": spec.title}
                        for spec in list_experiments()],
        "presets": preset_summaries(),
    }


def render_info(info: dict[str, Any] | None = None) -> str:
    """Human-readable rendering of :func:`runtime_info`."""
    info = info if info is not None else runtime_info()
    lines = [
        f"code version: {info['code_version']}",
        f"python:       {info['python']}",
        f"numpy:        {info['numpy']}",
        "optional dependencies: "
        + ", ".join(f"{name}={'yes' if present else 'no'}"
                    for name, present in sorted(info["dependencies"].items())),
    ]
    engines = info.get("engines")
    if engines:
        tiers = engines["parity_tiers"]
        lines += [
            "",
            "engines: "
            + ", ".join(f"{name} [{tiers.get(name, '?')}]"
                        for name in engines["engines"])
            + f" (default: {engines['default_engine']})",
            f"native mode:  {engines['native_mode']}"
            + (f" (numba {engines['numba_version']})"
               if engines["numba_available"] else ""),
        ]
    lines += [
        "",
        f"experiments ({len(info['experiments'])}):",
    ]
    lines += [f"  {item['id']:>4}  {item['title']}"
              for item in info["experiments"]]
    lines.append("")
    lines.append(f"sweep presets ({len(info['presets'])}):")
    lines += [f"  {item['name']:>16}  {item['description']} "
              f"[{item['num_points']} points quick]"
              for item in info["presets"]]
    return "\n".join(lines)
