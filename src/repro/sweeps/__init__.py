"""Sweep orchestration: sharded parallel parameter sweeps with a resumable
on-disk result store.

The paper's claims are statements over parameter grids; this package turns
"run a grid" into a first-class, declarative operation on top of the batched
ensemble engine:

* :mod:`~repro.sweeps.spec` — :class:`SweepSpec`/:class:`SweepPoint`,
  deterministic grid expansion and per-point seed derivation;
* :mod:`~repro.sweeps.kernels` — the measurement executed at each point
  (game/protocol builders + batched hitting-time kernels);
* :mod:`~repro.sweeps.scheduler` — shard scheduling over a multiprocessing
  pool (:func:`run_sweep`, :func:`parallel_map`);
* :mod:`~repro.sweeps.store` — the result store facade with resume/cache
  semantics (:class:`SweepStore`);
* :mod:`~repro.sweeps.backends` — pluggable persistence backends behind
  the store (``dir:``, ``sqlite:``, ``object:`` URL schemes);
* :mod:`~repro.sweeps.aggregate` — group-by summary reducers feeding the
  analysis layer.

See ``docs/SWEEPS.md`` for the spec format, store layout and determinism
guarantees.
"""

from .aggregate import aggregate_rows, explode_column, group_rows, table_rows
from .backends import (
    BACKENDS,
    LocalDirBackend,
    ObjectStoreBackend,
    SqliteBackend,
    StoreBackend,
    open_backend,
    parse_store_url,
)
from .kernels import GAME_BUILDERS, MEASURES, PROTOCOL_BUILDERS, run_point
from .scheduler import SweepRunResult, parallel_map, partition, run_sweep
from .spec import CODE_VERSION, SweepError, SweepPoint, SweepSpec, point_key
from .store import DirectoryLock, StoreLockTimeout, SweepStore

__all__ = [
    "BACKENDS",
    "CODE_VERSION",
    "DirectoryLock",
    "LocalDirBackend",
    "ObjectStoreBackend",
    "SqliteBackend",
    "StoreBackend",
    "StoreLockTimeout",
    "open_backend",
    "parse_store_url",
    "GAME_BUILDERS",
    "MEASURES",
    "PROTOCOL_BUILDERS",
    "SweepError",
    "SweepPoint",
    "SweepRunResult",
    "SweepSpec",
    "SweepStore",
    "aggregate_rows",
    "explode_column",
    "group_rows",
    "parallel_map",
    "partition",
    "point_key",
    "run_point",
    "run_sweep",
    "table_rows",
]
