"""On-disk result store for sweeps: JSONL rows plus a JSON manifest.

Layout
------
Each spec gets its own directory under the store root, keyed by the spec's
slug — ``<name>-<content_hash>`` where the hash covers the full spec *and*
:data:`~repro.sweeps.spec.CODE_VERSION`::

    <root>/
      eps-delta-3f2a9c01d4b8e6f7/
        manifest.json    # the spec, its hash, code version, creation time
        rows.jsonl       # one completed point per line

Any change to the spec (axes, seeds, replicas, ...) or to the kernel code
version changes the hash and therefore the directory, so stale results are
never silently reused across incompatible runs.

Crash safety
------------
Only the scheduler's parent process ever writes to a store directory, and it
appends each completed shard as one buffered write followed by ``fsync`` (an
*atomic shard commit* in the single-writer setting).  If the process dies
mid-write, the interrupted final line fails to parse and
:meth:`SweepStore.load_rows` simply skips it — the affected points are
recomputed on resume, everything before them is reused.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterable, Optional

from .spec import CODE_VERSION, SweepSpec

__all__ = ["SweepStore"]


class SweepStore:
    """Resumable sweep-result store rooted at ``root``."""

    MANIFEST = "manifest.json"
    ROWS = "rows.jsonl"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    # ------------------------------------------------------------------
    def directory(self, spec: SweepSpec) -> Path:
        """The store directory of ``spec`` (not necessarily existing yet)."""
        return self.root / spec.slug()

    def manifest_path(self, spec: SweepSpec) -> Path:
        """Path of the spec's manifest file."""
        return self.directory(spec) / self.MANIFEST

    def rows_path(self, spec: SweepSpec) -> Path:
        """Path of the spec's JSONL row file."""
        return self.directory(spec) / self.ROWS

    # ------------------------------------------------------------------
    def manifest(self, spec: SweepSpec) -> Optional[dict]:
        """The stored manifest of ``spec``, or ``None`` if never committed."""
        path = self.manifest_path(spec)
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def _ensure_manifest(self, spec: SweepSpec) -> None:
        path = self.manifest_path(spec)
        if path.exists():
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": spec.name,
            "spec": spec.to_dict(),
            "spec_hash": spec.content_hash(),
            "code_version": CODE_VERSION,
            "num_points": spec.num_points,
            "created_at": time.time(),
        }
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def commit(self, spec: SweepSpec, rows: Iterable[dict[str, Any]]) -> int:
        """Append one shard's completed rows (an atomic shard commit).

        Returns the number of rows written.  The whole shard is serialised
        first and written with a single call + ``fsync``, so a crash leaves
        at most one torn (and therefore ignorable) trailing line.
        """
        rows = list(rows)
        if not rows:
            return 0
        self._ensure_manifest(spec)
        # Key order is preserved (no sort_keys) so a cache-hit run yields
        # rows — and therefore rendered tables — identical to a fresh run.
        blob = "".join(json.dumps(row) + "\n" for row in rows)
        with self.rows_path(spec).open("a", encoding="utf-8") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        return len(rows)

    def load_rows(self, spec: SweepSpec) -> list[dict[str, Any]]:
        """All committed rows of ``spec``, de-duplicated by ``point_key``.

        Unparseable lines (torn writes from an interrupted commit) are
        skipped; duplicated points keep their first committed row so a
        re-commit after a racy resume cannot change already-stored results.
        """
        path = self.rows_path(spec)
        if not path.exists():
            return []
        rows: list[dict[str, Any]] = []
        seen: set[str] = set()
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = row.get("point_key")
                if key is None or key in seen:
                    continue
                seen.add(key)
                rows.append(row)
        return rows

    def completed_keys(self, spec: SweepSpec) -> set[str]:
        """The ``point_key`` set of all committed points of ``spec``."""
        return {row["point_key"] for row in self.load_rows(spec)}

    def reset(self, spec: SweepSpec) -> None:
        """Drop the committed rows of ``spec`` (the manifest is kept)."""
        path = self.rows_path(spec)
        if path.exists():
            path.unlink()

    # ------------------------------------------------------------------
    def runs(self) -> list[dict]:
        """Manifests of every sweep ever committed to this store root."""
        if not self.root.exists():
            return []
        manifests = []
        for directory in sorted(self.root.iterdir()):
            path = directory / self.MANIFEST
            if path.is_file():
                with path.open("r", encoding="utf-8") as handle:
                    manifests.append(json.load(handle))
        return manifests
