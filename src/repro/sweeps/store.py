"""On-disk result store for sweeps: JSONL rows plus a JSON manifest.

Layout
------
Each spec gets its own directory under the store root, keyed by the spec's
slug — ``<name>-<content_hash>`` where the hash covers the full spec *and*
:data:`~repro.sweeps.spec.CODE_VERSION`::

    <root>/
      eps-delta-3f2a9c01d4b8e6f7/
        manifest.json    # the spec, its hash, code version, creation time
        rows.jsonl       # one completed point per line

Any change to the spec (axes, seeds, replicas, ...) or to the kernel code
version changes the hash and therefore the directory, so stale results are
never silently reused across incompatible runs.

Crash safety
------------
Each completed shard is appended as one buffered write followed by ``fsync``
(an *atomic shard commit*).  If the process dies mid-write, the interrupted
final line fails to parse and :meth:`SweepStore.load_rows` simply skips it —
the affected points are recomputed on resume, everything before them is
reused.

Concurrency — the relaxed single-writer contract
------------------------------------------------
Historically only one process (the scheduler's parent) was allowed to write
to a store directory.  That contract is now *relaxed*: any number of writers
— a sweep-service worker and a concurrent CLI ``sweep`` invocation on the
same root, say — may commit to the same spec directory, because every
manifest + rows mutation happens under the directory's advisory
:class:`DirectoryLock` (``fcntl.flock`` where available, a stale-detecting
PID lockfile otherwise).  The lock makes shard commits mutually exclusive,
so two writers can never interleave partial lines; if both compute the same
point, :meth:`SweepStore.load_rows` keeps the *first committed* row — and
since rows are deterministic functions of ``(spec, point.index)``, the
duplicates are identical anyway.  Readers take no lock: they rely on commit
atomicity plus torn-trailing-line tolerance, exactly as before.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterable, Optional

from .spec import CODE_VERSION, SweepError, SweepSpec

try:  # POSIX; on platforms without fcntl the PID-lockfile fallback is used
    import fcntl
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    fcntl = None  # type: ignore[assignment]

__all__ = ["DirectoryLock", "StoreLockTimeout", "SweepStore"]


class StoreLockTimeout(SweepError):
    """Raised when a store directory's advisory lock cannot be acquired."""


class DirectoryLock:
    """Advisory inter-process lock on one store directory.

    Two implementations behind one context-manager interface:

    * with :mod:`fcntl` (POSIX): ``flock(LOCK_EX)`` on ``<dir>/.lock``.
      Kernel locks die with their holder, so a crashed writer can never
      leave the directory locked — no staleness handling needed.
    * without :mod:`fcntl`: ``O_CREAT | O_EXCL`` creation of the same file,
      which persists if the holder crashes.  The file records ``pid
      timestamp``; a lock whose PID is dead (or unreadable), or whose
      timestamp is older than ``stale_after`` seconds, is broken and
      re-acquired.

    The lock is *advisory*: readers never take it, and nothing stops a
    process that bypasses :class:`SweepStore` from writing anyway.
    """

    FILENAME = ".lock"

    def __init__(self, directory: str | os.PathLike, *, timeout: float = 30.0,
                 poll: float = 0.05, stale_after: float = 600.0):
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        self._handle = None      # fcntl path: the open, flocked file object
        self._owns_file = False  # fallback path: we created the lockfile

    # ------------------------------------------------------------------
    def acquire(self) -> "DirectoryLock":
        self.directory.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                return self
            if time.monotonic() >= deadline:
                raise StoreLockTimeout(
                    f"could not lock store directory {self.directory} within "
                    f"{self.timeout:.1f}s (held by {self._holder()!r}); "
                    "another writer is committing to this sweep"
                )
            time.sleep(self.poll)

    def release(self) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
        elif self._owns_file:
            try:
                self.path.unlink()
            except FileNotFoundError:  # pragma: no cover - broken externally
                pass
            self._owns_file = False

    def __enter__(self) -> "DirectoryLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _try_acquire(self) -> bool:
        if fcntl is not None:
            handle = self.path.open("a+", encoding="utf-8")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                return False
            handle.seek(0)
            handle.truncate()
            handle.write(f"{os.getpid()} {time.time()}\n")
            handle.flush()
            self._handle = handle
            return True
        try:
            descriptor = os.open(self.path,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            self._break_if_stale()
            return False
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()} {time.time()}\n")
        self._owns_file = True
        return True

    def _holder(self) -> str:
        try:
            return self.path.read_text(encoding="utf-8").strip()
        except OSError:
            return "unknown"

    #: Unparseable fallback lockfiles younger than this are left alone: a
    #: just-created lock is briefly empty (O_EXCL create, then write), and
    #: breaking it would steal a live holder's lock.
    GARBAGE_GRACE = 5.0

    def _break_if_stale(self) -> None:
        """Remove a fallback lockfile whose holder is provably gone."""
        try:
            observed = self.path.stat()
            content = self.path.read_text(encoding="utf-8").strip()
        except OSError:
            return  # vanished (or unreadable): just retry the acquire
        try:
            pid_text, _, stamp_text = content.partition(" ")
            pid, stamp = int(pid_text), float(stamp_text)
        except ValueError:
            # Torn/empty contents: stale only once old enough that it
            # cannot be a holder mid-creation.
            stale = time.time() - observed.st_mtime \
                > min(self.stale_after, self.GARBAGE_GRACE)
        else:
            if time.time() - stamp > self.stale_after:
                stale = True
            else:
                try:
                    os.kill(pid, 0)
                    stale = False
                except ProcessLookupError:
                    stale = True
                except OSError:  # pragma: no cover - other user's pid: alive
                    stale = False
        if not stale:
            return
        # Re-check the inode before unlinking: if another contender already
        # broke this lock and a new holder created a fresh file under the
        # same name, deleting it would admit two writers.  (A stat/unlink
        # window remains — the fallback is advisory best-effort; platforms
        # with fcntl never get here.)
        try:
            current = self.path.stat()
        except OSError:
            return
        if (current.st_ino, current.st_mtime_ns) \
                != (observed.st_ino, observed.st_mtime_ns):
            return
        self._unlink_quietly()

    def _unlink_quietly(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


class SweepStore:
    """Resumable sweep-result store rooted at ``root``.

    Writes (:meth:`commit`, :meth:`reset`) serialize on the spec
    directory's advisory :class:`DirectoryLock`, so concurrent writers on
    the same root are safe (see the module docstring for the relaxed
    single-writer contract).  Reads are lock-free.
    """

    MANIFEST = "manifest.json"
    ROWS = "rows.jsonl"

    #: Seconds a writer waits for a directory's advisory lock before
    #: giving up with :class:`StoreLockTimeout`.
    LOCK_TIMEOUT = 30.0

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def lock(self, spec: SweepSpec, *,
             timeout: Optional[float] = None) -> DirectoryLock:
        """The advisory lock of ``spec``'s directory (a context manager)."""
        return DirectoryLock(self.directory(spec),
                             timeout=self.LOCK_TIMEOUT if timeout is None
                             else timeout)

    # ------------------------------------------------------------------
    def directory(self, spec: SweepSpec) -> Path:
        """The store directory of ``spec`` (not necessarily existing yet)."""
        return self.root / spec.slug()

    def manifest_path(self, spec: SweepSpec) -> Path:
        """Path of the spec's manifest file."""
        return self.directory(spec) / self.MANIFEST

    def rows_path(self, spec: SweepSpec) -> Path:
        """Path of the spec's JSONL row file."""
        return self.directory(spec) / self.ROWS

    # ------------------------------------------------------------------
    def manifest(self, spec: SweepSpec) -> Optional[dict]:
        """The stored manifest of ``spec``, or ``None`` if never committed."""
        path = self.manifest_path(spec)
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def _ensure_manifest(self, spec: SweepSpec) -> None:
        path = self.manifest_path(spec)
        if path.exists():
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": spec.name,
            "spec": spec.to_dict(),
            "spec_hash": spec.content_hash(),
            "code_version": CODE_VERSION,
            "num_points": spec.num_points,
            "created_at": time.time(),
        }
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            # NOT sort_keys: the axis declaration order inside the recorded
            # spec is semantic (point-index -> seed assignment); sorting it
            # here would make SweepSpec.from_dict(manifest["spec"]) hash to
            # a different slug than the directory it sits in.
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)

    def record_telemetry(self, spec: SweepSpec, payload: dict[str, Any]) -> None:
        """Attach the last run's telemetry to the spec's manifest.

        Rewrites ``manifest.json`` atomically under the directory lock with
        a ``telemetry`` stanza (run timings, worker counts, the metrics
        snapshot).  Telemetry is advisory metadata: it lives only in the
        manifest, is overwritten by each run, and never affects the row
        files or the spec hash.
        """
        with self.lock(spec):
            self._ensure_manifest(spec)
            path = self.manifest_path(spec)
            with path.open("r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            manifest["telemetry"] = dict(payload, recorded_at=time.time())
            tmp = path.with_suffix(".json.tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2)  # NOT sort_keys, see above
                handle.write("\n")
            os.replace(tmp, path)

    # ------------------------------------------------------------------
    def commit(self, spec: SweepSpec, rows: Iterable[dict[str, Any]]) -> int:
        """Append one shard's completed rows (an atomic shard commit).

        Returns the number of rows written.  The whole shard is serialised
        first and written with a single call + ``fsync``, so a crash leaves
        at most one torn (and therefore ignorable) trailing line.
        """
        rows = list(rows)
        if not rows:
            return 0
        # Key order is preserved (no sort_keys) so a cache-hit run yields
        # rows — and therefore rendered tables — identical to a fresh run.
        blob = "".join(json.dumps(row) + "\n" for row in rows)
        with self.lock(spec):
            self._ensure_manifest(spec)
            with self.rows_path(spec).open("a", encoding="utf-8") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
        return len(rows)

    def load_rows(self, spec: SweepSpec) -> list[dict[str, Any]]:
        """All committed rows of ``spec``, de-duplicated by ``point_key``.

        Unparseable lines (torn writes from an interrupted commit) are
        skipped; duplicated points keep their first committed row so a
        re-commit after a racy resume cannot change already-stored results.
        """
        path = self.rows_path(spec)
        if not path.exists():
            return []
        rows: list[dict[str, Any]] = []
        seen: set[str] = set()
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = row.get("point_key")
                if key is None or key in seen:
                    continue
                seen.add(key)
                rows.append(row)
        return rows

    def completed_keys(self, spec: SweepSpec) -> set[str]:
        """The ``point_key`` set of all committed points of ``spec``."""
        return {row["point_key"] for row in self.load_rows(spec)}

    def reset(self, spec: SweepSpec) -> None:
        """Drop the committed rows of ``spec`` (the manifest is kept)."""
        path = self.rows_path(spec)
        if path.exists():
            with self.lock(spec):
                if path.exists():
                    path.unlink()

    # ------------------------------------------------------------------
    def runs(self) -> list[dict]:
        """Manifests of every sweep ever committed to this store root."""
        if not self.root.exists():
            return []
        manifests = []
        for directory in sorted(self.root.iterdir()):
            path = directory / self.MANIFEST
            if path.is_file():
                with path.open("r", encoding="utf-8") as handle:
                    manifests.append(json.load(handle))
        return manifests
