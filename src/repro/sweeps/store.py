"""The sweep-result store: a facade over pluggable persistence backends.

:class:`SweepStore` is what every caller holds — the scheduler, the
service, the CLI and the tests.  Since the backend refactor it no longer
implements persistence itself: it parses a URL-style location string and
delegates to one of the :mod:`~repro.sweeps.backends`::

    SweepStore(".sweeps")                 # bare path: the dir backend
    SweepStore("dir:.sweeps")             # the same, spelled explicitly
    SweepStore("sqlite:results.db")       # single-file WAL SQLite
    SweepStore("object:/mnt/bucket")      # content-addressed objects

The directory backend keeps the historical layout byte-for-byte (JSONL
rows + JSON manifest per spec directory), so every store written before
the refactor opens unchanged.  The invariants all backends share — atomic
shard commits, first-commit-wins per ``point_key``, byte-stable rows,
lock-free reads — are documented in :mod:`~repro.sweeps.backends.base`.

Concurrency — the relaxed single-writer contract
------------------------------------------------
Any number of writers (a sweep-service worker, a concurrent CLI ``sweep``,
a remote shard completion) may commit to the same store.  The dir backend
serialises them on the advisory :class:`DirectoryLock` below
(``fcntl.flock`` where available, a hostname-qualified PID lockfile
otherwise); the sqlite backend uses transactions; the object backend needs
no lock at all (objects are immutable and created atomically).  If two
writers commit the same point, the *first committed* row wins everywhere —
and since rows are deterministic functions of ``(spec, point.index)``, the
duplicates are identical anyway.  Readers never lock.
"""

from __future__ import annotations

import os
import socket
import sys
import time
from pathlib import Path
from typing import Any, Iterable, Optional

from ..telemetry.logs import StructuredLogger
from .backends import LocalDirBackend, StoreBackend, open_backend
from .spec import SweepError, SweepSpec

try:  # POSIX; on platforms without fcntl the PID-lockfile fallback is used
    import fcntl
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    fcntl = None  # type: ignore[assignment]

__all__ = ["DirectoryLock", "StoreLockTimeout", "SweepStore"]

#: Structured warnings for advisory-lock anomalies (stale-lock takeovers).
#: One line of JSON on stderr — quiet in the happy path, greppable when a
#: crashed writer's lock had to be broken.
_LOCK_EVENTS = StructuredLogger(sys.stderr, component="sweeps.store.lock")


def _hostname() -> str:
    """This machine's name, whitespace-free (it lands in the lockfile)."""
    return "-".join(socket.gethostname().split()) or "unknown-host"


class StoreLockTimeout(SweepError):
    """Raised when a store directory's advisory lock cannot be acquired."""


class DirectoryLock:
    """Advisory inter-process lock on one store directory.

    Two implementations behind one context-manager interface:

    * with :mod:`fcntl` (POSIX): ``flock(LOCK_EX)`` on ``<dir>/.lock``.
      Kernel locks die with their holder, so a crashed writer can never
      leave the directory locked — no staleness handling needed.
    * without :mod:`fcntl`: ``O_CREAT | O_EXCL`` creation of the same file,
      which persists if the holder crashes.  The file records ``pid
      hostname timestamp``; a lock is broken and re-acquired when it is
      provably stale — its PID is dead *on this host*, or its timestamp is
      older than ``stale_after`` seconds.  The hostname qualifier matters
      on shared filesystems (NFS): a PID is only meaningful on the machine
      that created it, so a lock written by another host is **never**
      treated as dead by PID probe — a recycled PID number on this machine
      must not impersonate a live remote holder.  Cross-host staleness
      falls back to the timestamp alone.

    Every stale-lock takeover emits a structured ``stale_lock_takeover``
    warning (JSON on stderr, via :mod:`repro.telemetry.logs`) naming the
    displaced holder, so silent lock-breaking never hides a crash.

    The lock is *advisory*: readers never take it, and nothing stops a
    process that bypasses :class:`SweepStore` from writing anyway.
    """

    FILENAME = ".lock"

    def __init__(self, directory: str | os.PathLike, *, timeout: float = 30.0,
                 poll: float = 0.05, stale_after: float = 600.0):
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self.timeout = timeout
        self.poll = poll
        self.stale_after = stale_after
        self._handle = None      # fcntl path: the open, flocked file object
        self._owns_file = False  # fallback path: we created the lockfile

    # ------------------------------------------------------------------
    def acquire(self) -> "DirectoryLock":
        self.directory.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                return self
            if time.monotonic() >= deadline:
                raise StoreLockTimeout(
                    f"could not lock store directory {self.directory} within "
                    f"{self.timeout:.1f}s (held by {self._holder()!r}); "
                    "another writer is committing to this sweep"
                )
            time.sleep(self.poll)

    def release(self) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
        elif self._owns_file:
            try:
                self.path.unlink()
            except FileNotFoundError:  # pragma: no cover - broken externally
                pass
            self._owns_file = False

    def __enter__(self) -> "DirectoryLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    def _stamp_line(self) -> str:
        return f"{os.getpid()} {_hostname()} {time.time()}\n"

    def _try_acquire(self) -> bool:
        if fcntl is not None:
            handle = self.path.open("a+", encoding="utf-8")
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                return False
            handle.seek(0)
            handle.truncate()
            handle.write(self._stamp_line())
            handle.flush()
            self._handle = handle
            return True
        try:
            descriptor = os.open(self.path,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            self._break_if_stale()
            return False
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(self._stamp_line())
        self._owns_file = True
        return True

    def _holder(self) -> str:
        try:
            return self.path.read_text(encoding="utf-8").strip()
        except OSError:
            return "unknown"

    #: Unparseable fallback lockfiles younger than this are left alone: a
    #: just-created lock is briefly empty (O_EXCL create, then write), and
    #: breaking it would steal a live holder's lock.
    GARBAGE_GRACE = 5.0

    @staticmethod
    def _parse_holder(content: str) -> tuple[int, Optional[str], float]:
        """Parse a lockfile body: ``pid [hostname] timestamp``.

        The middle hostname field was added for NFS-shared stores; the
        two-field form written by older code still parses (hostname
        ``None`` — treated as this host, the only possibility back then).
        """
        tokens = content.split()
        if len(tokens) == 2:
            return int(tokens[0]), None, float(tokens[1])
        if len(tokens) == 3:
            return int(tokens[0]), tokens[1], float(tokens[2])
        raise ValueError(f"unrecognised lockfile contents: {content!r}")

    def _break_if_stale(self) -> None:
        """Remove a fallback lockfile whose holder is provably gone."""
        try:
            observed = self.path.stat()
            content = self.path.read_text(encoding="utf-8").strip()
        except OSError:
            return  # vanished (or unreadable): just retry the acquire
        pid: Optional[int] = None
        host: Optional[str] = None
        reason = ""
        try:
            pid, host, stamp = self._parse_holder(content)
        except ValueError:
            # Torn/empty contents: stale only once old enough that it
            # cannot be a holder mid-creation.
            stale = time.time() - observed.st_mtime \
                > min(self.stale_after, self.GARBAGE_GRACE)
            reason = "unparseable-contents"
        else:
            if time.time() - stamp > self.stale_after:
                stale = True
                reason = "timestamp-expired"
            elif host is not None and host != _hostname():
                # A foreign host's PID namespace is invisible here: a live
                # PID probe would be meaningless (and a dead one could be a
                # recycled number).  Within stale_after, believe the holder.
                stale = False
            else:
                try:
                    os.kill(pid, 0)
                    stale = False
                except ProcessLookupError:
                    stale = True
                    reason = "holder-pid-dead"
                except OSError:  # pragma: no cover - other user's pid: alive
                    stale = False
        if not stale:
            return
        # Re-check the inode before unlinking: if another contender already
        # broke this lock and a new holder created a fresh file under the
        # same name, deleting it would admit two writers.  (A stat/unlink
        # window remains — the fallback is advisory best-effort; platforms
        # with fcntl never get here.)
        try:
            current = self.path.stat()
        except OSError:
            return
        if (current.st_ino, current.st_mtime_ns) \
                != (observed.st_ino, observed.st_mtime_ns):
            return
        _LOCK_EVENTS.log(
            "stale_lock_takeover", level="warning", path=str(self.path),
            reason=reason, holder_pid=pid, holder_host=host,
            age_seconds=round(time.time() - observed.st_mtime, 3))
        self._unlink_quietly()

    def _unlink_quietly(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


class SweepStore:
    """Resumable sweep-result store — a facade over one pluggable backend.

    Parameters
    ----------
    location:
        A backend instance, or a location string/path: bare paths select
        the ``dir`` backend (the historical layout), ``<scheme>:<path>``
        selects by scheme (``dir:``, ``sqlite:``, ``object:`` — see
        :mod:`repro.sweeps.backends`).

    Writes (:meth:`commit`, :meth:`reset`) are safe under concurrent
    writers on every backend (see the module docstring); reads are
    lock-free.  The dir-specific helpers (:meth:`directory`,
    :meth:`manifest_path`, :meth:`rows_path`, :meth:`lock`) raise
    :class:`~repro.sweeps.spec.SweepError` on other backends — they name
    files that only the directory layout has.
    """

    MANIFEST = LocalDirBackend.MANIFEST
    ROWS = LocalDirBackend.ROWS

    #: Seconds a writer waits for a directory's advisory lock before
    #: giving up with :class:`StoreLockTimeout` (dir backend only).
    LOCK_TIMEOUT = LocalDirBackend.LOCK_TIMEOUT

    def __init__(self, location: StoreBackend | str | os.PathLike):
        if isinstance(location, StoreBackend):
            self.backend = location
        else:
            self.backend = open_backend(os.fspath(location))
        self.scheme = self.backend.scheme
        self.root = self.backend.root

    @property
    def url(self) -> str:
        """The ``<scheme>:<path>`` string that reopens this store."""
        return self.backend.url

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SweepStore {self.url}>"

    # ----------------------------------------------------- dir-only layer
    def _localdir(self) -> LocalDirBackend:
        if not isinstance(self.backend, LocalDirBackend):
            raise SweepError(
                f"the {self.scheme!r} store backend has no per-spec "
                "directories; directory/manifest_path/rows_path/lock apply "
                "to the 'dir' backend only")
        return self.backend

    def directory(self, spec: SweepSpec) -> Path:
        """The store directory of ``spec`` (dir backend only)."""
        return self._localdir().directory(spec)

    def manifest_path(self, spec: SweepSpec) -> Path:
        """Path of the spec's manifest file (dir backend only)."""
        return self._localdir().manifest_path(spec)

    def rows_path(self, spec: SweepSpec) -> Path:
        """Path of the spec's JSONL row file (dir backend only)."""
        return self._localdir().rows_path(spec)

    def lock(self, spec: SweepSpec, *,
             timeout: Optional[float] = None) -> DirectoryLock:
        """The advisory lock of ``spec``'s directory (dir backend only)."""
        return DirectoryLock(self._localdir().directory(spec),
                             timeout=self.LOCK_TIMEOUT if timeout is None
                             else timeout)

    # ------------------------------------------------------- delegation
    def manifest(self, spec: SweepSpec) -> Optional[dict]:
        """The stored manifest of ``spec``, or ``None`` if never committed."""
        return self.backend.manifest(spec)

    def record_telemetry(self, spec: SweepSpec, payload: dict[str, Any]) -> None:
        """Attach the last run's telemetry to the spec's manifest.

        Telemetry is advisory metadata: it is overwritten by each run and
        never affects the rows or the spec hash.
        """
        self.backend.record_telemetry(spec, payload)

    def commit(self, spec: SweepSpec, rows: Iterable[dict[str, Any]]) -> int:
        """Append one shard's completed rows (an atomic shard commit).

        Returns the number of rows handed in.  First commit wins per
        ``point_key``; a crash mid-commit never leaves a torn row visible
        to :meth:`load_rows`.
        """
        return self.backend.commit(spec, rows)

    def load_rows(self, spec: SweepSpec) -> list[dict[str, Any]]:
        """All committed rows of ``spec``, de-duplicated by ``point_key``."""
        return self.backend.load_rows(spec)

    def completed_keys(self, spec: SweepSpec) -> set[str]:
        """The ``point_key`` set of all committed points of ``spec``."""
        return self.backend.completed_keys(spec)

    def reset(self, spec: SweepSpec) -> None:
        """Drop the committed rows of ``spec`` (the manifest is kept)."""
        self.backend.reset(spec)

    def runs(self) -> list[dict]:
        """Manifests of every sweep ever committed to this store."""
        return self.backend.runs()
