"""Measurement kernels executed at each sweep point.

A kernel turns one :class:`~repro.sweeps.spec.SweepPoint` into one result
row.  Every kernel drives the batched ensemble engine
(:class:`~repro.core.ensemble.EnsembleDynamics`): the point's ``replicas``
Monte-Carlo trials advance together as one vectorized ``(R, S)`` system.

Determinism contract
--------------------
:func:`run_point` receives the point's own
:class:`~numpy.random.SeedSequence` (derived from ``(spec.seed,
point.index)`` by the spec) and spawns exactly two children from it — one
for instance randomness (random game families), one for the ensemble run.
No other randomness enters, so a row depends only on ``(spec, point.index)``
and never on the executing shard, worker count, or execution order.

Engine parity
-------------
The experiment-backed measures (``overshoot_ratio``, ``dynamics_work``,
``virtual_agent_nash``, ``network_convergence``, ``error_term_ratio``)
derive *per-replica* random
streams from the run seed and support ``engine="loop"`` alongside the
default ``engine="batch"``:

* ``batch`` advances all replicas through the ensemble engine with
  ``rng_streams`` (or one stacked migration draw for single-round
  measures),
* ``loop`` runs each replica through the historical scalar engine on the
  same generators.

Because both engines draw every replica's migrations from the same stream
with the same shared sampling code, the two paths produce **bit-identical**
rows — the property the engine-parity tests of the ported experiments
assert.  The hitting-time measures predate this contract and support only
``engine="batch"`` and ``engine="native"`` (their loop paths live in
:mod:`repro.analysis.convergence`).

``engine="native"`` routes the multi-round measures through the fused
round kernel (:mod:`repro.core.native`).  The native engine consumes a
*single* random stream per ensemble (the first per-replica stream of the
run seed) and draws its migrations through a different decomposition, so
native rows agree with batch rows in distribution — the "allclose" parity
tier of :data:`repro.engines.PARITY_TIERS` — but not sample-path-wise.
Sweep specs therefore carry the engine in their content hash.  Engine
names are validated by :func:`repro.engines.validate_engine`, so typos
fail immediately with an :class:`~repro.errors.EngineError` naming the
valid backends.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from ..analysis.convergence import HittingTimeResult, measure_hitting_times_ensemble
from ..analysis.martingale import aggregate_potential_increases
from ..baselines.best_response import run_best_response_baseline
from ..baselines.epsilon_greedy import run_epsilon_greedy_baseline
from ..baselines.goldberg import run_goldberg_baseline
from ..baselines.proportional_sampling import ProportionalImitationProtocol
from ..core.dynamics import (
    ConcurrentDynamics,
    StopReason,
    sample_migration_matrices,
    sample_migration_matrix,
)
from ..core.ensemble import (
    EnsembleCollector,
    EnsembleDynamics,
    batch_stop_at_approx_equilibrium,
    batch_stop_at_imitation_stable,
    batch_stop_at_nash,
    batch_stop_from_scalar,
)
from ..core.exploration import ExplorationProtocol
from ..core.hybrid import make_hybrid_protocol
from ..core.imitation import ImitationProtocol
from ..core.metrics import MetricsCollector
from ..core.potential import expected_virtual_potential_gain, potential_breakdown_batch
from ..core.protocols import Protocol
from ..core.run import stop_at_approx_equilibrium, stop_at_nash
from ..core.virtual_agents import VirtualAgentImitationProtocol
from ..engines import validate_engine
from ..games.base import CongestionGame
from ..games.generators import (
    random_linear_singleton,
    random_monomial_singleton,
    two_link_overshoot_game,
    two_link_overshoot_start,
)
from ..games.nash import is_nash
from ..games.network import (
    braess_network_game,
    grid_network_game,
    layered_random_network_game,
    series_parallel_network_game,
)
from ..games.optimum import compute_social_optimum
from ..games.singleton import make_linear_singleton
from ..rng import spawn_rngs
from .spec import SweepError, SweepPoint, SweepSpec, point_key

__all__ = ["GAME_BUILDERS", "PROTOCOL_BUILDERS", "MEASURES",
           "build_game", "build_protocol", "run_point"]

def _check_engine(engine: str) -> None:
    validate_engine(engine, context="sweep kernel")


# ----------------------------------------------------------------------
# Game builders: params + instance seed sequence -> CongestionGame
# ----------------------------------------------------------------------

def _build_linear_singleton(params: Mapping[str, Any],
                            instance_rng: np.random.SeedSequence) -> CongestionGame:
    n = int(params["n"])
    coeffs = params.get("coeffs")
    if coeffs is not None:
        return make_linear_singleton(n, [float(c) for c in coeffs])
    return random_linear_singleton(n, int(params.get("links", 8)), rng=instance_rng)


def _build_monomial_singleton(params: Mapping[str, Any],
                              instance_rng: np.random.SeedSequence) -> CongestionGame:
    return random_monomial_singleton(
        int(params["n"]), int(params.get("links", 8)),
        float(params.get("exponent", 2.0)), rng=instance_rng,
    )


def _network_strategy_kwargs(params: Mapping[str, Any],
                             instance_rng: np.random.SeedSequence,
                             ) -> tuple[np.random.SeedSequence, dict[str, Any]]:
    """Split the instance seed for the bounded strategy samplers.

    Returns ``(coefficient_rng, sampler_kwargs)``.  A ``k_paths`` parameter
    (optionally with an explicit ``strategy_mode``; the default bounded mode
    is the layered-DAG ``"dag-sample"`` sampler) switches the game from
    exhaustive enumeration to a bounded strategy set.  The sampler stream is
    spawned from the point's instance seed, so the strategy set — like
    everything else — is a pure function of ``(spec, point index)`` and
    independent of shard layout or worker count.  In enumeration mode
    (implicit or spelled out) the instance seed is passed through
    unchanged, so writing ``strategy_mode="enumerate"`` explicitly yields
    the same rows as omitting it.
    """
    mode = params.get("strategy_mode")
    k_paths = params.get("k_paths")
    if mode is None and k_paths is not None:
        mode = "dag-sample"
    kwargs: dict[str, Any] = {}
    if "sparse_incidence" in params:
        kwargs["sparse_incidence"] = bool(params["sparse_incidence"])
    if mode in (None, "enumerate"):
        # Spelling out the default mode must not change the rows: only the
        # bounded modes split the instance seed for their sampler stream.
        if mode is not None:
            kwargs["strategy_mode"] = str(mode)
        return instance_rng, kwargs
    graph_seq, path_seq = instance_rng.spawn(2)
    kwargs["strategy_mode"] = str(mode)
    kwargs["path_rng"] = np.random.default_rng(path_seq)
    if k_paths is not None:
        kwargs["num_paths"] = int(k_paths)
    return graph_seq, kwargs


def _build_grid_network(params: Mapping[str, Any],
                        instance_rng: np.random.SeedSequence) -> CongestionGame:
    rng, sampler_kwargs = _network_strategy_kwargs(params, instance_rng)
    return grid_network_game(
        int(params["n"]), rows=int(params.get("rows", 2)),
        cols=int(params.get("cols", 3)),
        degree=int(params.get("degree", 1)), rng=rng, **sampler_kwargs,
    )


def _build_layered_network(params: Mapping[str, Any],
                           instance_rng: np.random.SeedSequence) -> CongestionGame:
    rng, sampler_kwargs = _network_strategy_kwargs(params, instance_rng)
    return layered_random_network_game(
        int(params["n"]), layers=int(params.get("layers", 3)),
        width=int(params.get("width", 3)),
        edge_probability=float(params.get("edge_probability", 0.7)),
        degree=int(params.get("degree", 1)), rng=rng, **sampler_kwargs,
    )


def _build_series_parallel(params: Mapping[str, Any],
                           instance_rng: np.random.SeedSequence) -> CongestionGame:
    rng, sampler_kwargs = _network_strategy_kwargs(params, instance_rng)
    return series_parallel_network_game(
        int(params["n"]), blocks=int(params.get("blocks", 2)),
        links_per_block=int(params.get("links_per_block", 3)),
        degree=int(params.get("degree", 1)), rng=rng, **sampler_kwargs,
    )


def _build_braess(params: Mapping[str, Any],
                  instance_rng: np.random.SeedSequence) -> CongestionGame:
    return braess_network_game(
        int(params["n"]),
        with_shortcut=bool(params.get("with_shortcut", True)),
        scale=float(params.get("scale", 1.0)),
    )


def _build_two_link(params: Mapping[str, Any],
                    instance_rng: np.random.SeedSequence) -> CongestionGame:
    return two_link_overshoot_game(int(params["n"]),
                                   float(params.get("degree", 2.0)))


GAME_BUILDERS: dict[str, Callable[..., CongestionGame]] = {
    "linear-singleton": _build_linear_singleton,
    "monomial-singleton": _build_monomial_singleton,
    "grid-network": _build_grid_network,
    "layered-network": _build_layered_network,
    "series-parallel": _build_series_parallel,
    "braess": _build_braess,
    "two-link": _build_two_link,
}


def build_game(game: str, params: Mapping[str, Any],
               instance_rng: np.random.SeedSequence) -> CongestionGame:
    """Instantiate the point's game (`n` is required for every family)."""
    if game not in GAME_BUILDERS:
        raise SweepError(f"unknown game {game!r}; known: {sorted(GAME_BUILDERS)}")
    if "n" not in params:
        raise SweepError(f"game {game!r} needs an 'n' (players) parameter, "
                         f"got {sorted(params)}")
    return GAME_BUILDERS[game](params, instance_rng)


# ----------------------------------------------------------------------
# Protocol builders: params -> Protocol
# ----------------------------------------------------------------------

def _imitation_kwargs(params: Mapping[str, Any]) -> dict[str, Any]:
    kwargs: dict[str, Any] = {}
    if "lambda_" in params:
        kwargs["lambda_"] = float(params["lambda_"])
    if "use_nu_threshold" in params:
        kwargs["use_nu_threshold"] = bool(params["use_nu_threshold"])
    return kwargs


def _build_imitation(params: Mapping[str, Any]) -> Protocol:
    return ImitationProtocol(**_imitation_kwargs(params))


def _build_proportional(params: Mapping[str, Any]) -> Protocol:
    return ProportionalImitationProtocol(**_imitation_kwargs(params))


def _build_virtual_agents(params: Mapping[str, Any]) -> Protocol:
    kwargs = _imitation_kwargs(params)
    if "virtual_agents" in params:
        kwargs["virtual_agents_per_strategy"] = int(params["virtual_agents"])
    kwargs.pop("use_nu_threshold", None)
    return VirtualAgentImitationProtocol(**kwargs)


def _build_exploration(params: Mapping[str, Any]) -> Protocol:
    if "lambda_" in params:
        return ExplorationProtocol(float(params["lambda_"]))
    return ExplorationProtocol()


def _build_hybrid(params: Mapping[str, Any]) -> Protocol:
    kwargs: dict[str, Any] = {}
    if "imitation_weight" in params:
        kwargs["imitation_weight"] = float(params["imitation_weight"])
    if "use_nu_threshold" in params:
        kwargs["use_nu_threshold"] = bool(params["use_nu_threshold"])
    if "lambda_" in params:
        return make_hybrid_protocol(float(params["lambda_"]), **kwargs)
    return make_hybrid_protocol(**kwargs)


PROTOCOL_BUILDERS: dict[str, Callable[[Mapping[str, Any]], Protocol]] = {
    "imitation": _build_imitation,
    "proportional": _build_proportional,
    "virtual-agents": _build_virtual_agents,
    "exploration": _build_exploration,
    "hybrid": _build_hybrid,
}


def build_protocol(protocol: str, params: Mapping[str, Any]) -> Protocol:
    """Instantiate the point's revision protocol."""
    if protocol not in PROTOCOL_BUILDERS:
        raise SweepError(f"unknown protocol {protocol!r}; "
                         f"known: {sorted(PROTOCOL_BUILDERS)}")
    return PROTOCOL_BUILDERS[protocol](params)


# ----------------------------------------------------------------------
# Hitting-time measures (batch-only; the grid experiments E2/E3)
# ----------------------------------------------------------------------

def _hitting_columns(hitting: HittingTimeResult) -> dict[str, Any]:
    summary = hitting.summary
    return {
        "trials": summary.count,
        "rounds_mean": summary.mean,
        "rounds_median": summary.median,
        "rounds_std": summary.std,
        "rounds_min": summary.minimum,
        "rounds_max": summary.maximum,
        "rounds_ci_low": summary.ci_low,
        "rounds_ci_high": summary.ci_high,
        "censored": hitting.censored,
        "times": [int(t) for t in hitting.times],
    }


def _measure_approx_equilibrium(spec: SweepSpec, params: Mapping[str, Any],
                                game: CongestionGame, protocol: Protocol,
                                run_rng: np.random.SeedSequence,
                                engine: str = "batch") -> dict[str, Any]:
    backend = _ensemble_backend("approx_equilibrium_time", engine)
    stop = batch_stop_at_approx_equilibrium(
        float(params.get("delta", 0.25)),
        float(params.get("epsilon", 0.25)),
        params.get("nu"),
    )
    return _hitting_columns(measure_hitting_times_ensemble(
        game, protocol, stop, trials=spec.replicas,
        max_rounds=int(params.get("max_rounds", spec.max_rounds)), rng=run_rng,
        backend=backend,
    ))


def _measure_imitation_stable(spec: SweepSpec, params: Mapping[str, Any],
                              game: CongestionGame, protocol: Protocol,
                              run_rng: np.random.SeedSequence,
                              engine: str = "batch") -> dict[str, Any]:
    backend = _ensemble_backend("imitation_stable_time", engine)
    stop = batch_stop_at_imitation_stable(params.get("nu"))
    return _hitting_columns(measure_hitting_times_ensemble(
        game, protocol, stop, trials=spec.replicas,
        max_rounds=int(params.get("max_rounds", spec.max_rounds)), rng=run_rng,
        backend=backend,
    ))


def _measure_nash(spec: SweepSpec, params: Mapping[str, Any],
                  game: CongestionGame, protocol: Protocol,
                  run_rng: np.random.SeedSequence,
                  engine: str = "batch") -> dict[str, Any]:
    backend = _ensemble_backend("nash_time", engine)
    stop = batch_stop_at_nash(float(params.get("tolerance", 1e-9)))
    return _hitting_columns(measure_hitting_times_ensemble(
        game, protocol, stop, trials=spec.replicas,
        max_rounds=int(params.get("max_rounds", spec.max_rounds)), rng=run_rng,
        backend=backend,
    ))


def _ensemble_backend(measure: str, engine: str) -> str:
    """Backend for the ensemble-only hitting-time measures.

    These measures run exclusively through
    :func:`measure_hitting_times_ensemble`, which accepts the ``"batch"``
    and ``"native"`` backends; the loop path of the grid experiments lives
    in :mod:`repro.analysis.convergence`.
    """
    _check_engine(engine)
    if engine == "loop":
        raise SweepError(
            f"measure {measure!r} supports engine='batch' or 'native' only; "
            "the loop path of the grid experiments lives in "
            "repro.analysis.convergence"
        )
    return engine


# ----------------------------------------------------------------------
# Shared replica plumbing for the engine-parity measures
# ----------------------------------------------------------------------

def _stacked_migrations(counts: np.ndarray, matrix: np.ndarray, samples: int,
                        gen: np.random.Generator, engine: str) -> np.ndarray:
    """``samples`` single-round migration draws from one shared generator.

    The batch path issues **one** stacked multinomial over all (sample,
    origin) rows; the loop path draws sample by sample.  Both consume the
    generator in the same row order, so the returned stacks are
    bit-identical (the invariant behind the loop/batch R=1 equivalence).
    ``engine="native"`` shares the batch path: a single-round stacked draw
    has no fused kernel (there is no round loop to fuse), so the native
    rows of the single-round measures are bit-identical to batch.
    """
    if engine in ("batch", "native"):
        tiled_counts = np.tile(counts, (samples, 1))
        tiled_matrices = np.tile(matrix, (samples, 1, 1))
        return sample_migration_matrices(tiled_counts, tiled_matrices, gen)
    return np.stack([sample_migration_matrix(counts, matrix, gen)
                     for _ in range(samples)])


def _ensemble_trajectories(
    game: CongestionGame,
    protocol: Protocol,
    initial_states: np.ndarray,
    streams: Sequence[np.random.Generator],
    *,
    max_rounds: int,
    scalar_stop,
    engine: str,
    batch_stop=None,
) -> tuple[list, np.ndarray, np.ndarray]:
    """Replica trajectories under either engine, bit-identical per stream.

    Returns ``(final_states, rounds, converged)`` where ``final_states`` is
    a list of per-replica :class:`~repro.games.state.GameState`-compatible
    count vectors, in replica order.  The batch path advances all replicas
    through :class:`EnsembleDynamics` with per-replica ``rng_streams``; the
    loop path runs each replica through :class:`ConcurrentDynamics` on the
    same generator — identical draws, identical trajectories.

    ``batch_stop`` optionally supplies a natively-vectorised
    :class:`~repro.core.ensemble.BatchStopCondition` equivalent to
    ``scalar_stop``: without it the scalar condition is lifted row by row
    (``batch_stop_from_scalar``), which evaluates the game once per replica
    per round and easily dominates the whole batch run.

    ``engine="native"`` runs the ensemble through the fused round kernel.
    The native engine has no per-replica stream mode: it consumes the
    *first* stream as its single generator, so its trajectories agree with
    the reference pair in distribution (allclose tier), not bit-for-bit.
    """
    if engine in ("batch", "native"):
        if batch_stop is None and scalar_stop is not None:
            batch_stop = batch_stop_from_scalar(scalar_stop)
        if engine == "native":
            dynamics = EnsembleDynamics(game, protocol, rng=streams[0])
            result = dynamics.run(
                initial_states,
                max_rounds=max_rounds,
                stop_condition=batch_stop,
                backend="native",
            )
        else:
            dynamics = EnsembleDynamics(game, protocol, rng=0)
            result = dynamics.run(
                initial_states,
                max_rounds=max_rounds,
                stop_condition=batch_stop,
                rng_streams=list(streams),
            )
        finals = [result.final_states.to_array()[index]
                  for index in range(result.num_replicas)]
        return finals, result.rounds.astype(np.int64), result.converged
    finals = []
    rounds = np.zeros(len(streams), dtype=np.int64)
    converged = np.zeros(len(streams), dtype=bool)
    for index, generator in enumerate(streams):
        dynamics = ConcurrentDynamics(game, protocol, rng=generator)
        trajectory = dynamics.run(
            initial_states[index],
            max_rounds=max_rounds,
            stop_condition=scalar_stop,
        )
        finals.append(trajectory.final_state.counts)
        rounds[index] = trajectory.rounds
        converged[index] = trajectory.stop_reason is not StopReason.MAX_ROUNDS
    return finals, rounds, converged


def _mean_or_none(values: Sequence[float]) -> Optional[float]:
    return float(np.mean(np.asarray(values, dtype=float))) if len(values) else None


def paired_seed_sequence(seed: int, params: Mapping[str, Any],
                         *, exclude: Sequence[str] = ()) -> np.random.SeedSequence:
    """Seed sequence keyed on ``(seed, params minus exclude)``.

    Points that differ only in the excluded axes get the *same* sequence —
    the mechanism behind paired comparisons: the E11 ``dynamics`` axis
    shares one game instance and one set of start states per ``n``, so the
    work comparison is measured on identical workloads.  Still a pure
    function of the spec, so rows stay shard- and worker-independent.
    """
    reduced = {name: value for name, value in params.items()
               if name not in exclude}
    return np.random.SeedSequence([int(seed) & 0xFFFFFFFF,
                                   int(point_key(reduced), 16)])


# ----------------------------------------------------------------------
# Overshooting measure (E5)
# ----------------------------------------------------------------------

def _potential_trajectories(game: CongestionGame, protocol: Protocol,
                            start_counts: np.ndarray,
                            streams: Sequence[np.random.Generator],
                            *, rounds: int, engine: str) -> list[np.ndarray]:
    """Per-replica potential trajectories from a shared start state.

    The native path records through the same :class:`EnsembleCollector`,
    driven by the fused kernel on a single stream (allclose tier).
    """
    if engine in ("batch", "native"):
        collector = EnsembleCollector(game, metrics=("potential",), every=1)
        if engine == "native":
            dynamics = EnsembleDynamics(game, protocol, rng=streams[0])
            result = dynamics.run(
                np.tile(start_counts, (len(streams), 1)),
                max_rounds=rounds,
                collector=collector,
                backend="native",
            )
        else:
            dynamics = EnsembleDynamics(game, protocol, rng=0)
            result = dynamics.run(
                np.tile(start_counts, (len(streams), 1)),
                max_rounds=rounds,
                collector=collector,
                rng_streams=list(streams),
            )
        trace = result.metric("potential")  # (T, R)
        return [trace[:int(result.rounds[index]) + 1, index]
                for index in range(result.num_replicas)]
    trajectories = []
    for generator in streams:
        collector = MetricsCollector(game, track_gain=False)
        dynamics = ConcurrentDynamics(game, protocol, rng=generator)
        dynamics.run(start_counts, max_rounds=rounds, collector=collector)
        trajectories.append(collector.potentials())
    return trajectories


def _measure_overshoot(spec: SweepSpec, params: Mapping[str, Any],
                       game: CongestionGame, protocol: Protocol,
                       run_rng: np.random.SeedSequence,
                       engine: str = "batch") -> dict[str, Any]:
    """One-round overshoot statistics plus long-run potential drift (E5)."""
    _check_engine(engine)
    degree = float(params.get("degree", 2.0))
    fraction = float(params.get("start_latency_fraction", 0.7))
    start = two_link_overshoot_start(game, degree, latency_fraction=fraction)
    counts = start.counts

    constant_latency = float(game.latencies[0].value(np.asarray(0.0)))
    start_loads = game.congestion(start)
    power_before = float(game.latencies[1].value(np.asarray(float(start_loads[1]))))
    gap = constant_latency - power_before
    start_potential = game.potential(counts)

    round_seq, drift_seq = run_rng.spawn(2)
    gen = np.random.default_rng(round_seq)
    probabilities = protocol.switch_probabilities(game, counts)
    migrations = _stacked_migrations(counts, probabilities.matrix,
                                     spec.replicas, gen, engine)
    deltas = migrations.sum(axis=1) - migrations.sum(axis=2)
    post_counts = counts[np.newaxis, :] + deltas
    post_loads = game.congestion_batch(post_counts)  # (R, m)
    power_after = np.asarray(game.latencies[1].value(post_loads[:, 1]), dtype=float)

    overshoot_ratios = (power_after - power_before) / gap
    migrants_worse_off = power_after > constant_latency
    potential_changes = game.potential_batch(post_counts) - start_potential

    drift_rounds = int(params.get("drift_rounds", 30))
    drift_trials = int(params.get("drift_trials", 3))
    drift = aggregate_potential_increases(_potential_trajectories(
        game, protocol, counts, spawn_rngs(drift_seq, drift_trials),
        rounds=drift_rounds, engine=engine,
    ))
    return {
        "trials": spec.replicas,
        "latency_gap_b": gap,
        "mean_overshoot_ratio": float(np.mean(overshoot_ratios)),
        "migrants_worse_off_fraction": float(np.mean(migrants_worse_off)),
        "mean_potential_change_1_round": float(np.mean(potential_changes)),
        "potential_increase_rate_long_run": drift["increase_rate"],
        "max_potential_increase_long_run": drift["max_increase"],
    }


# ----------------------------------------------------------------------
# Dynamics-work measure (E11)
# ----------------------------------------------------------------------

_SEQUENTIAL_DYNAMICS = ("best-response", "epsilon-greedy", "goldberg")


def _measure_dynamics_work(spec: SweepSpec, params: Mapping[str, Any],
                           game: CongestionGame, protocol: Protocol,
                           run_rng: np.random.SeedSequence,
                           engine: str = "batch") -> dict[str, Any]:
    """Work (rounds/moves/probes) of one dynamics to a comparable state (E11).

    ``dynamics`` selects the process: ``"imitation"`` is the concurrent
    protocol (engine-selectable, work = rounds), the members of
    ``_SEQUENTIAL_DYNAMICS`` are the one-move-per-step baselines (work =
    individual moves/probes; inherently serial, identical under both
    engines).  This is a *paired* comparison: the randomness is keyed on
    the point's parameters *excluding* the ``dynamics`` axis
    (:func:`paired_seed_sequence`), so all dynamics of one configuration
    run on the same game instance, the same start states and the same
    per-trial streams — the per-point ``game``/``run_rng`` are deliberately
    not used.  Non-converged replicas are excluded from the work/cost
    means and reported in ``non_converged_trials``.
    """
    _check_engine(engine)
    dynamics_name = str(params.get("dynamics", "imitation"))
    delta = float(params.get("delta", 0.1))
    epsilon = float(params.get("epsilon", 0.1))
    max_rounds = int(params.get("max_rounds", spec.max_rounds))

    pair_rng = paired_seed_sequence(spec.seed, params, exclude=("dynamics",))
    instance_seq, trials_seq = pair_rng.spawn(2)
    game_name = str(params.get("game", spec.game))
    game = build_game(game_name, params, instance_seq)
    optimum = compute_social_optimum(game)

    starts = []
    run_streams = []
    for trial_seq in trials_seq.spawn(spec.replicas):
        start_seq, dynamics_seq = trial_seq.spawn(2)
        starts.append(game.uniform_random_state(np.random.default_rng(start_seq)).counts)
        run_streams.append(np.random.default_rng(dynamics_seq))

    if dynamics_name == "imitation":
        finals, work, converged = _ensemble_trajectories(
            game, protocol, np.stack(starts), run_streams,
            max_rounds=max_rounds,
            scalar_stop=stop_at_approx_equilibrium(delta, epsilon),
            engine=engine,
        )
    elif dynamics_name in _SEQUENTIAL_DYNAMICS:
        finals, work_list, converged_list = [], [], []
        for start, generator in zip(starts, run_streams):
            if dynamics_name == "best-response":
                outcome = run_best_response_baseline(game, initial_state=start,
                                                     rng=generator)
            elif dynamics_name == "epsilon-greedy":
                outcome = run_epsilon_greedy_baseline(game, epsilon,
                                                      initial_state=start,
                                                      rng=generator)
            else:
                outcome = run_goldberg_baseline(
                    game, initial_state=start,
                    max_steps=int(params.get("goldberg_max_steps",
                                             200 * game.num_players)),
                    rng=generator)
            finals.append(outcome.final_state.counts)
            work_list.append(outcome.steps)
            converged_list.append(outcome.converged)
        work = np.asarray(work_list, dtype=np.int64)
        converged = np.asarray(converged_list, dtype=bool)
    else:
        raise SweepError(f"unknown dynamics {dynamics_name!r}; known: "
                         f"{('imitation',) + _SEQUENTIAL_DYNAMICS}")

    costs = np.array([game.social_cost(final) for final in finals], dtype=float)
    converged_work = [float(w) for w, ok in zip(work, converged) if ok]
    converged_costs = [float(c) for c, ok in zip(costs, converged) if ok]
    mean_work = _mean_or_none(converged_work)
    mean_cost = _mean_or_none(converged_costs)
    return {
        "trials": spec.replicas,
        "mean_work": mean_work,
        "work_per_player": (mean_work / game.num_players
                            if mean_work is not None else None),
        "mean_final_cost": mean_cost,
        "cost_over_optimum": (mean_cost / optimum.social_cost
                              if mean_cost is not None else None),
        "non_converged_trials": int(np.sum(~converged)),
    }


# ----------------------------------------------------------------------
# Virtual-agent survival measure (E13)
# ----------------------------------------------------------------------

def _measure_virtual_agent_nash(spec: SweepSpec, params: Mapping[str, Any],
                                game: CongestionGame, protocol: Protocol,
                                run_rng: np.random.SeedSequence,
                                engine: str = "batch") -> dict[str, Any]:
    """Recovery from the all-on-the-slowest-strategy start (E13).

    All replicas start on the strategy with the worst full-load latency and
    run until a Nash equilibrium (or the round budget).  Reports the Nash
    fraction, mean rounds over *converged* replicas, and the explicit
    non-converged count.
    """
    _check_engine(engine)
    tolerance = float(params.get("tolerance", 1e-9))
    max_rounds = int(params.get("max_rounds", spec.max_rounds))
    optimum = compute_social_optimum(game)

    full_load = game.resource_latencies(
        np.full(game.num_resources, float(game.num_players)))
    slowest = int(np.argmax(game.incidence @ full_load))
    start = game.all_on_one_state(slowest).counts

    streams = spawn_rngs(run_rng, spec.replicas)
    finals, rounds, converged = _ensemble_trajectories(
        game, protocol, np.tile(start, (spec.replicas, 1)), streams,
        max_rounds=max_rounds, scalar_stop=stop_at_nash(tolerance), engine=engine,
    )
    reached = np.array([is_nash(game, final, tolerance=tolerance)
                        for final in finals], dtype=bool)
    costs = np.array([game.social_cost(final) for final in finals], dtype=float)
    converged_rounds = [float(r) for r, ok in zip(rounds, converged) if ok]
    mean_cost = float(np.mean(costs))
    return {
        "trials": spec.replicas,
        "nash_reached_fraction": float(np.mean(reached)),
        "mean_rounds_converged": _mean_or_none(converged_rounds),
        "non_converged_trials": int(np.sum(~converged)),
        "mean_final_cost": mean_cost,
        "cost_over_optimum": mean_cost / optimum.social_cost,
    }


# ----------------------------------------------------------------------
# Network-routing convergence measure (E14)
# ----------------------------------------------------------------------

def _measure_network_convergence(spec: SweepSpec, params: Mapping[str, Any],
                                 game: CongestionGame, protocol: Protocol,
                                 run_rng: np.random.SeedSequence,
                                 engine: str = "batch") -> dict[str, Any]:
    """Routing-dynamics convergence on a network topology (E14).

    Replicas start from independent uniform-random path assignments and run
    until a ``(delta, epsilon)``-approximate equilibrium (or the round
    budget).  Besides the convergence statistics the row records the
    realised strategy-set size and edge count — the quantities the
    network-scaling study sweeps — and the mean final social cost (average
    latency), which is what the Braess-paradox comparison reads off.
    Non-converged replicas are excluded from the round/cost means and
    reported in ``non_converged_trials`` (the suite-wide convention).  Both
    engines derive the same per-replica streams, so loop and batch rows are
    bit-identical.
    """
    _check_engine(engine)
    delta = float(params.get("delta", 0.25))
    epsilon = float(params.get("epsilon", 0.25))
    max_rounds = int(params.get("max_rounds", spec.max_rounds))

    starts = []
    run_streams = []
    for trial_seq in run_rng.spawn(spec.replicas):
        start_seq, dynamics_seq = trial_seq.spawn(2)
        starts.append(game.uniform_random_state(
            np.random.default_rng(start_seq)).counts)
        run_streams.append(np.random.default_rng(dynamics_seq))

    finals, rounds, converged = _ensemble_trajectories(
        game, protocol, np.stack(starts), run_streams,
        max_rounds=max_rounds,
        scalar_stop=stop_at_approx_equilibrium(delta, epsilon),
        batch_stop=batch_stop_at_approx_equilibrium(delta, epsilon),
        engine=engine,
    )
    costs = np.array([game.social_cost(final) for final in finals], dtype=float)
    converged_rounds = [float(r) for r, ok in zip(rounds, converged) if ok]
    converged_costs = [float(c) for c, ok in zip(costs, converged) if ok]
    return {
        "trials": spec.replicas,
        "num_paths": game.num_strategies,
        "num_edges": game.num_resources,
        "sparse_incidence": bool(game.uses_sparse_incidence),
        "converged_fraction": float(np.mean(converged)),
        "mean_rounds_converged": _mean_or_none(converged_rounds),
        "non_converged_trials": int(np.sum(~converged)),
        "mean_final_cost": _mean_or_none(converged_costs),
    }


# ----------------------------------------------------------------------
# Error-term measure (F1)
# ----------------------------------------------------------------------

def _measure_error_terms(spec: SweepSpec, params: Mapping[str, Any],
                         game: CongestionGame, protocol: Protocol,
                         run_rng: np.random.SeedSequence,
                         engine: str = "batch") -> dict[str, Any]:
    """Lemma 1 / Lemma 2 error-term statistics over sampled rounds (F1).

    The batch engine draws all ``replicas`` migration samples in one stacked
    multinomial; the loop engine draws them one by one from the same
    generator — bit-identical stacks either way.  The decomposition runs
    through :func:`repro.core.potential.potential_breakdown_batch` in both
    cases.
    """
    _check_engine(engine)
    state_seq, sample_seq = run_rng.spawn(2)
    state = game.uniform_random_state(np.random.default_rng(state_seq))
    counts = state.counts
    probabilities = protocol.switch_probabilities(game, counts)
    gen = np.random.default_rng(sample_seq)
    migrations = _stacked_migrations(counts, probabilities.matrix,
                                     spec.replicas, gen, engine)
    breakdown = potential_breakdown_batch(game, counts, migrations)

    meaningful = breakdown.virtual_gains < -1e-12
    error_ratios = (breakdown.error_sums[meaningful]
                    / np.abs(breakdown.virtual_gains[meaningful]))
    expected_virtual = expected_virtual_potential_gain(game, protocol, counts)
    mean_true = float(np.mean(breakdown.true_gains))
    return {
        "samples": spec.replicas,
        "lemma1_holds_fraction": float(np.mean(breakdown.lemma1_holds)),
        "mean_error_over_virtual": (float(np.mean(error_ratios))
                                    if error_ratios.size else 0.0),
        "expected_virtual_gain": expected_virtual,
        "lemma2_bound_half_virtual": 0.5 * expected_virtual,
        "mean_true_potential_gain": mean_true,
        "lemma2_satisfied": bool(
            mean_true <= 0.5 * expected_virtual
            + 1e-6 * abs(expected_virtual) + 1e-9
        ),
    }


MEASURES: dict[str, Callable[..., dict[str, Any]]] = {
    "approx_equilibrium_time": _measure_approx_equilibrium,
    "imitation_stable_time": _measure_imitation_stable,
    "nash_time": _measure_nash,
    "overshoot_ratio": _measure_overshoot,
    "dynamics_work": _measure_dynamics_work,
    "virtual_agent_nash": _measure_virtual_agent_nash,
    "network_convergence": _measure_network_convergence,
    "error_term_ratio": _measure_error_terms,
}


# ----------------------------------------------------------------------
# The point runner
# ----------------------------------------------------------------------

def run_point(spec: SweepSpec, point: SweepPoint,
              seed_sequence: np.random.SeedSequence,
              *, engine: Optional[str] = None) -> dict[str, Any]:
    """Execute one sweep point and return its result row.

    The row carries the point identity (``point_index``, ``point_key``), the
    point's parameters and the measure's columns — everything
    JSON-serialisable so the store can persist it verbatim.  A ``"game"`` or
    ``"protocol"`` entry in the point's parameters overrides the spec-level
    default, which lets a single sweep compare game families or protocols
    along an axis.  ``engine`` selects the execution engine of the
    measures; ``None`` (the scheduler's call) resolves to ``spec.engine``,
    so the engine choice travels with the spec — and with its content hash.
    The experiments' ``engine="loop"`` parity path overrides it directly.
    """
    if engine is None:
        engine = spec.engine
    _check_engine(engine)
    instance_rng, run_rng = seed_sequence.spawn(2)
    game_name = str(point.params.get("game", spec.game))
    protocol_name = str(point.params.get("protocol", spec.protocol))
    game = build_game(game_name, point.params, instance_rng)
    protocol = build_protocol(protocol_name, point.params)
    columns = MEASURES[spec.measure](spec, point.params, game, protocol,
                                     run_rng, engine=engine)
    return {
        "point_index": point.index,
        "point_key": point.key,
        **point.params,
        **columns,
    }
