"""Measurement kernels executed at each sweep point.

A kernel turns one :class:`~repro.sweeps.spec.SweepPoint` into one result
row.  Every kernel drives the batched ensemble engine
(:class:`~repro.core.ensemble.EnsembleDynamics`): the point's ``replicas``
Monte-Carlo trials advance together as one vectorized ``(R, S)`` system.

Determinism contract
--------------------
:func:`run_point` receives the point's own
:class:`~numpy.random.SeedSequence` (derived from ``(spec.seed,
point.index)`` by the spec) and spawns exactly two children from it — one
for instance randomness (random game families), one for the ensemble run.
No other randomness enters, so a row depends only on ``(spec, point.index)``
and never on the executing shard, worker count, or execution order.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from ..analysis.convergence import HittingTimeResult, measure_hitting_times_ensemble
from ..core.ensemble import (
    batch_stop_at_approx_equilibrium,
    batch_stop_at_imitation_stable,
    batch_stop_at_nash,
)
from ..core.exploration import ExplorationProtocol
from ..core.hybrid import make_hybrid_protocol
from ..core.imitation import ImitationProtocol
from ..core.protocols import Protocol
from ..games.base import CongestionGame
from ..games.generators import (
    random_linear_singleton,
    random_monomial_singleton,
)
from ..games.network import grid_network_game
from ..games.singleton import make_linear_singleton
from .spec import SweepError, SweepPoint, SweepSpec

__all__ = ["GAME_BUILDERS", "PROTOCOL_BUILDERS", "MEASURES",
           "build_game", "build_protocol", "run_point"]


# ----------------------------------------------------------------------
# Game builders: params + instance seed sequence -> CongestionGame
# ----------------------------------------------------------------------

def _build_linear_singleton(params: Mapping[str, Any],
                            instance_rng: np.random.SeedSequence) -> CongestionGame:
    n = int(params["n"])
    coeffs = params.get("coeffs")
    if coeffs is not None:
        return make_linear_singleton(n, [float(c) for c in coeffs])
    return random_linear_singleton(n, int(params.get("links", 8)), rng=instance_rng)


def _build_monomial_singleton(params: Mapping[str, Any],
                              instance_rng: np.random.SeedSequence) -> CongestionGame:
    return random_monomial_singleton(
        int(params["n"]), int(params.get("links", 8)),
        float(params.get("exponent", 2.0)), rng=instance_rng,
    )


def _build_grid_network(params: Mapping[str, Any],
                        instance_rng: np.random.SeedSequence) -> CongestionGame:
    return grid_network_game(
        int(params["n"]), rows=int(params.get("rows", 2)),
        cols=int(params.get("cols", 3)), rng=instance_rng,
    )


GAME_BUILDERS: dict[str, Callable[..., CongestionGame]] = {
    "linear-singleton": _build_linear_singleton,
    "monomial-singleton": _build_monomial_singleton,
    "grid-network": _build_grid_network,
}


def build_game(game: str, params: Mapping[str, Any],
               instance_rng: np.random.SeedSequence) -> CongestionGame:
    """Instantiate the point's game (`n` is required for every family)."""
    if game not in GAME_BUILDERS:
        raise SweepError(f"unknown game {game!r}; known: {sorted(GAME_BUILDERS)}")
    if "n" not in params:
        raise SweepError(f"game {game!r} needs an 'n' (players) parameter, "
                         f"got {sorted(params)}")
    return GAME_BUILDERS[game](params, instance_rng)


# ----------------------------------------------------------------------
# Protocol builders: params -> Protocol
# ----------------------------------------------------------------------

def _build_imitation(params: Mapping[str, Any]) -> Protocol:
    if "lambda_" in params:
        return ImitationProtocol(float(params["lambda_"]))
    return ImitationProtocol()


def _build_exploration(params: Mapping[str, Any]) -> Protocol:
    if "lambda_" in params:
        return ExplorationProtocol(float(params["lambda_"]))
    return ExplorationProtocol()


def _build_hybrid(params: Mapping[str, Any]) -> Protocol:
    kwargs: dict[str, Any] = {}
    if "imitation_weight" in params:
        kwargs["imitation_weight"] = float(params["imitation_weight"])
    if "lambda_" in params:
        return make_hybrid_protocol(float(params["lambda_"]), **kwargs)
    return make_hybrid_protocol(**kwargs)


PROTOCOL_BUILDERS: dict[str, Callable[[Mapping[str, Any]], Protocol]] = {
    "imitation": _build_imitation,
    "exploration": _build_exploration,
    "hybrid": _build_hybrid,
}


def build_protocol(protocol: str, params: Mapping[str, Any]) -> Protocol:
    """Instantiate the point's revision protocol."""
    if protocol not in PROTOCOL_BUILDERS:
        raise SweepError(f"unknown protocol {protocol!r}; "
                         f"known: {sorted(PROTOCOL_BUILDERS)}")
    return PROTOCOL_BUILDERS[protocol](params)


# ----------------------------------------------------------------------
# Measures: hitting times of batched stop conditions
# ----------------------------------------------------------------------

def _measure_approx_equilibrium(spec: SweepSpec, params: Mapping[str, Any],
                                game: CongestionGame, protocol: Protocol,
                                run_rng: np.random.SeedSequence) -> HittingTimeResult:
    stop = batch_stop_at_approx_equilibrium(
        float(params.get("delta", 0.25)),
        float(params.get("epsilon", 0.25)),
        params.get("nu"),
    )
    return measure_hitting_times_ensemble(
        game, protocol, stop, trials=spec.replicas,
        max_rounds=int(params.get("max_rounds", spec.max_rounds)), rng=run_rng,
    )


def _measure_imitation_stable(spec: SweepSpec, params: Mapping[str, Any],
                              game: CongestionGame, protocol: Protocol,
                              run_rng: np.random.SeedSequence) -> HittingTimeResult:
    stop = batch_stop_at_imitation_stable(params.get("nu"))
    return measure_hitting_times_ensemble(
        game, protocol, stop, trials=spec.replicas,
        max_rounds=int(params.get("max_rounds", spec.max_rounds)), rng=run_rng,
    )


def _measure_nash(spec: SweepSpec, params: Mapping[str, Any],
                  game: CongestionGame, protocol: Protocol,
                  run_rng: np.random.SeedSequence) -> HittingTimeResult:
    stop = batch_stop_at_nash(float(params.get("tolerance", 1e-9)))
    return measure_hitting_times_ensemble(
        game, protocol, stop, trials=spec.replicas,
        max_rounds=int(params.get("max_rounds", spec.max_rounds)), rng=run_rng,
    )


MEASURES: dict[str, Callable[..., HittingTimeResult]] = {
    "approx_equilibrium_time": _measure_approx_equilibrium,
    "imitation_stable_time": _measure_imitation_stable,
    "nash_time": _measure_nash,
}


# ----------------------------------------------------------------------
# The point runner
# ----------------------------------------------------------------------

def run_point(spec: SweepSpec, point: SweepPoint,
              seed_sequence: np.random.SeedSequence) -> dict[str, Any]:
    """Execute one sweep point and return its result row.

    The row carries the point identity (``point_index``, ``point_key``), the
    point's parameters, the per-trial hitting times and their summary
    statistics — everything JSON-serialisable so the store can persist it
    verbatim.
    """
    instance_rng, run_rng = seed_sequence.spawn(2)
    game = build_game(spec.game, point.params, instance_rng)
    protocol = build_protocol(spec.protocol, point.params)
    hitting = MEASURES[spec.measure](spec, point.params, game, protocol, run_rng)
    summary = hitting.summary
    return {
        "point_index": point.index,
        "point_key": point.key,
        **point.params,
        "trials": summary.count,
        "rounds_mean": summary.mean,
        "rounds_median": summary.median,
        "rounds_std": summary.std,
        "rounds_min": summary.minimum,
        "rounds_max": summary.maximum,
        "rounds_ci_low": summary.ci_low,
        "rounds_ci_high": summary.ci_high,
        "censored": hitting.censored,
        "times": [int(t) for t in hitting.times],
    }
