"""The shard scheduler: grid points over a multiprocessing worker pool.

:func:`run_sweep` expands a :class:`~repro.sweeps.spec.SweepSpec`, drops the
points already present in the store (resume), partitions the remainder into
contiguous shards and executes the shards over a ``multiprocessing`` pool —
or in-process when ``workers=1``, so single-worker runs stay debuggable and
import-cycle-free.  Each worker re-builds the spec from its plain-dict form,
re-derives the per-point seed sequences and runs the points through
:func:`~repro.sweeps.kernels.run_point`; results are therefore bit-identical
for any worker count or shard size.

The generic :func:`parallel_map` is also what ``python -m repro run-all
--jobs N`` uses to run independent experiments concurrently — one pool
implementation for the whole package.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence, TypeVar

from ..errors import TelemetryError
from ..telemetry import DEFAULT_DURATION_BUCKETS, MetricsRegistry, MetricsSnapshot
from ..telemetry.spans import NO_SPANS, SpanContext, SpanRecorder, current_recorder
from .kernels import run_point
from .spec import SweepError, SweepSpec
from .store import SweepStore

__all__ = ["SweepRunResult", "parallel_map", "partition", "run_sweep"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class SweepRunResult:
    """Outcome of one :func:`run_sweep` invocation.

    Attributes
    ----------
    spec:
        The executed specification.
    rows:
        One row per grid point, sorted by ``point_index`` (cached and
        freshly computed rows are indistinguishable here).
    computed:
        Number of points actually executed this invocation.
    cached:
        Number of points served from the store without recomputation.
    workers:
        Worker processes used (1 means in-process).
    elapsed_seconds:
        Wall-clock duration of the invocation.
    metrics:
        :class:`~repro.telemetry.MetricsSnapshot` of the run — per-point and
        per-shard timing histograms merged back from the worker processes,
        cache-hit/resume counters and worker-utilization gauges added by the
        scheduler.  Telemetry is a side channel: it never contributes
        columns to ``rows`` (which stay byte-identical for any worker
        count) and is persisted in the store manifest, not the row files.
    """

    spec: SweepSpec
    rows: list[dict]
    computed: int
    cached: int
    workers: int
    elapsed_seconds: float
    metrics: Optional[MetricsSnapshot] = None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of grid points served from the store."""
        total = self.computed + self.cached
        return self.cached / total if total else 0.0


def partition(items: Sequence[T], chunk_size: int) -> list[list[T]]:
    """Split ``items`` into contiguous chunks of at most ``chunk_size``."""
    if chunk_size <= 0:
        raise SweepError("chunk_size must be positive")
    return [list(items[start:start + chunk_size])
            for start in range(0, len(items), chunk_size)]


class _IndexedCall:
    """Picklable wrapper tagging each result with its payload index."""

    def __init__(self, func: Callable[[T], R]):
        self.func = func

    def __call__(self, item: tuple[int, T]) -> tuple[int, R]:
        index, payload = item
        return index, self.func(payload)


def parallel_map(
    func: Callable[[T], R],
    payloads: Sequence[T],
    *,
    workers: int = 1,
) -> Iterator[tuple[int, R]]:
    """Yield ``(index, func(payload))`` pairs as they complete.

    With ``workers <= 1`` (or a single payload) everything runs in-process
    in order; otherwise the payloads are distributed over a
    ``multiprocessing`` pool and results arrive in completion order.
    ``func`` must be a module-level (picklable) callable for the pooled
    path.
    """
    if workers < 0:
        raise SweepError("workers must be non-negative")
    count = len(payloads)
    if workers <= 1 or count <= 1:
        for index, payload in enumerate(payloads):
            yield index, func(payload)
        return
    context = multiprocessing.get_context()
    with context.Pool(processes=min(workers, count)) as pool:
        yield from pool.imap_unordered(_IndexedCall(func), list(enumerate(payloads)))


def _run_shard(
    payload: tuple[dict, list[int]] | tuple[dict, list[int], Optional[dict]],
) -> tuple[list[dict], dict, list[dict]]:
    """Worker entry point: run the shard's points of the reconstructed spec.

    The spec crosses the process boundary as a plain dict; points and seed
    sequences are re-derived inside the worker, so a shard's rows depend
    only on the spec and the point indices — never on the pool layout.
    An optional third payload element carries a span context
    (``{"trace_id", "span_id"}``): when present the shard opens a
    ``sweep.shard`` span parented to it and one ``sweep.point`` span per
    point (status ``computed``, ``point_key`` attr).

    Returns ``(rows, metrics, spans)`` where ``metrics`` is the plain-dict
    form of the shard's :class:`~repro.telemetry.MetricsSnapshot`
    (point/shard timings) and ``spans`` is a list of finished span dicts
    (empty when untraced) — both picklable, merged by the scheduler.
    Telemetry lives only in these side channels, never in the rows,
    preserving row byte-identity.
    """
    spec_dict, indices = payload[0], payload[1]
    trace_context = payload[2] if len(payload) > 2 else None
    recorder: SpanRecorder = NO_SPANS
    parent = None
    if trace_context is not None:
        recorder = SpanRecorder(keep=True)
        parent = SpanContext(trace_id=str(trace_context["trace_id"]),
                             span_id=str(trace_context["span_id"]))
    spec = SweepSpec.from_dict(spec_dict)
    points = spec.expand()
    sequences = spec.point_seed_sequences()
    registry = MetricsRegistry()
    point_seconds = registry.histogram(
        "sweep_point_seconds", "Wall time per computed grid point",
        DEFAULT_DURATION_BUCKETS)
    points_total = registry.counter(
        "sweep_points_computed_total", "Grid points computed (not cached)")
    shard_started = time.perf_counter()
    rows = []
    with recorder.span("sweep.shard", parent=parent,
                       attrs={"points": len(indices)}):
        for index in indices:
            with recorder.span("sweep.point") as point_span:
                point_started = time.perf_counter()
                rows.append(run_point(spec, points[index], sequences[index]))
                point_seconds.observe(time.perf_counter() - point_started)
                points_total.inc()
                point_span.set_attr("point_key", points[index].key)
                point_span.set_status("computed")
    registry.histogram(
        "sweep_shard_seconds", "Wall time per shard",
        DEFAULT_DURATION_BUCKETS).observe(time.perf_counter() - shard_started)
    registry.counter("sweep_shards_total", "Shards executed").inc()
    return rows, registry.snapshot().to_dict(), recorder.drain()


def default_chunk_size(pending: int, workers: int) -> int:
    """Shard granularity: ~4 shards per worker for load balancing, >= 1."""
    if pending <= 0:
        return 1
    effective = max(1, workers)
    return max(1, -(-pending // (effective * 4)))


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    store: Optional[SweepStore | str] = None,
    resume: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[Callable[[int, int], Any]] = None,
) -> SweepRunResult:
    """Execute ``spec`` and return all rows (cached + computed).

    Parameters
    ----------
    spec:
        The sweep to run (validated first).
    workers:
        Worker processes; ``1`` runs in-process.
    store:
        Optional :class:`~repro.sweeps.store.SweepStore` (or a root path)
        for resumable, cached execution.  Completed shards are committed as
        they arrive, so an interrupted sweep resumes from its last commit.
    resume:
        With a store, skip points whose ``point_key`` is already committed.
        ``resume=False`` drops the stored rows first and recomputes all.
    chunk_size:
        Points per shard; defaults to :func:`default_chunk_size`.
    progress:
        Optional callback ``(completed_points, pending_points)`` invoked
        after every shard commit.
    """
    started = time.perf_counter()
    spec.validate()
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = SweepStore(store)

    # Spans are ambient: a traced caller (service job execution, a traced
    # CLI run) leaves a recorder + context in the contextvars, and the
    # sweep's spans nest under it.  Untraced callers get NO_SPANS — every
    # span call below is then a constant no-op.
    recorder = current_recorder()
    with recorder.span("sweep.run",
                       attrs={"spec_hash": spec.content_hash(),
                              "workers": max(1, workers)}) as sweep_span:
        points = spec.expand()
        cached_rows: list[dict] = []
        if store is not None:
            if resume:
                current_keys = {point.key for point in points}
                cached_rows = [row for row in store.load_rows(spec)
                               if row.get("point_key") in current_keys]
            else:
                store.reset(spec)
        done = {row["point_key"] for row in cached_rows}
        pending = [point for point in points if point.key not in done]
        sweep_span.set_attr("points_total", len(points))
        sweep_span.set_attr("points_cached", len(cached_rows))
        if recorder.enabled:
            for row in cached_rows:
                with recorder.span("sweep.point") as point_span:
                    point_span.set_attr("point_key", row.get("point_key"))
                    point_span.set_status("cached")

        shards = partition(
            [point.index for point in pending],
            chunk_size or default_chunk_size(len(pending), workers))
        spec_dict = spec.to_dict()
        shard_parent = ({"trace_id": sweep_span.trace_id,
                         "span_id": sweep_span.span_id}
                        if recorder.enabled else None)
        payloads = [(spec_dict, shard, shard_parent) for shard in shards]

        registry = MetricsRegistry()
        commit_seconds = None
        if store is not None:
            commit_seconds = registry.histogram(
                "store_commit_seconds", "Wall time per shard store commit",
                DEFAULT_DURATION_BUCKETS, backend=store.scheme)
        computed_rows: list[dict] = []
        for _, (shard_rows, shard_metrics, shard_spans) in parallel_map(
                _run_shard, payloads, workers=workers):
            if store is not None:
                with recorder.span("store.commit",
                                   attrs={"backend": store.scheme,
                                          "rows": len(shard_rows)}):
                    commit_started = time.perf_counter()
                    store.commit(spec, shard_rows)
                    commit_seconds.observe(
                        time.perf_counter() - commit_started)
            registry.merge(shard_metrics)
            if shard_spans:
                recorder.adopt(shard_spans)
            computed_rows.extend(shard_rows)
            if progress is not None:
                progress(len(computed_rows), len(pending))

    elapsed = time.perf_counter() - started
    effective_workers = max(1, workers)
    registry.counter("sweep_points_cached_total",
                     "Grid points served from the store").inc(len(cached_rows))
    if resume and store is not None and cached_rows:
        registry.counter("sweep_resumed_runs_total",
                         "Invocations that resumed from cached rows").inc()
    registry.gauge("sweep_workers", "Worker processes of the last run").set(
        effective_workers)
    snapshot = registry.snapshot()
    try:
        busy = snapshot.value("sweep_shard_seconds")["sum"]
    except TelemetryError:
        busy = 0.0  # nothing computed (fully cached run)
    registry.gauge(
        "sweep_worker_utilization",
        "Shard busy-time over elapsed x workers capacity, in [0, 1]",
    ).set(min(1.0, busy / (elapsed * effective_workers)) if elapsed > 0 else 0.0)
    snapshot = registry.snapshot()

    if store is not None:
        store.record_telemetry(spec, {
            "elapsed_seconds": elapsed,
            "workers": effective_workers,
            "computed": len(computed_rows),
            "cached": len(cached_rows),
            "metrics": snapshot.to_dict(),
        })

    rows = sorted(cached_rows + computed_rows, key=lambda row: row["point_index"])
    return SweepRunResult(
        spec=spec,
        rows=rows,
        computed=len(computed_rows),
        cached=len(cached_rows),
        workers=effective_workers,
        elapsed_seconds=elapsed,
        metrics=snapshot,
    )
