"""Group-by reducers over sweep rows.

Sweep rows are per-point (already averaged over a point's ensemble
replicas); these helpers reduce *across* points — e.g. mean hitting time by
``n`` marginalised over the ``epsilon`` axis — and hand the heavy lifting to
the existing statistics toolkit (:func:`repro.analysis.statistics.summarize`
for means/CIs, plain quantiles otherwise), so sweep aggregates and
experiment tables share one numerical code path.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..analysis.statistics import summarize
from .spec import SweepError

__all__ = ["DEFAULT_STATS", "aggregate_rows", "explode_column", "group_rows",
           "table_rows"]

#: Reducers applied by default: mean/median with spread and a CI.
DEFAULT_STATS = ("count", "mean", "median", "std", "min", "max",
                 "ci_low", "ci_high")

#: Columns that identify a point rather than measure it — dropped from
#: rendered tables.
_IDENTITY_COLUMNS = ("point_key", "times")


def group_rows(rows: Sequence[Mapping[str, Any]], by: Sequence[str]
               ) -> dict[tuple, list[Mapping[str, Any]]]:
    """Group ``rows`` by the value tuple of the ``by`` columns.

    Groups keep first-appearance order (which for scheduler output means
    point-expansion order, independent of sharding).
    """
    if not by:
        raise SweepError("group_rows needs at least one group-by column")
    groups: dict[tuple, list[Mapping[str, Any]]] = {}
    for row in rows:
        missing = [column for column in by if column not in row]
        if missing:
            raise SweepError(f"row {sorted(row)} lacks group-by column(s) {missing}")
        groups.setdefault(tuple(row[column] for column in by), []).append(row)
    return groups


def _quantile(values: list[float], q: float) -> float:
    return float(np.quantile(np.asarray(values, dtype=float), q))


def _group_values(members: list[Mapping[str, Any]], value: str) -> list[float]:
    values: list[float] = []
    for member in members:
        if value not in member:
            raise SweepError(f"row {sorted(member)} lacks value column {value!r}")
        try:
            values.append(float(member[value]))
        except (TypeError, ValueError):
            raise SweepError(
                f"value column {value!r} is not numeric "
                f"(got {member[value]!r})"
            ) from None
    return values


def _reduce(values: list[float], summary: Mapping[str, float], stat: str) -> float:
    if stat.startswith("q") and stat[1:].isdigit():
        return _quantile(values, int(stat[1:]) / 100.0)
    try:
        return summary[stat]
    except KeyError:
        raise SweepError(
            f"unknown statistic {stat!r}; known: {sorted(summary)} "
            "plus quantiles like 'q25'"
        ) from None


def aggregate_rows(
    rows: Sequence[Mapping[str, Any]],
    *,
    by: Sequence[str],
    value: str = "rounds_mean",
    stats: Sequence[str] = DEFAULT_STATS,
) -> list[dict[str, Any]]:
    """Reduce ``value`` over groups of rows.

    Returns one output row per group — the group columns first, then one
    ``<value>_<stat>`` column per requested statistic.  ``stats`` accepts
    the :class:`~repro.analysis.statistics.TrialSummary` fields plus
    quantile names like ``"q25"``/``"q90"``.
    """
    aggregated: list[dict[str, Any]] = []
    for key, members in group_rows(rows, by).items():
        values = _group_values(members, value)
        summary = summarize(values).as_dict()
        out: dict[str, Any] = dict(zip(by, key))
        for stat in stats:
            out[f"{value}_{stat}"] = _reduce(values, summary, stat)
        aggregated.append(out)
    return aggregated


def explode_column(rows: Sequence[Mapping[str, Any]], column: str = "times"
                   ) -> list[dict[str, Any]]:
    """Flatten a list-valued column into one row per element.

    Turns per-point trial lists back into per-trial rows so that
    :func:`aggregate_rows` can reduce over *raw trials* (e.g. a pooled CI
    over every replica of every point sharing an ``n``) instead of over
    per-point means.
    """
    exploded: list[dict[str, Any]] = []
    for row in rows:
        values = row.get(column)
        if not isinstance(values, (list, tuple)):
            raise SweepError(f"column {column!r} is not list-valued in row "
                             f"{sorted(row)}")
        for value in values:
            flat = {k: v for k, v in row.items() if k != column}
            flat[column[:-1] if column.endswith("s") else f"{column}_value"] = value
            exploded.append(flat)
    return exploded


def table_rows(rows: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Rows with identity/bulk columns stripped, ready for table rendering."""
    return [{key: value for key, value in row.items()
             if key not in _IDENTITY_COLUMNS} for row in rows]
