"""Declarative sweep specifications.

A :class:`SweepSpec` describes a parameter sweep as data: a game family, a
revision protocol, a measurement kernel, and a grid of parameter axes whose
Cartesian product defines the sweep's :class:`SweepPoint`s.  Because the
expansion is purely deterministic (axes are expanded in declaration order)
and every point derives its randomness from ``(spec.seed, point.index)``
through :func:`repro.rng.spawn_seed_sequences`, the results of a sweep are
independent of how its points are sharded across worker processes — running
the same spec with 1 worker or 16 yields bit-identical rows.

Two content hashes anchor the on-disk result store
(:mod:`repro.sweeps.store`):

* :func:`point_key` — a stable digest of one point's parameters, used to
  mark individual points as completed so interrupted sweeps resume where
  they stopped;
* :meth:`SweepSpec.content_hash` — a digest of the whole spec plus
  :data:`CODE_VERSION`, used to key store directories so results computed
  by incompatible kernel versions are never silently reused.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import ReproError
from ..rng import spawn_seed_sequences

__all__ = ["CODE_VERSION", "SweepError", "SweepPoint", "SweepSpec",
           "canonical_json", "point_key"]

#: Bump whenever the measurement kernels change semantics: the store keys
#: results by ``hash(spec + CODE_VERSION)``, so a bump invalidates every
#: cached row computed by the old code instead of silently reusing it.
#: (2: large sparse games auto-switch to CSR incidence evaluation, whose
#: accumulation order differs from the dense BLAS path in the last bits —
#: rows computed by version 1 are no longer reproducible bit-for-bit.)
#: (3: specs carry an ``engine`` field and measures may execute on the
#: native backend, whose migration draws come from a different random
#: decomposition than the batch engine's — rows computed by version 2 keep
#: distinct store keys.)
CODE_VERSION = 3


class SweepError(ReproError):
    """Raised for invalid sweep specifications or scheduler misuse."""


def canonical_json(payload: Any) -> str:
    """Canonical (sorted-key, compact) JSON used for all content hashes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def point_key(params: Mapping[str, Any]) -> str:
    """Stable 16-hex-digit digest of one point's parameter dictionary."""
    return _digest(canonical_json(dict(params)))


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays into plain JSON-serialisable values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class SweepPoint:
    """One fully-instantiated configuration of a sweep.

    Attributes
    ----------
    index:
        Position in the spec's deterministic expansion order; the point's
        seed sequence is ``spec.point_seed_sequences()[index]``.
    params:
        The merged parameter dictionary (``spec.base`` overridden by this
        point's axis values).
    key:
        :func:`point_key` digest of ``params`` — the resume/cache identity
        of the point within its spec.
    """

    index: int
    params: dict[str, Any]
    key: str


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid sweep over games, protocols and parameters.

    Parameters
    ----------
    name:
        Human-readable sweep identifier (also part of the store directory
        name, so keep it filesystem-friendly; it is slugified if not).
    game:
        Game-family identifier resolved by :mod:`repro.sweeps.kernels`
        (e.g. ``"linear-singleton"``).
    protocol:
        Protocol identifier (``"imitation"``, ``"exploration"``,
        ``"hybrid"``, ...).
    measure:
        Measurement-kernel identifier (e.g. ``"approx_equilibrium_time"``).
    axes:
        Mapping from parameter name to the list of values it sweeps over.
        The Cartesian product is expanded with the *last* axis varying
        fastest (like nested for-loops in declaration order).
    base:
        Fixed parameters merged into every point (axis values win on
        collision).
    replicas:
        Number of ensemble replicas (Monte-Carlo trials) per point.
    max_rounds:
        Per-replica round budget.
    seed:
        Master seed; every point derives its own independent seed sequence
        from it by index.
    engine:
        Round engine executing the measure (``"loop"``, ``"batch"`` or
        ``"native"``; see :mod:`repro.engines`).  Part of the spec — and
        thus of :meth:`content_hash` — because the native engine's random
        stream differs from the reference pair, so rows computed by
        different engines must never share a store key.
    """

    name: str
    game: str = "linear-singleton"
    protocol: str = "imitation"
    measure: str = "approx_equilibrium_time"
    axes: dict[str, list] = field(default_factory=dict)
    base: dict[str, Any] = field(default_factory=dict)
    replicas: int = 5
    max_rounds: int = 5_000
    seed: int = 2009
    engine: str = "batch"

    def __post_init__(self):
        axes = {str(name): [_jsonable(v) for v in values]
                for name, values in dict(self.axes).items()}
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "base", _jsonable(dict(self.base)))

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SweepError` on an unusable specification."""
        from .kernels import GAME_BUILDERS, MEASURES, PROTOCOL_BUILDERS

        if not self.name:
            raise SweepError("a sweep needs a non-empty name")
        if self.game not in GAME_BUILDERS:
            raise SweepError(f"unknown game {self.game!r}; "
                             f"known: {sorted(GAME_BUILDERS)}")
        if self.protocol not in PROTOCOL_BUILDERS:
            raise SweepError(f"unknown protocol {self.protocol!r}; "
                             f"known: {sorted(PROTOCOL_BUILDERS)}")
        if self.measure not in MEASURES:
            raise SweepError(f"unknown measure {self.measure!r}; "
                             f"known: {sorted(MEASURES)}")
        # "game"/"protocol" axis or base entries override the spec-level
        # defaults per point (see kernels.run_point) — validate them here so
        # a typo fails before any point executes.
        for field_name, registry in (("game", GAME_BUILDERS),
                                     ("protocol", PROTOCOL_BUILDERS)):
            overrides = list(self.axes.get(field_name, []))
            if field_name in self.base:
                overrides.append(self.base[field_name])
            for value in overrides:
                if value not in registry:
                    raise SweepError(
                        f"unknown {field_name} override {value!r}; "
                        f"known: {sorted(registry)}"
                    )
        if not self.axes:
            raise SweepError("a sweep needs at least one axis")
        for axis, values in self.axes.items():
            if not values:
                raise SweepError(f"axis {axis!r} has no values")
            # Duplicate values collapse to one point_key, which would make
            # a stored sweep lose rows on resume.
            if len({canonical_json(value) for value in values}) != len(values):
                raise SweepError(f"axis {axis!r} has duplicate values")
        if self.replicas <= 0:
            raise SweepError("replicas must be positive")
        if self.max_rounds <= 0:
            raise SweepError("max_rounds must be positive")
        from ..engines import validate_engine

        validate_engine(self.engine, context=f"sweep {self.name!r}")

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Size of the expanded grid."""
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def expand(self) -> list[SweepPoint]:
        """The full grid in deterministic order (last axis fastest)."""
        names = list(self.axes)
        points: list[SweepPoint] = []
        for index, combo in enumerate(itertools.product(*self.axes.values())):
            params = dict(self.base)
            params.update(zip(names, combo))
            points.append(SweepPoint(index=index, params=params,
                                     key=point_key(params)))
        return points

    def point_seed_sequences(self) -> list[np.random.SeedSequence]:
        """One independent seed sequence per point, by expansion index.

        Derived from ``self.seed`` alone, so a point's randomness does not
        depend on which shard or worker process executes it.
        """
        return spawn_seed_sequences(self.seed, self.num_points)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable, crosses process boundaries)."""
        return {
            "name": self.name,
            "game": self.game,
            "protocol": self.protocol,
            "measure": self.measure,
            "axes": {name: list(values) for name, values in self.axes.items()},
            "base": dict(self.base),
            "replicas": self.replicas,
            "max_rounds": self.max_rounds,
            "seed": self.seed,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        if not isinstance(payload, Mapping):
            raise SweepError("a sweep spec must be a JSON object / mapping, "
                             f"got {type(payload).__name__}")
        known = {"name", "game", "protocol", "measure", "axes", "base",
                 "replicas", "max_rounds", "seed", "engine"}
        unknown = set(payload) - known
        if unknown:
            raise SweepError(f"unknown SweepSpec field(s) {sorted(unknown)}; "
                             f"known: {sorted(known)}")
        if "name" not in payload:
            raise SweepError("a sweep spec needs a 'name'")
        try:
            return cls(**{key: payload[key] for key in payload})
        except (TypeError, ValueError) as error:
            raise SweepError(f"invalid sweep spec: {error}") from error

    def to_json(self) -> str:
        """JSON form — the wire format of the sweep service.

        ``SweepSpec.from_json(spec.to_json())`` reconstructs an equal spec
        with the same :meth:`content_hash` (the round-trip the service
        relies on when specs are submitted over HTTP).

        Deliberately *not* sorted-key canonical JSON: the declaration
        order of ``axes`` is semantic (it fixes the point-index → seed
        assignment, see :meth:`content_hash`), and ``json.loads`` preserves
        object order — so the wire format must too.  Two specs differing
        only in axis order serialize differently, exactly as they hash
        differently.
        """
        return json.dumps(self.to_dict(), separators=(",", ":"))  # lint: disable=HASH001 -- wire format preserves axis order; content_hash uses canonical_json

    @classmethod
    def from_json(cls, text: str | bytes) -> "SweepSpec":
        """Inverse of :meth:`to_json` (unknown fields rejected by name)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SweepError(f"sweep spec is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def content_hash(self) -> str:
        """Digest of the spec plus :data:`CODE_VERSION` (the store key).

        The axis declaration order enters the digest explicitly (canonical
        JSON sorts keys): it determines the point-index → seed assignment,
        so reordering axes must not hit the old run's cache.
        """
        return _digest(canonical_json({"spec": self.to_dict(),
                                       "axis_order": list(self.axes),
                                       "code_version": CODE_VERSION}))

    def slug(self) -> str:
        """Filesystem-friendly name used for the store directory."""
        clean = re.sub(r"[^A-Za-z0-9._-]+", "-", self.name).strip("-") or "sweep"
        return f"{clean}-{self.content_hash()}"
