"""The ``object:`` backend — S3-style content-addressed objects under a
filesystem prefix.

Layout (every path component is a content address, so names never
collide and objects are immutable once written)::

    <root>/
      sweeps/
        <spec_hash>/                # SweepSpec.content_hash()
          manifest.json             # immutable: written once per spec
          telemetry.json            # mutable side channel, atomic replace
          points/
            <point_key>.json        # one immutable object per point row

The design mirrors how this layout would sit in an actual object store
(S3, GCS): ``PUT``-if-absent objects keyed by content hashes, no locks, no
append operations.  Implemented over the local filesystem so it is fully
testable offline — pointing ``root`` at a mounted bucket (s3fs, NFS) is
the deployment story.

Concurrency needs no advisory lock at all: each point row lands via
*write-to-temp + hard-link* — ``os.link`` fails atomically with ``EEXIST``
when the object already exists, which implements first-commit-wins without
a read-check-write race.  A crash mid-shard leaves whole point objects
behind (never torn ones: the temp file is fully written and fsynced before
it is linked), so interrupted sweeps resume per point.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Any, Iterable, Optional

from ..spec import SweepSpec
from .base import StoreBackend, manifest_payload

__all__ = ["ObjectStoreBackend"]


class ObjectStoreBackend(StoreBackend):
    """Content-addressed per-point objects keyed by the spec hash."""

    scheme = "object"

    MANIFEST = "manifest.json"
    TELEMETRY = "telemetry.json"
    POINTS = "points"

    # ------------------------------------------------------------- paths
    def sweep_prefix(self, spec_or_hash: SweepSpec | str) -> Path:
        spec_hash = (spec_or_hash if isinstance(spec_or_hash, str)
                     else spec_or_hash.content_hash())
        return self.root / "sweeps" / spec_hash

    def point_path(self, spec: SweepSpec, point_key: str) -> Path:
        return self.sweep_prefix(spec) / self.POINTS / f"{point_key}.json"

    # ---------------------------------------------------------- plumbing
    def _put_if_absent(self, path: Path, data: bytes) -> bool:
        """Atomically create ``path`` with ``data`` unless it exists.

        Returns ``True`` when this call created the object — the object-
        store PUT-if-absent primitive (hard-link onto the final name fails
        with ``EEXIST`` if another writer got there first).
        """
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".tmp-{uuid.uuid4().hex}"
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False  # first committer won; ours was identical anyway
        finally:
            tmp.unlink()

    def _put_replace(self, path: Path, data: bytes) -> None:
        """Atomically create-or-replace ``path`` (mutable side channel)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".tmp-{uuid.uuid4().hex}"
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _ensure_manifest(self, spec: SweepSpec) -> None:
        # NOT sort_keys: axis declaration order in the recorded spec is
        # semantic (point-index -> seed assignment).
        blob = (json.dumps(manifest_payload(spec), indent=2) + "\n")
        self._put_if_absent(self.sweep_prefix(spec) / self.MANIFEST,
                            blob.encode("utf-8"))

    # ------------------------------------------------------------ writes
    def commit(self, spec: SweepSpec, rows: Iterable[dict[str, Any]]) -> int:
        rows = list(rows)
        if not rows:
            return 0
        self._ensure_manifest(spec)
        for row in rows:
            key = row.get("point_key")
            if key is None:
                continue
            # Key order preserved (no sort_keys): byte-stable row objects.
            blob = (json.dumps(row) + "\n").encode("utf-8")
            self._put_if_absent(self.point_path(spec, key), blob)
        return len(rows)

    def reset(self, spec: SweepSpec) -> None:
        points = self.sweep_prefix(spec) / self.POINTS
        if not points.is_dir():
            return
        for path in points.glob("*.json"):
            try:
                path.unlink()
            except FileNotFoundError:  # concurrent reset; already gone
                pass

    def record_telemetry(self, spec: SweepSpec,
                         payload: dict[str, Any]) -> None:
        import time

        self._ensure_manifest(spec)
        blob = json.dumps(dict(payload, recorded_at=time.time()),
                          indent=2) + "\n"
        self._put_replace(self.sweep_prefix(spec) / self.TELEMETRY,
                          blob.encode("utf-8"))

    # ------------------------------------------------------------- reads
    def _read_manifest(self, prefix: Path) -> Optional[dict]:
        path = prefix / self.MANIFEST
        if not path.is_file():
            return None
        with path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        telemetry = prefix / self.TELEMETRY
        if telemetry.is_file():
            with telemetry.open("r", encoding="utf-8") as handle:
                manifest["telemetry"] = json.load(handle)
        return manifest

    def manifest(self, spec: SweepSpec) -> Optional[dict]:
        return self._read_manifest(self.sweep_prefix(spec))

    def load_rows(self, spec: SweepSpec) -> list[dict[str, Any]]:
        points = self.sweep_prefix(spec) / self.POINTS
        if not points.is_dir():
            return []
        rows: list[dict[str, Any]] = []
        for path in points.glob("*.json"):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    rows.append(json.load(handle))
            except (OSError, json.JSONDecodeError):  # pragma: no cover
                continue  # object vanished under a concurrent reset
        # Objects are unordered on disk (directory order is arbitrary);
        # point_index gives the deterministic expansion order back.
        rows.sort(key=lambda row: row.get("point_index", 0))
        return rows

    def completed_keys(self, spec: SweepSpec) -> set[str]:
        points = self.sweep_prefix(spec) / self.POINTS
        if not points.is_dir():
            return set()
        return {path.stem for path in points.glob("*.json")}

    def runs(self) -> list[dict]:
        sweeps = self.root / "sweeps"
        if not sweeps.is_dir():
            return []
        manifests = []
        for prefix in sorted(sweeps.iterdir()):
            manifest = self._read_manifest(prefix)
            if manifest is not None:
                manifests.append(manifest)
        return manifests
