"""Pluggable persistence backends for the sweep store.

Backend selection is URL-style: ``<scheme>:<path>`` strings accepted
everywhere a store used to take a directory path (``run_sweep(store=...)``,
``SweepService``, every CLI ``--store`` flag)::

    dir:.sweeps            # directory-per-spec JSONL + manifest (default)
    sqlite:results.db      # single-file WAL SQLite, transactional commits
    object:/mnt/bucket     # S3-style content-addressed objects

A bare path without a scheme keeps meaning the directory backend, so every
pre-existing invocation and stored root works unchanged.  An optional
``//`` after the colon is tolerated (``sqlite://results.db``) for people
with URL muscle memory.

See :mod:`.base` for the backend contract and the per-backend modules for
their layouts.
"""

from __future__ import annotations

import re

from ..spec import SweepError
from .base import StoreBackend, manifest_payload
from .localdir import LocalDirBackend
from .objectstore import ObjectStoreBackend
from .sqlite import SqliteBackend

__all__ = [
    "BACKENDS",
    "LocalDirBackend",
    "ObjectStoreBackend",
    "SqliteBackend",
    "StoreBackend",
    "manifest_payload",
    "open_backend",
    "parse_store_url",
]

#: Registered backend classes by URL scheme.
BACKENDS: dict[str, type[StoreBackend]] = {
    backend.scheme: backend
    for backend in (LocalDirBackend, SqliteBackend, ObjectStoreBackend)
}

#: Scheme prefix shape: a registered word followed by ``:`` — deliberately
#: matched against the registry (not any ``word:``) so odd-but-legal paths
#: like ``weird:dirname`` fail loudly below instead of silently meaning
#: the dir backend.
_SCHEME = re.compile(r"^([a-z][a-z0-9+.-]*):(.*)$", re.IGNORECASE)


def parse_store_url(location: str) -> tuple[str, str]:
    """Split a store location into ``(scheme, path)``.

    A bare path (no ``<scheme>:`` prefix) maps to the ``dir`` backend.  An
    unknown scheme raises :class:`~repro.sweeps.spec.SweepError` naming the
    registered ones — a typo must never silently create a directory called
    ``sqllite:results.db``.
    """
    match = _SCHEME.match(location)
    if match is None:
        return "dir", location
    scheme, path = match.group(1).lower(), match.group(2)
    if scheme not in BACKENDS:
        raise SweepError(
            f"unknown store backend {scheme!r} in {location!r}; "
            f"known schemes: {sorted(BACKENDS)} (a bare path selects 'dir')")
    if path.startswith("//"):
        path = path[2:]
    if not path:
        raise SweepError(f"store URL {location!r} has an empty path")
    return scheme, path


def open_backend(location: str) -> StoreBackend:
    """Open the backend a ``<scheme>:<path>`` (or bare path) points at."""
    scheme, path = parse_store_url(location)
    return BACKENDS[scheme](path)
