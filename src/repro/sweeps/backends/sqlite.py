"""The ``sqlite:`` backend — one WAL-mode database file, transactional
shard commits.

Where the ``dir:`` backend needs an advisory
:class:`~repro.sweeps.store.DirectoryLock` to keep concurrent writers from
interleaving partial lines, SQLite gives the same guarantees natively:

* **atomic shard commits** — each :meth:`SqliteBackend.commit` is one
  transaction; a crash mid-commit rolls back to nothing instead of leaving
  a torn trailing line;
* **first commit wins** — a unique ``(spec_hash, point_key)`` index with
  ``INSERT OR IGNORE`` makes duplicate completions (a requeued lease racing
  its dead holder, a racy resume) no-ops at the storage layer;
* **concurrent writers** — WAL mode serialises writers on SQLite's own
  file lock (with a busy timeout) while readers proceed lock-free against
  the last committed snapshot.

Rows are stored as their exact JSON serialisation (``payload`` column), so
:meth:`load_rows` returns dicts that re-``json.dumps`` byte-identically to
what the ``dir:`` backend would have written — tables render the same no
matter which backend served them.

Every operation opens a short-lived connection: connections are cheap at
this call rate, never cross threads (the service's HTTP and worker threads
all hit the same backend object), and never leak file handles into forked
sweep workers.
"""

from __future__ import annotations

import json
import sqlite3
import time
from typing import Any, Iterable, Optional

from ..spec import SweepError, SweepSpec
from .base import StoreBackend, manifest_payload

__all__ = ["SqliteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS manifests (
    spec_hash  TEXT PRIMARY KEY,
    slug       TEXT NOT NULL,
    payload    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS rows (
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    spec_hash  TEXT NOT NULL,
    point_key  TEXT NOT NULL,
    payload    TEXT NOT NULL
);
CREATE UNIQUE INDEX IF NOT EXISTS rows_identity
    ON rows (spec_hash, point_key);
"""


class SqliteBackend(StoreBackend):
    """Single-file SQLite store (WAL journal, busy-wait on writer lock)."""

    scheme = "sqlite"

    #: Seconds SQLite retries a locked database before surfacing the error
    #: (the analogue of the dir backend's LOCK_TIMEOUT).
    BUSY_TIMEOUT = 30.0

    def _connect(self) -> sqlite3.Connection:
        self.root.parent.mkdir(parents=True, exist_ok=True)
        try:
            connection = sqlite3.connect(self.root,
                                         timeout=self.BUSY_TIMEOUT)
        except sqlite3.Error as error:
            raise SweepError(
                f"cannot open sqlite store {self.root}: {error}") from error
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.executescript(_SCHEMA)
        return connection

    # ------------------------------------------------------------ writes
    def _ensure_manifest(self, connection: sqlite3.Connection,
                         spec: SweepSpec) -> None:
        # NOT sort_keys: axis declaration order in the recorded spec is
        # semantic (point-index -> seed assignment).
        connection.execute(
            "INSERT OR IGNORE INTO manifests (spec_hash, slug, payload) "
            "VALUES (?, ?, ?)",
            (spec.content_hash(), spec.slug(),
             json.dumps(manifest_payload(spec))))

    def commit(self, spec: SweepSpec, rows: Iterable[dict[str, Any]]) -> int:
        rows = list(rows)
        if not rows:
            return 0
        spec_hash = spec.content_hash()
        records = [(spec_hash, row["point_key"], json.dumps(row))
                   for row in rows if row.get("point_key") is not None]
        connection = self._connect()
        try:
            with connection:  # one transaction: the atomic shard commit
                self._ensure_manifest(connection, spec)
                connection.executemany(
                    "INSERT OR IGNORE INTO rows (spec_hash, point_key, "
                    "payload) VALUES (?, ?, ?)", records)
        finally:
            connection.close()
        return len(rows)

    def reset(self, spec: SweepSpec) -> None:
        connection = self._connect()
        try:
            with connection:
                connection.execute("DELETE FROM rows WHERE spec_hash = ?",
                                   (spec.content_hash(),))
        finally:
            connection.close()

    def record_telemetry(self, spec: SweepSpec,
                         payload: dict[str, Any]) -> None:
        connection = self._connect()
        try:
            with connection:
                self._ensure_manifest(connection, spec)
                row = connection.execute(
                    "SELECT payload FROM manifests WHERE spec_hash = ?",
                    (spec.content_hash(),)).fetchone()
                manifest = json.loads(row[0])
                manifest["telemetry"] = dict(payload,
                                             recorded_at=time.time())
                connection.execute(
                    "UPDATE manifests SET payload = ? WHERE spec_hash = ?",
                    (json.dumps(manifest), spec.content_hash()))
        finally:
            connection.close()

    # ------------------------------------------------------------- reads
    def manifest(self, spec: SweepSpec) -> Optional[dict]:
        if not self.root.exists():
            return None
        connection = self._connect()
        try:
            row = connection.execute(
                "SELECT payload FROM manifests WHERE spec_hash = ?",
                (spec.content_hash(),)).fetchone()
        finally:
            connection.close()
        return json.loads(row[0]) if row is not None else None

    def load_rows(self, spec: SweepSpec) -> list[dict[str, Any]]:
        if not self.root.exists():
            return []
        connection = self._connect()
        try:
            cursor = connection.execute(
                "SELECT payload FROM rows WHERE spec_hash = ? ORDER BY seq",
                (spec.content_hash(),))
            return [json.loads(payload) for (payload,) in cursor]
        finally:
            connection.close()

    def completed_keys(self, spec: SweepSpec) -> set[str]:
        if not self.root.exists():
            return set()
        connection = self._connect()
        try:
            cursor = connection.execute(
                "SELECT point_key FROM rows WHERE spec_hash = ?",
                (spec.content_hash(),))
            return {key for (key,) in cursor}
        finally:
            connection.close()

    def runs(self) -> list[dict]:
        if not self.root.exists():
            return []
        connection = self._connect()
        try:
            cursor = connection.execute(
                "SELECT payload FROM manifests ORDER BY slug")
            return [json.loads(payload) for (payload,) in cursor]
        finally:
            connection.close()
