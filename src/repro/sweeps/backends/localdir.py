"""The ``dir:`` backend — one directory per spec, JSONL rows + manifest.

This is the historical :class:`~repro.sweeps.store.SweepStore` layout,
extracted behind the :class:`~repro.sweeps.backends.base.StoreBackend`
interface byte-for-byte unchanged::

    <root>/
      eps-delta-3f2a9c01d4b8e6f7/     # spec.slug(): name + content hash
        manifest.json                 # the spec, its hash, code version
        rows.jsonl                    # one completed point per line
        .lock                         # advisory DirectoryLock

Crash safety comes from single-write + ``fsync`` shard commits (a torn
trailing line fails to parse and is skipped on load); writer mutual
exclusion from the directory's advisory
:class:`~repro.sweeps.store.DirectoryLock` (``fcntl.flock`` where
available, a hostname-qualified PID lockfile otherwise).  Readers take no
lock.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterable, Optional

from ..spec import SweepSpec
from .base import StoreBackend, manifest_payload

__all__ = ["LocalDirBackend"]


class LocalDirBackend(StoreBackend):
    """Directory-per-spec JSONL + manifest store (the default backend)."""

    scheme = "dir"

    MANIFEST = "manifest.json"
    ROWS = "rows.jsonl"

    #: Seconds a writer waits for a directory's advisory lock before
    #: giving up with :class:`~repro.sweeps.store.StoreLockTimeout`.
    LOCK_TIMEOUT = 30.0

    # ------------------------------------------------------------- paths
    def directory(self, spec: SweepSpec) -> Path:
        """The store directory of ``spec`` (not necessarily existing yet)."""
        return self.root / spec.slug()

    def manifest_path(self, spec: SweepSpec) -> Path:
        """Path of the spec's manifest file."""
        return self.directory(spec) / self.MANIFEST

    def rows_path(self, spec: SweepSpec) -> Path:
        """Path of the spec's JSONL row file."""
        return self.directory(spec) / self.ROWS

    def lock(self, spec: SweepSpec, *, timeout: Optional[float] = None):
        """The advisory lock of ``spec``'s directory (a context manager).

        Imported lazily from :mod:`repro.sweeps.store` so that module
        remains the single home of the lock implementation (tests
        monkeypatch ``repro.sweeps.store.fcntl`` to exercise the
        PID-lockfile fallback).
        """
        from ..store import DirectoryLock

        return DirectoryLock(self.directory(spec),
                             timeout=self.LOCK_TIMEOUT if timeout is None
                             else timeout)

    # ------------------------------------------------------------- reads
    def manifest(self, spec: SweepSpec) -> Optional[dict]:
        path = self.manifest_path(spec)
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_rows(self, spec: SweepSpec) -> list[dict[str, Any]]:
        path = self.rows_path(spec)
        if not path.exists():
            return []
        rows: list[dict[str, Any]] = []
        seen: set[str] = set()
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing write of an interrupted commit
                key = row.get("point_key")
                if key is None or key in seen:
                    continue
                seen.add(key)
                rows.append(row)
        return rows

    def runs(self) -> list[dict]:
        if not self.root.exists():
            return []
        manifests = []
        for directory in sorted(self.root.iterdir()):
            path = directory / self.MANIFEST
            if path.is_file():
                with path.open("r", encoding="utf-8") as handle:
                    manifests.append(json.load(handle))
        return manifests

    # ------------------------------------------------------------ writes
    def _ensure_manifest(self, spec: SweepSpec) -> None:
        path = self.manifest_path(spec)
        if path.exists():
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            # NOT sort_keys: the axis declaration order inside the recorded
            # spec is semantic (point-index -> seed assignment); sorting it
            # here would make SweepSpec.from_dict(manifest["spec"]) hash to
            # a different slug than the directory it sits in.
            json.dump(manifest_payload(spec), handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)

    def commit(self, spec: SweepSpec, rows: Iterable[dict[str, Any]]) -> int:
        rows = list(rows)
        if not rows:
            return 0
        # Key order is preserved (no sort_keys) so a cache-hit run yields
        # rows — and therefore rendered tables — identical to a fresh run.
        blob = "".join(json.dumps(row) + "\n" for row in rows)
        with self.lock(spec):
            self._ensure_manifest(spec)
            with self.rows_path(spec).open("a", encoding="utf-8") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
        return len(rows)

    def reset(self, spec: SweepSpec) -> None:
        path = self.rows_path(spec)
        if path.exists():
            with self.lock(spec):
                if path.exists():
                    path.unlink()

    def record_telemetry(self, spec: SweepSpec, payload: dict[str, Any]) -> None:
        with self.lock(spec):
            self._ensure_manifest(spec)
            path = self.manifest_path(spec)
            with path.open("r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            manifest["telemetry"] = dict(payload, recorded_at=time.time())
            tmp = path.with_suffix(".json.tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2)  # NOT sort_keys (above)
                handle.write("\n")
            os.replace(tmp, path)
