"""The pluggable store-backend contract.

A :class:`StoreBackend` is the persistence seam of the sweep layer: it
implements the read/write/commit/resume contract that
:class:`~repro.sweeps.store.SweepStore` (the facade every caller holds)
delegates to.  Three implementations ship with the package:

======== ======================= ==========================================
scheme   module                  layout
======== ======================= ==========================================
``dir``  :mod:`.localdir`        one directory per spec: JSONL rows + a
                                 JSON manifest (the historical layout)
``sqlite`` :mod:`.sqlite`        one SQLite file in WAL mode, shard commits
                                 as transactions
``object`` :mod:`.objectstore`   S3-style content-addressed objects keyed
                                 by ``spec.content_hash()`` / ``point_key``
                                 under a filesystem prefix
======== ======================= ==========================================

The invariants every backend must uphold (they are what the scheduler,
service and remote-worker fabric rely on):

* **first commit wins** — committing a ``point_key`` that is already stored
  must never replace the stored row.  Rows are deterministic functions of
  ``(spec, point.index)``, so duplicates are identical anyway; the rule
  makes duplicate shard completions (a requeued lease racing its dead
  holder) idempotent at the storage layer too.
* **atomic shard commits** — a crash mid-:meth:`~StoreBackend.commit`
  leaves either nothing or only complete, parseable rows behind (a single
  torn trailing artefact that :meth:`~StoreBackend.load_rows` skips is
  acceptable); interrupted sweeps must resume losslessly.
* **byte-stable rows** — :meth:`~StoreBackend.load_rows` returns dicts that
  ``json.dumps`` back to exactly what was committed (key order preserved),
  so cached reruns render byte-identical tables.
* **lock-free reads** — readers never block writers; consistency comes
  from commit atomicity.
"""

from __future__ import annotations

import abc
import time
from pathlib import Path
from typing import Any, ClassVar, Iterable, Optional

from ..spec import CODE_VERSION, SweepSpec

__all__ = ["StoreBackend", "manifest_payload"]


def manifest_payload(spec: SweepSpec) -> dict[str, Any]:
    """The canonical manifest document every backend stores per spec.

    The recorded ``spec`` preserves axis declaration order (it is semantic:
    it fixes the point-index → seed assignment), which is why backends must
    never serialise it with ``sort_keys``.
    """
    return {
        "name": spec.name,
        "spec": spec.to_dict(),
        "spec_hash": spec.content_hash(),
        "code_version": CODE_VERSION,
        "num_points": spec.num_points,
        "created_at": time.time(),
    }


class StoreBackend(abc.ABC):
    """Abstract persistence backend behind :class:`SweepStore`.

    Parameters
    ----------
    root:
        The backend's filesystem anchor — a directory for ``dir`` and
        ``object``, a database file for ``sqlite``.  It need not exist yet;
        backends create it lazily on first write.
    """

    #: URL scheme this backend registers under (``dir``, ``sqlite``, ...).
    scheme: ClassVar[str] = ""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def url(self) -> str:
        """The ``<scheme>:<path>`` string that reopens this backend."""
        return f"{self.scheme}:{self.root}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.url}>"

    # ------------------------------------------------------------- writes
    @abc.abstractmethod
    def commit(self, spec: SweepSpec, rows: Iterable[dict[str, Any]]) -> int:
        """Persist one shard's completed rows atomically; first commit wins.

        Returns the number of rows handed in (duplicates count — the caller
        measures shard size, not storage deltas).  Rows without a
        ``point_key`` are not stored: they would be invisible to
        :meth:`load_rows` anyway.
        """

    @abc.abstractmethod
    def reset(self, spec: SweepSpec) -> None:
        """Drop the committed rows of ``spec`` (manifests are kept)."""

    @abc.abstractmethod
    def record_telemetry(self, spec: SweepSpec,
                         payload: dict[str, Any]) -> None:
        """Attach the last run's telemetry stanza to the spec's manifest.

        Advisory metadata: overwritten by each run, never part of the rows,
        never part of any content hash.
        """

    # -------------------------------------------------------------- reads
    @abc.abstractmethod
    def manifest(self, spec: SweepSpec) -> Optional[dict[str, Any]]:
        """The stored manifest of ``spec``, or ``None`` if never committed."""

    @abc.abstractmethod
    def load_rows(self, spec: SweepSpec) -> list[dict[str, Any]]:
        """All committed rows of ``spec``, de-duplicated by ``point_key``.

        Duplicated points keep their *first* committed row; torn artefacts
        of an interrupted commit are skipped.
        """

    @abc.abstractmethod
    def runs(self) -> list[dict[str, Any]]:
        """Manifests of every sweep ever committed to this backend."""

    def completed_keys(self, spec: SweepSpec) -> set[str]:
        """The ``point_key`` set of all committed points of ``spec``."""
        return {row["point_key"] for row in self.load_rows(spec)}
