"""Round-engine registry: names, validation, and runtime capabilities.

Three engines execute the concurrent dynamics:

* ``"loop"`` — :class:`~repro.core.dynamics.ConcurrentDynamics`, one Python
  round loop per trajectory (the reference implementation);
* ``"batch"`` — :class:`~repro.core.ensemble.EnsembleDynamics`, all replicas
  advanced together through broadcasted numpy (bit-identical to ``loop``
  under per-replica rng streams);
* ``"native"`` — :mod:`repro.core.native`, a fused per-round kernel
  (numba-JIT when numba is installed, vectorised numpy otherwise) that never
  materialises the ``(R, S, S)`` switch tensor.

Every surface accepting an ``engine=`` argument validates it here, so an
unknown name fails immediately with a :class:`~repro.errors.EngineError`
listing the valid backends instead of surfacing as a backend-specific error
deep inside a run.  ``docs/ENGINE.md`` documents the parity contract between
the engines.
"""

from __future__ import annotations

from .errors import EngineError

__all__ = ["ENGINES", "DEFAULT_ENGINE", "PARITY_TIERS", "validate_engine",
           "engine_runtime_info"]

#: All round engines, in documentation order.
ENGINES = ("loop", "batch", "native")

#: The engine used when a caller does not choose one explicitly.
DEFAULT_ENGINE = "batch"

#: Reproducibility tier of each engine relative to the reference pair.
#: ``loop`` and ``batch`` are bit-identical to each other (same stacked
#: multinomial draws under per-replica rng streams); ``native`` is
#: deterministic given its seed but draws migrations through a different
#: (binomial-chain) decomposition, so it agrees with ``batch`` in
#: distribution and on every deterministic quantity (allclose), not
#: sample-path-wise.  See docs/ENGINE.md.
PARITY_TIERS = {
    "loop": "bit-identical",
    "batch": "bit-identical",
    "native": "allclose",
}


def validate_engine(engine: str, *, allowed: tuple[str, ...] = ENGINES,
                    context: str = "") -> str:
    """Return ``engine`` unchanged or raise :class:`EngineError` naming the
    valid backends.  ``context`` (e.g. ``"sweep kernel"``) prefixes the
    message so the failing surface is obvious."""
    if engine in allowed:
        return engine
    where = f"{context}: " if context else ""
    raise EngineError(
        f"{where}unknown engine {engine!r}; valid engines: {list(allowed)}"
    )


def engine_runtime_info() -> dict:
    """Engine availability/capability snapshot for ``repro info`` and the
    service health endpoint."""
    from .core.native import NUMBA_AVAILABLE, numba_version

    return {
        "engines": list(ENGINES),
        "default_engine": DEFAULT_ENGINE,
        "parity_tiers": dict(PARITY_TIERS),
        "numba_available": NUMBA_AVAILABLE,
        "numba_version": numba_version(),
        "native_mode": "numba-jit" if NUMBA_AVAILABLE else "numpy-fallback",
    }
