"""Persisting trajectories and experiment results.

Long experiment campaigns want their raw data on disk: per-round metric
records for plotting, and experiment tables for later aggregation.  This
module provides a small, dependency-free JSON/CSV layer:

* :func:`records_to_dicts` / :func:`save_records_csv` /
  :func:`save_records_json` — per-round :class:`RoundRecord` sequences,
* :func:`save_experiment_result` / :func:`load_experiment_result` — the
  :class:`~repro.experiments.registry.ExperimentResult` tables produced by
  the harness,
* :func:`trajectory_summary` — a compact dictionary summary of a
  :class:`~repro.core.dynamics.TrajectoryResult` suitable for logging.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence, Union

from ..core.dynamics import TrajectoryResult
from ..core.metrics import RoundRecord
from ..experiments.registry import ExperimentResult

PathLike = Union[str, Path]

__all__ = [
    "records_to_dicts",
    "save_records_csv",
    "save_records_json",
    "load_records_json",
    "trajectory_summary",
    "save_experiment_result",
    "load_experiment_result",
]


def records_to_dicts(records: Sequence[RoundRecord]) -> list[dict]:
    """Convert round records to plain dictionaries (JSON/CSV friendly)."""
    return [asdict(record) for record in records]


def save_records_csv(records: Sequence[RoundRecord], path: PathLike) -> Path:
    """Write round records to a CSV file (one row per recorded round)."""
    path = Path(path)
    rows = records_to_dicts(records)
    if not rows:
        raise ValueError("cannot save an empty record sequence")
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def save_records_json(records: Sequence[RoundRecord], path: PathLike) -> Path:
    """Write round records to a JSON file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(records_to_dicts(records), handle, indent=2)
    return path


def load_records_json(path: PathLike) -> list[RoundRecord]:
    """Read round records back from :func:`save_records_json` output."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        rows = json.load(handle)
    return [RoundRecord(**row) for row in rows]


def trajectory_summary(result: TrajectoryResult) -> dict:
    """Compact, JSON-serialisable summary of a trajectory."""
    summary = {
        "rounds": result.rounds,
        "stop_reason": result.stop_reason.value,
        "total_migrations": result.total_migrations,
        "final_counts": result.final_state.counts.tolist(),
        "converged": result.converged,
    }
    if result.records:
        summary["initial_potential"] = result.records[0].potential
        summary["final_potential"] = result.records[-1].potential
    return summary


def save_experiment_result(result: ExperimentResult, path: PathLike) -> Path:
    """Write an experiment result (rows, notes, parameters) to JSON."""
    path = Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "claim": result.claim,
        "rows": result.rows,
        "notes": result.notes,
        "parameters": result.parameters,
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path


def load_experiment_result(path: PathLike) -> ExperimentResult:
    """Read an experiment result back from :func:`save_experiment_result` output."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        claim=payload["claim"],
        rows=payload["rows"],
        notes=payload["notes"],
        parameters=payload["parameters"],
    )
