"""Strategy-extinction tracking (Theorem 9).

The IMITATION PROTOCOL is not innovative: once the last user of a strategy
leaves it, the strategy is lost for good.  Theorem 9 shows that for singleton
games with ``l_e(0) = 0`` latencies (normalised to the population,
``l^n(x) = l(x/n)``) and random initialisation, the probability that *any*
edge is emptied within polynomially many rounds is ``2^{-Omega(n)}``.

The helpers here run trajectories while watching the support of the state
and report extinction events, minimum observed congestions and the empirical
extinction probability over trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.dynamics import ConcurrentDynamics
from ..core.ensemble import EnsembleDynamics
from ..core.protocols import Protocol
from ..games.base import CongestionGame
from ..games.state import StateLike
from ..rng import RngLike, ensure_rng, spawn_rngs
from .statistics import probability_estimate

__all__ = ["SurvivalTrace", "run_with_extinction_tracking", "estimate_extinction_probability"]


@dataclass(frozen=True)
class SurvivalTrace:
    """Support history of one trajectory.

    Attributes
    ----------
    rounds:
        Number of rounds executed.
    extinction_round:
        First round after which some initially-used resource had zero
        congestion, or ``None`` if that never happened.
    min_congestion:
        The smallest per-resource congestion observed at any recorded round
        (restricted to resources that were used initially).
    final_support:
        Number of resources with positive congestion at the end.
    """

    rounds: int
    extinction_round: Optional[int]
    min_congestion: float
    final_support: int

    @property
    def extinct(self) -> bool:
        """True if some initially-used resource was emptied."""
        return self.extinction_round is not None


def run_with_extinction_tracking(
    game: CongestionGame,
    protocol: Protocol,
    *,
    rounds: int,
    initial_state: Optional[StateLike] = None,
    rng: RngLike = None,
) -> SurvivalTrace:
    """Run ``rounds`` rounds and watch the congestion of initially-used resources."""
    gen = ensure_rng(rng)
    dynamics = ConcurrentDynamics(game, protocol, rng=gen)
    if initial_state is None:
        initial_state = game.uniform_random_state(gen)
    counts = game.validate_state(initial_state).copy()
    initial_loads = game.congestion(counts)
    watched = initial_loads > 0

    extinction_round: Optional[int] = None
    min_congestion = float(np.min(initial_loads[watched])) if np.any(watched) else 0.0

    executed = 0
    for round_index in range(rounds):
        probabilities = dynamics.protocol.switch_probabilities(game, counts)
        if probabilities.is_quiescent(counts):
            break
        from ..core.dynamics import sample_migration_matrix  # local to avoid cycle at import

        migration = sample_migration_matrix(counts, probabilities.matrix, gen)
        delta = migration.sum(axis=0) - migration.sum(axis=1)
        counts = counts + delta
        executed = round_index + 1
        loads = game.congestion(counts)
        if np.any(watched):
            min_congestion = min(min_congestion, float(np.min(loads[watched])))
            if extinction_round is None and np.any(loads[watched] <= 0):
                extinction_round = executed
    final_loads = game.congestion(counts)
    return SurvivalTrace(
        rounds=executed,
        extinction_round=extinction_round,
        min_congestion=min_congestion,
        final_support=int(np.count_nonzero(final_loads > 0)),
    )


def _estimate_extinction_probability_batch(
    game: CongestionGame,
    protocol: Protocol,
    *,
    rounds: int,
    trials: int,
    rng: RngLike = 0,
) -> dict[str, float]:
    """Batched extinction estimate: all trials advance as one ensemble and a
    per-round observer watches the congestion of initially-used resources."""
    gen = ensure_rng(rng)
    dynamics = EnsembleDynamics(game, protocol, rng=gen)
    initial = game.uniform_random_batch_state(trials, gen)
    initial_loads = game.congestion_batch(initial)  # (R, m)
    watched = initial_loads > 0

    min_congestion = np.where(
        np.any(watched, axis=1),
        np.where(watched, initial_loads, np.inf).min(axis=1),
        0.0,
    )
    extinction_round = np.full(trials, -1, dtype=np.int64)

    def observer(game_: CongestionGame, counts: np.ndarray,
                 indices: np.ndarray, round_index: int) -> None:
        loads = game_.congestion_batch(counts[indices])
        masked = np.where(watched[indices], loads, np.inf)
        lows = masked.min(axis=1)
        lows = np.where(np.isfinite(lows), lows, 0.0)
        min_congestion[indices] = np.minimum(min_congestion[indices], lows)
        emptied = (lows <= 0.0) & np.any(watched[indices], axis=1)
        fresh = emptied & (extinction_round[indices] < 0)
        extinction_round[indices[fresh]] = round_index

    dynamics.run(initial, max_rounds=rounds, observer=observer)
    extinctions = int(np.count_nonzero(extinction_round >= 0))
    estimate, upper = probability_estimate(extinctions, trials)
    return {
        "trials": float(trials),
        "extinctions": float(extinctions),
        "probability": estimate,
        "probability_upper_bound": upper,
        "min_congestion": float(min_congestion.min()) if trials else 0.0,
    }


def estimate_extinction_probability(
    game_factory: Callable[[], CongestionGame],
    protocol: Protocol,
    *,
    rounds: int,
    trials: int,
    rng: RngLike = 0,
    engine: str = "batch",
) -> dict[str, float]:
    """Empirical probability that any initially-used resource empties within
    ``rounds`` rounds, over ``trials`` independent runs.

    Returns the point estimate, an upper confidence bound (rule of three when
    no extinction is ever observed), and the worst (smallest) congestion seen.
    With ``engine="batch"`` (default) the factory is called once and all
    trials run as a vectorized ensemble; ``engine="loop"`` preserves the
    one-trajectory-per-trial behaviour.
    """
    if engine == "batch":
        return _estimate_extinction_probability_batch(
            game_factory(), protocol, rounds=rounds, trials=trials, rng=rng,
        )
    if engine != "loop":
        raise ValueError(f"unknown engine {engine!r}; use 'loop' or 'batch'")
    generators = spawn_rngs(rng, trials)
    extinctions = 0
    min_congestion = float("inf")
    for generator in generators:
        game = game_factory()
        trace = run_with_extinction_tracking(game, protocol, rounds=rounds, rng=generator)
        if trace.extinct:
            extinctions += 1
        min_congestion = min(min_congestion, trace.min_congestion)
    estimate, upper = probability_estimate(extinctions, trials)
    return {
        "trials": float(trials),
        "extinctions": float(extinctions),
        "probability": estimate,
        "probability_upper_bound": upper,
        "min_congestion": min_congestion,
    }
