"""Price of Imitation and related efficiency ratios.

Section 5.1 defines the *Price of Imitation* of an instance as the ratio
between the expected social cost (average latency) of the state the
IMITATION PROTOCOL converges to — expectation over the protocol's randomness
*including* the random initialisation — and the optimum social cost.
Theorem 10 bounds it by ``3 + o(1)`` for linear singleton games without
useless links.

For context the module also computes the classical price of anarchy
(worst Nash equilibrium found over restarts of best response) and the price
of stability flavour (best Nash found), so that the experiment tables can
show where the imitation outcome sits between the optimum and the worst
equilibrium.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.dynamics import StopReason
from ..core.ensemble import EnsembleDynamics, batch_stop_at_imitation_stable
from ..core.protocols import Protocol
from ..core.run import run_until_imitation_stable
from ..games.base import CongestionGame
from ..games.nash import run_best_response
from ..games.optimum import compute_social_optimum
from ..games.singleton import SingletonCongestionGame
from ..rng import RngLike, spawn_rngs
from .statistics import TrialSummary, summarize

__all__ = ["PriceOfImitationResult", "estimate_price_of_imitation", "nash_cost_range"]


@dataclass(frozen=True)
class PriceOfImitationResult:
    """Monte-Carlo estimate of the Price of Imitation of one instance."""

    optimum_cost: float
    fractional_optimum_cost: Optional[float]
    expected_cost: float
    cost_summary: TrialSummary
    price_of_imitation: float
    price_vs_fractional: Optional[float]
    unconverged_trials: int


def estimate_price_of_imitation(
    game: CongestionGame,
    protocol: Protocol,
    *,
    trials: int = 20,
    max_rounds: int = 100_000,
    rng: RngLike = 0,
    engine: str = "batch",
) -> PriceOfImitationResult:
    """Estimate ``I_Gamma / OPT`` by running the protocol to an
    imitation-stable state from independent random initialisations.

    ``engine="batch"`` (default) runs all trials as one vectorized ensemble;
    ``engine="loop"`` runs them sequentially with spawned generators.
    """
    optimum = compute_social_optimum(game)
    fractional_cost: Optional[float] = None
    if isinstance(game, SingletonCongestionGame) and game.is_linear:
        fractional_cost = game.optimal_fractional_cost()

    costs: list[float] = []
    unconverged = 0
    if engine == "batch":
        dynamics = EnsembleDynamics(game, protocol, rng=rng)
        result = dynamics.run(
            replicas=trials,
            max_rounds=max_rounds,
            stop_condition=batch_stop_at_imitation_stable(),
        )
        unconverged = sum(1 for reason in result.stop_reasons
                          if reason is StopReason.MAX_ROUNDS)
        costs = [float(c) for c in game.social_cost_batch(result.final_states)]
    elif engine == "loop":
        generators = spawn_rngs(rng, trials)
        for generator in generators:
            result = run_until_imitation_stable(
                game, protocol, max_rounds=max_rounds, rng=generator,
            )
            if not result.converged:
                unconverged += 1
            costs.append(float(game.social_cost(result.final_state)))
    else:
        raise ValueError(f"unknown engine {engine!r}; use 'loop' or 'batch'")
    summary = summarize(costs)
    expected_cost = summary.mean
    return PriceOfImitationResult(
        optimum_cost=optimum.social_cost,
        fractional_optimum_cost=fractional_cost,
        expected_cost=expected_cost,
        cost_summary=summary,
        price_of_imitation=expected_cost / optimum.social_cost if optimum.social_cost > 0 else float("inf"),
        price_vs_fractional=(expected_cost / fractional_cost) if fractional_cost else None,
        unconverged_trials=unconverged,
    )


def nash_cost_range(
    game: CongestionGame,
    *,
    restarts: int = 10,
    max_steps: int = 200_000,
    rng: RngLike = 0,
) -> dict[str, float]:
    """Best and worst social cost among Nash equilibria found by
    best-response descent from random restarts.

    This is a sampling-based stand-in for the price of anarchy / stability
    (exact enumeration of all equilibria is exponential); it provides the
    context rows of the E8 table.
    """
    generators = spawn_rngs(rng, restarts)
    costs: list[float] = []
    for generator in generators:
        start = game.uniform_random_state(generator)
        final, _ = run_best_response(game, start, max_steps=max_steps, rng=generator)
        costs.append(float(game.social_cost(final)))
    optimum = compute_social_optimum(game)
    best = float(np.min(costs))
    worst = float(np.max(costs))
    return {
        "optimum_cost": optimum.social_cost,
        "best_nash_cost": best,
        "worst_nash_cost": worst,
        "price_of_anarchy_sampled": worst / optimum.social_cost if optimum.social_cost > 0 else float("inf"),
        "price_of_stability_sampled": best / optimum.social_cost if optimum.social_cost > 0 else float("inf"),
    }
