"""Aggregation of Monte-Carlo trials.

All of the paper's quantitative statements are about expectations or
high-probability events; the experiments estimate them by repeating each
configuration over independent seeds.  This module holds the small
statistics toolkit used everywhere: summaries with normal-approximation
confidence intervals, simple bootstrap intervals, and empirical probability
estimates with rule-of-three handling for zero-count events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..rng import RngLike, ensure_rng

__all__ = ["TrialSummary", "summarize", "bootstrap_mean_interval", "probability_estimate"]


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics of a set of scalar trial outcomes."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict[str, float]:
        """Dictionary form used by the table renderer."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def summarize(values: Sequence[float], *, confidence: float = 0.95) -> TrialSummary:
    """Mean/spread summary with a normal-approximation confidence interval.

    With fewer than two samples the interval degenerates to the point
    estimate.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = float(np.mean(array))
    std = float(np.std(array, ddof=1)) if array.size > 1 else 0.0
    z = _normal_quantile(0.5 + confidence / 2.0)
    half_width = z * std / math.sqrt(array.size) if array.size > 1 else 0.0
    return TrialSummary(
        count=int(array.size),
        mean=mean,
        std=std,
        minimum=float(np.min(array)),
        median=float(np.median(array)),
        maximum=float(np.max(array)),
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


def bootstrap_mean_interval(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: RngLike = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if array.size == 1:
        return float(array[0]), float(array[0])
    gen = ensure_rng(rng)
    indices = gen.integers(0, array.size, size=(resamples, array.size))
    means = array[indices].mean(axis=1)
    lower = float(np.quantile(means, (1.0 - confidence) / 2.0))
    upper = float(np.quantile(means, 1.0 - (1.0 - confidence) / 2.0))
    return lower, upper


def probability_estimate(successes: int, trials: int, *, confidence: float = 0.95
                         ) -> tuple[float, float]:
    """Empirical probability with an upper confidence bound.

    For zero observed successes the rule of three ``3/n`` (generalised to the
    requested confidence) gives a meaningful upper bound — exactly what the
    extinction experiment (Theorem 9) needs when no edge ever empties.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    estimate = successes / trials
    if successes == 0:
        upper = 1.0 - (1.0 - confidence) ** (1.0 / trials)
        return 0.0, float(min(1.0, upper))
    # Normal approximation on the proportion otherwise.
    z = _normal_quantile(0.5 + confidence / 2.0)
    half_width = z * math.sqrt(estimate * (1.0 - estimate) / trials)
    return float(estimate), float(min(1.0, estimate + half_width))


def _normal_quantile(p: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation).

    Implemented locally so the statistics helpers work without scipy.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie strictly between 0 and 1")
    # Coefficients for the rational approximations.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
