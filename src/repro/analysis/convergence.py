"""Hitting-time measurement and scaling fits.

Theorem 7 predicts that the expected number of rounds to the first
(delta, eps, nu)-equilibrium scales like ``d / (eps^2 delta) * log(Phi(x0)/Phi*)``
— in particular only logarithmically in the number of players once the other
parameters are fixed.  The experiments estimate hitting times over seeded
trials and then check the *shape* of the scaling by fitting logarithmic /
power-law models to the measured curve and comparing their quality
(``fit_logarithmic``, ``fit_power_law``, ``compare_scaling_models``).

Two measurement engines are available:

* ``engine="batch"`` (default) runs all trials as one vectorized ensemble
  (:class:`~repro.core.ensemble.EnsembleDynamics`) — the game factory is
  called **once** and the replicas share the instance;
* ``engine="loop"`` preserves the historical behaviour: one sequential
  :class:`~repro.core.dynamics.ConcurrentDynamics` run per trial with a
  freshly built game and an independently spawned generator.

Both engines are reproducible from their seed but consume the randomness
differently, so their sampled hitting times are *statistically* (not
sample-path-wise) equivalent.  :func:`measure_hitting_times_ensemble`
additionally accepts ``backend="native"`` to drive the ensemble through the
fused round kernel (:mod:`repro.core.native`) — same statistical contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.dynamics import StopReason, TrajectoryResult
from ..core.ensemble import (
    BatchStopCondition,
    EnsembleDynamics,
    batch_stop_at_approx_equilibrium,
    batch_stop_at_imitation_stable,
)
from ..core.protocols import Protocol
from ..core.run import run_until_approx_equilibrium, run_until_imitation_stable
from ..engines import validate_engine
from ..games.base import CongestionGame
from ..games.state import BatchStateLike
from ..rng import RngLike, spawn_rngs
from .statistics import TrialSummary, summarize

__all__ = [
    "HittingTimeResult",
    "measure_hitting_times",
    "measure_hitting_times_ensemble",
    "measure_approx_equilibrium_times",
    "measure_imitation_stable_times",
    "ScalingFit",
    "fit_logarithmic",
    "fit_power_law",
    "fit_linear",
    "compare_scaling_models",
]


@dataclass(frozen=True)
class HittingTimeResult:
    """Hitting times of a stopping condition over several trials."""

    times: list[int]
    censored: int
    summary: TrialSummary

    @property
    def all_converged(self) -> bool:
        """True if every trial reached the stopping condition in budget."""
        return self.censored == 0


def measure_hitting_times(
    run_one: Callable[[np.random.Generator], TrajectoryResult],
    *,
    trials: int,
    rng: RngLike = 0,
) -> HittingTimeResult:
    """Generic trial loop: run ``run_one`` with independent generators and
    collect the round counts.

    Runs that end with :class:`StopReason.MAX_ROUNDS` are counted as censored
    but their (budget-sized) round count still enters the summary, so the
    reported mean is a lower bound on the true expectation in that case.
    """
    generators = spawn_rngs(rng, trials)
    times: list[int] = []
    censored = 0
    for generator in generators:
        result = run_one(generator)
        times.append(int(result.rounds))
        if result.stop_reason is StopReason.MAX_ROUNDS:
            censored += 1
    return HittingTimeResult(times=times, censored=censored, summary=summarize(times))


def measure_hitting_times_ensemble(
    game: CongestionGame,
    protocol: Protocol,
    stop_condition: BatchStopCondition,
    *,
    trials: int,
    max_rounds: int = 100_000,
    rng: RngLike = 0,
    initial_states: Optional[BatchStateLike] = None,
    backend: str = "batch",
) -> HittingTimeResult:
    """Batched trial loop: all trials advance together as one ensemble.

    ``initial_states`` defaults to ``trials`` independent uniform-random
    initialisations.  Replicas that end with
    :attr:`~repro.core.dynamics.StopReason.MAX_ROUNDS` are counted as
    censored, exactly like the sequential loop.

    ``backend`` selects the ensemble execution backend (``"batch"`` or the
    fused ``"native"`` kernel); both consume one generator derived from
    ``rng`` but draw migrations through different decompositions, so their
    sampled hitting times agree in distribution, not bit-for-bit.
    """
    dynamics = EnsembleDynamics(game, protocol, rng=rng)
    result = dynamics.run(
        initial_states,
        replicas=trials,
        max_rounds=max_rounds,
        stop_condition=stop_condition,
        backend=backend,
    )
    times = [int(r) for r in result.rounds]
    censored = sum(1 for reason in result.stop_reasons
                   if reason is StopReason.MAX_ROUNDS)
    return HittingTimeResult(times=times, censored=censored, summary=summarize(times))


def measure_approx_equilibrium_times(
    game_factory: Callable[[], CongestionGame],
    protocol: Protocol,
    delta: float,
    epsilon: float,
    *,
    nu: Optional[float] = None,
    trials: int = 10,
    max_rounds: int = 100_000,
    rng: RngLike = 0,
    engine: str = "batch",
) -> HittingTimeResult:
    """Hitting times of the first (delta, eps, nu)-equilibrium.

    With ``engine="batch"`` the factory is called once and all trials run as
    one ensemble on the shared instance; with ``engine="loop"`` it is called
    once per trial so that game-level caches do not leak state between trials
    and randomised instances can resample.

    .. warning::
       If ``game_factory`` draws a *random* instance per call, the two
       engines estimate different quantities: the loop averages over
       instance randomness *and* path randomness, the batch conditions on a
       single drawn instance.  Use ``engine="loop"`` for randomised
       factories; all deterministic factories are engine-agnostic.
    """
    validate_engine(engine, context="measure_approx_equilibrium_times")
    if engine in ("batch", "native"):
        return measure_hitting_times_ensemble(
            game_factory(), protocol,
            batch_stop_at_approx_equilibrium(delta, epsilon, nu),
            trials=trials, max_rounds=max_rounds, rng=rng, backend=engine,
        )

    def run_one(generator: np.random.Generator) -> TrajectoryResult:
        game = game_factory()
        return run_until_approx_equilibrium(
            game, protocol, delta, epsilon,
            nu=nu, max_rounds=max_rounds, rng=generator,
        )

    return measure_hitting_times(run_one, trials=trials, rng=rng)


def measure_imitation_stable_times(
    game_factory: Callable[[], CongestionGame],
    protocol: Protocol,
    *,
    nu: Optional[float] = None,
    trials: int = 10,
    max_rounds: int = 100_000,
    rng: RngLike = 0,
    engine: str = "batch",
) -> HittingTimeResult:
    """Hitting times of the first imitation-stable state (Theorem 4).

    Engine semantics (including the randomised-factory caveat) are the same
    as for :func:`measure_approx_equilibrium_times`.
    """
    validate_engine(engine, context="measure_imitation_stable_times")
    if engine in ("batch", "native"):
        return measure_hitting_times_ensemble(
            game_factory(), protocol,
            batch_stop_at_imitation_stable(nu),
            trials=trials, max_rounds=max_rounds, rng=rng, backend=engine,
        )

    def run_one(generator: np.random.Generator) -> TrajectoryResult:
        game = game_factory()
        return run_until_imitation_stable(
            game, protocol, nu=nu, max_rounds=max_rounds, rng=generator,
        )

    return measure_hitting_times(run_one, trials=trials, rng=rng)


# ----------------------------------------------------------------------
# Scaling-shape fits
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScalingFit:
    """Least-squares fit of a one-parameter-family scaling model."""

    model: str
    coefficients: tuple[float, ...]
    residual: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model."""
        x = np.asarray(x, dtype=float)
        if self.model == "logarithmic":
            a, b = self.coefficients
            return a + b * np.log(x)
        if self.model == "power-law":
            a, b = self.coefficients
            return a * np.power(x, b)
        if self.model == "linear":
            a, b = self.coefficients
            return a + b * x
        raise ValueError(f"unknown model {self.model!r}")


def _r_squared(y: np.ndarray, predictions: np.ndarray) -> float:
    total = float(np.sum((y - np.mean(y)) ** 2))
    if total == 0:
        return 1.0
    residual = float(np.sum((y - predictions) ** 2))
    return 1.0 - residual / total


def fit_logarithmic(x: Sequence[float], y: Sequence[float]) -> ScalingFit:
    """Fit ``y = a + b log x`` by least squares."""
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if np.any(x_arr <= 0):
        raise ValueError("logarithmic fit needs positive x")
    design = np.vstack([np.ones_like(x_arr), np.log(x_arr)]).T
    coeffs, residuals, _, _ = np.linalg.lstsq(design, y_arr, rcond=None)
    predictions = design @ coeffs
    residual = float(np.sum((y_arr - predictions) ** 2))
    return ScalingFit("logarithmic", (float(coeffs[0]), float(coeffs[1])),
                      residual, _r_squared(y_arr, predictions))


def fit_linear(x: Sequence[float], y: Sequence[float]) -> ScalingFit:
    """Fit ``y = a + b x`` by least squares."""
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    design = np.vstack([np.ones_like(x_arr), x_arr]).T
    coeffs, _, _, _ = np.linalg.lstsq(design, y_arr, rcond=None)
    predictions = design @ coeffs
    residual = float(np.sum((y_arr - predictions) ** 2))
    return ScalingFit("linear", (float(coeffs[0]), float(coeffs[1])),
                      residual, _r_squared(y_arr, predictions))


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> ScalingFit:
    """Fit ``y = a * x**b`` by least squares in log-log space.

    The goodness of fit (``r_squared``, ``residual``) is reported back in the
    *original* space so that it is comparable with the other models.
    """
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if np.any(x_arr <= 0) or np.any(y_arr <= 0):
        raise ValueError("power-law fit needs positive data")
    design = np.vstack([np.ones_like(x_arr), np.log(x_arr)]).T
    coeffs, _, _, _ = np.linalg.lstsq(design, np.log(y_arr), rcond=None)
    a = float(np.exp(coeffs[0]))
    b = float(coeffs[1])
    predictions = a * np.power(x_arr, b)
    residual = float(np.sum((y_arr - predictions) ** 2))
    return ScalingFit("power-law", (a, b), residual, _r_squared(y_arr, predictions))


def compare_scaling_models(x: Sequence[float], y: Sequence[float]) -> dict[str, ScalingFit]:
    """Fit the logarithmic, linear and power-law models and return all three.

    Experiment E2 uses this to show that the measured convergence times as a
    function of ``n`` are much better explained by the logarithmic model (or
    a power law with a tiny exponent) than by a linear one.
    """
    return {
        "logarithmic": fit_logarithmic(x, y),
        "linear": fit_linear(x, y),
        "power-law": fit_power_law(x, y),
    }
