"""Potential-trajectory diagnostics (super-martingale checks).

Corollary 3 states that the Rosenthal potential is a super-martingale under
the IMITATION PROTOCOL: ``E[Phi(x(t+1)) | x(t)] <= Phi(x(t))`` with strict
inequality away from imitation-stable states.  The functions here check the
empirical counterpart on simulated trajectories (how often does the realised
potential go up, by how much, what is the average one-round drift) and
measure overshooting directly (does a single round push the potential above
where a balanced state would sit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.dynamics import ConcurrentDynamics
from ..core.metrics import MetricsCollector
from ..core.potential import estimate_expected_drift
from ..core.protocols import Protocol
from ..games.base import CongestionGame
from ..games.state import StateLike
from ..rng import RngLike, ensure_rng

__all__ = ["DriftReport", "trajectory_drift_report", "empirical_drift",
           "aggregate_potential_increases", "potential_increase_rate"]


@dataclass(frozen=True)
class DriftReport:
    """Summary of the potential movement along one trajectory."""

    rounds: int
    initial_potential: float
    final_potential: float
    increases: int
    max_increase: float
    mean_step: float

    @property
    def monotone_in_expectation(self) -> bool:
        """Heuristic check: the trajectory ends below its start and the mean
        per-round step is non-positive."""
        return self.final_potential <= self.initial_potential + 1e-9 and self.mean_step <= 1e-9


def trajectory_drift_report(potentials: Sequence[float]) -> DriftReport:
    """Build a :class:`DriftReport` from a recorded potential trajectory."""
    values = np.asarray(list(potentials), dtype=float)
    if values.size < 1:
        raise ValueError("need at least one potential value")
    steps = np.diff(values) if values.size > 1 else np.zeros(0)
    return DriftReport(
        rounds=int(values.size - 1),
        initial_potential=float(values[0]),
        final_potential=float(values[-1]),
        increases=int(np.sum(steps > 1e-9)),
        max_increase=float(np.max(steps)) if steps.size else 0.0,
        mean_step=float(np.mean(steps)) if steps.size else 0.0,
    )


def empirical_drift(
    game: CongestionGame,
    protocol: Protocol,
    state: StateLike,
    *,
    samples: int = 200,
    rng: RngLike = None,
) -> dict[str, float]:
    """One-state drift estimate: sampled ``E[Delta Phi]`` versus the Lemma 2
    bound (half the expected virtual potential gain)."""
    return estimate_expected_drift(game, protocol, state, samples=samples, rng=rng)


def aggregate_potential_increases(
    potential_trajectories: Sequence[np.ndarray],
) -> dict[str, float]:
    """Up-move statistics over per-trajectory potential recordings.

    The single aggregation behind :func:`potential_increase_rate` and the
    E5 sweep kernel's drift column: the fraction of realised rounds in
    which the potential increased, the largest single up-move, and the mean
    start-to-end drop.
    """
    total_rounds = 0
    total_increases = 0
    worst_increase = 0.0
    net_drop = 0.0
    for potentials in potential_trajectories:
        potentials = np.asarray(potentials, dtype=float)
        if potentials.size < 2:
            continue
        steps = np.diff(potentials)
        total_rounds += steps.size
        total_increases += int(np.sum(steps > 1e-9))
        worst_increase = max(worst_increase, float(np.max(steps)))
        net_drop += float(potentials[0] - potentials[-1])
    trials = len(potential_trajectories)
    return {
        "rounds": float(total_rounds),
        "increase_rate": (total_increases / total_rounds) if total_rounds else 0.0,
        "max_increase": worst_increase,
        "mean_net_drop": net_drop / trials if trials else 0.0,
    }


def potential_increase_rate(
    game: CongestionGame,
    protocol: Protocol,
    *,
    rounds: int = 200,
    trials: int = 5,
    initial_state: Optional[StateLike] = None,
    rng: RngLike = None,
) -> dict[str, float]:
    """Fraction of realised rounds in which the potential increased.

    The supermartingale property concerns the *expectation*; individual
    rounds may go up.  This helper quantifies how rare and how large such
    up-moves are across several trajectories — the overshooting ablation
    compares this rate between the damped and undamped protocols.
    """
    gen = ensure_rng(rng)
    trajectories: list[np.ndarray] = []
    for _ in range(trials):
        start = initial_state if initial_state is not None else game.uniform_random_state(gen)
        collector = MetricsCollector(game, track_gain=False)
        dynamics = ConcurrentDynamics(game, protocol, rng=gen)
        dynamics.run(start, max_rounds=rounds, collector=collector)
        trajectories.append(collector.potentials())
    return aggregate_potential_increases(trajectories)
