"""Dependency-free text plots for trajectories and sweeps.

The library intentionally avoids a hard matplotlib dependency; for quick
terminal inspection (examples, CLI, notebooks without display) this module
renders

* :func:`sparkline` — a one-line unicode sparkline of a numeric series,
* :func:`ascii_plot` — a small multi-row dot plot with axis labels,
* :func:`histogram` — a horizontal-bar histogram of trial outcomes.

All functions return plain strings, so they can be embedded in logs and
experiment notes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = ["sparkline", "ascii_plot", "histogram"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: Optional[int] = None) -> str:
    """Render ``values`` as a unicode sparkline.

    ``width`` optionally down-samples the series (by block averaging) so the
    output fits a terminal line.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    if width is not None and width > 0 and data.size > width:
        edges = np.linspace(0, data.size, num=width + 1, dtype=int)
        data = np.array([data[start:end].mean() if end > start else data[min(start, data.size - 1)]
                         for start, end in zip(edges[:-1], edges[1:])])
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return " " * data.size
    low, high = float(finite.min()), float(finite.max())
    span = high - low
    characters = []
    for value in data:
        if not np.isfinite(value):
            characters.append(" ")
            continue
        if span <= 0:
            characters.append(_SPARK_LEVELS[0])
            continue
        level = int(round((value - low) / span * (len(_SPARK_LEVELS) - 1)))
        characters.append(_SPARK_LEVELS[level])
    return "".join(characters)


def ascii_plot(
    x: Sequence[float],
    y: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a small dot plot of ``y`` against ``x``.

    Points are mapped onto a ``height x width`` character grid; the first
    column of each row carries the y-axis value of that row.  Points with a
    non-finite coordinate are skipped (like :func:`sparkline` renders them
    blank); the axes span the finite points only.
    """
    xs = np.asarray(list(x), dtype=float)
    ys = np.asarray(list(y), dtype=float)
    if xs.size != ys.size or xs.size == 0:
        raise ValueError("x and y must be non-empty and of equal length")
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    finite = np.isfinite(xs) & np.isfinite(ys)
    if not np.any(finite):
        raise ValueError("x and y contain no finite points")
    xs, ys = xs[finite], ys[finite]

    x_low, x_high = float(xs.min()), float(xs.max())
    y_low, y_high = float(ys.min()), float(ys.max())
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x_value, y_value in zip(xs, ys):
        column = int(round((x_value - x_low) / x_span * (width - 1)))
        row = int(round((y_value - y_low) / y_span * (height - 1)))
        grid[height - 1 - row][column] = "*"

    lines = []
    for row_index, row in enumerate(grid):
        level = y_high - (row_index / (height - 1)) * y_span
        lines.append(f"{level:>12.4g} | " + "".join(row))
    lines.append(" " * 13 + "+" + "-" * width)
    # Pad between the endpoint labels so x_low starts under the first axis
    # column and x_high ends under the last one, whatever the label widths.
    low_text, high_text = f"{x_low:.4g}", f"{x_high:.4g}"
    padding = max(1, width - len(low_text) - len(high_text))
    lines.append(" " * 14 + low_text + " " * padding + high_text
                 + f"  ({x_label})")
    lines.insert(0, f"({y_label})")
    return "\n".join(lines)


def histogram(values: Sequence[float], *, bins: int = 10, width: int = 40) -> str:
    """Render a horizontal-bar histogram of ``values``."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot build a histogram of an empty sample")
    if bins < 1:
        raise ValueError("bins must be positive")
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(math.ceil(count / peak * width)) if count else ""
        lines.append(f"{low:>12.4g} .. {high:<12.4g} | {count:>6} | {bar}")
    return "\n".join(lines)
