"""Analysis utilities: trial statistics, hitting times and scaling fits,
potential-drift diagnostics, extinction tracking, and efficiency ratios."""

from .convergence import (
    HittingTimeResult,
    ScalingFit,
    compare_scaling_models,
    fit_linear,
    fit_logarithmic,
    fit_power_law,
    measure_approx_equilibrium_times,
    measure_hitting_times,
    measure_imitation_stable_times,
)
from .martingale import (
    DriftReport,
    empirical_drift,
    potential_increase_rate,
    trajectory_drift_report,
)
from .prices import (
    PriceOfImitationResult,
    estimate_price_of_imitation,
    nash_cost_range,
)
from .statistics import (
    TrialSummary,
    bootstrap_mean_interval,
    probability_estimate,
    summarize,
)
from .survival import (
    SurvivalTrace,
    estimate_extinction_probability,
    run_with_extinction_tracking,
)
from .trajectory_io import (
    load_experiment_result,
    load_records_json,
    records_to_dicts,
    save_experiment_result,
    save_records_csv,
    save_records_json,
    trajectory_summary,
)

__all__ = [
    "HittingTimeResult",
    "ScalingFit",
    "compare_scaling_models",
    "fit_linear",
    "fit_logarithmic",
    "fit_power_law",
    "measure_approx_equilibrium_times",
    "measure_hitting_times",
    "measure_imitation_stable_times",
    "DriftReport",
    "empirical_drift",
    "potential_increase_rate",
    "trajectory_drift_report",
    "PriceOfImitationResult",
    "estimate_price_of_imitation",
    "nash_cost_range",
    "TrialSummary",
    "bootstrap_mean_interval",
    "probability_estimate",
    "summarize",
    "SurvivalTrace",
    "estimate_extinction_probability",
    "run_with_extinction_tracking",
    "load_experiment_result",
    "load_records_json",
    "records_to_dicts",
    "save_experiment_result",
    "save_records_csv",
    "save_records_json",
    "trajectory_summary",
]
