"""Named sweep presets — the grid experiments' :class:`SweepSpec`s by name.

The registry used to live inside the CLI; it is a top-level module now so
that every consumer of "a sweep by name" — ``python -m repro sweep
--preset``, the sweep service's ``POST /v1/sweeps`` with ``{"preset": ...}``
and ``GET /v1/presets``, and ``python -m repro info`` — resolves the same
names to the same spec factories.

Every factory takes ``(quick: bool, seed: int)`` keywords and returns a
validated-able :class:`~repro.sweeps.spec.SweepSpec`; the preset *name* is
stable API, the grid behind it may grow with the experiment it mirrors.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .errors import ReproError
from .experiments.exp_eps_delta_sweep import eps_delta_grid_spec
from .experiments.exp_error_terms import error_terms_spec
from .experiments.exp_logn_scaling import logn_scaling_spec
from .experiments.exp_network_scaling import network_scaling_spec
from .experiments.exp_overshooting import overshoot_spec
from .experiments.exp_protocol_comparison import protocol_comparison_spec
from .experiments.exp_virtual_agents import virtual_agents_spec
from .sweeps import SweepSpec

__all__ = ["SWEEP_PRESETS", "get_sweep_preset", "list_sweep_presets",
           "preset_summaries"]

#: name -> (spec factory, one-line description).  The descriptions feed the
#: CLI epilog, ``python -m repro info`` and the service's ``GET /v1/presets``.
SWEEP_PRESETS: dict[str, tuple[Callable[..., SweepSpec], str]] = {
    "logn": (logn_scaling_spec,
             "E2 hitting-time grid over the player count n (Theorem 7)"),
    "eps-delta": (eps_delta_grid_spec,
                  "E3 hitting-time grid over (epsilon, delta)"),
    "overshoot": (overshoot_spec,
                  "E5 one-round overshoot ratios on the two-link game"),
    "protocol-work": (protocol_comparison_spec,
                      "E11 concurrent-vs-sequential dynamics work"),
    "virtual-agents": (virtual_agents_spec,
                       "E13 innovativeness recovery via virtual agents"),
    "error-terms": (error_terms_spec,
                    "F1 Lemma 1/2 error-term ratios"),
    "network-scaling": (network_scaling_spec,
                        "E14 layered-DAG routing with sampled path sets"),
}


def list_sweep_presets() -> list[str]:
    """The registered preset names, sorted."""
    return sorted(SWEEP_PRESETS)


def get_sweep_preset(name: str, *, quick: bool = True,
                     seed: Optional[int] = None) -> SweepSpec:
    """Resolve a preset name to its :class:`SweepSpec`.

    Raises :class:`~repro.errors.ReproError` for an unknown name, listing
    the known ones (the service turns this into an HTTP 400).
    """
    if name not in SWEEP_PRESETS:
        raise ReproError(f"unknown sweep preset {name!r}; "
                         f"known: {list_sweep_presets()}")
    factory = SWEEP_PRESETS[name][0]
    kwargs: dict[str, Any] = {"quick": quick}
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)


def preset_summaries(*, quick: bool = True) -> list[dict[str, Any]]:
    """One summary dict per preset (name, description, grid shape).

    Building a spec is cheap (no points execute), so the summaries report
    the actual grid size at the requested scale.
    """
    summaries = []
    for name in list_sweep_presets():
        spec = get_sweep_preset(name, quick=quick)
        summaries.append({
            "name": name,
            "description": SWEEP_PRESETS[name][1],
            "sweep_name": spec.name,
            "game": spec.game,
            "protocol": spec.protocol,
            "measure": spec.measure,
            "num_points": spec.num_points,
            "replicas": spec.replicas,
        })
    return summaries
