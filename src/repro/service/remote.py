"""The remote sweep worker: a leased shard-pulling agent over HTTP.

``python -m repro worker --connect http://host:8080`` runs one of these
against a daemon started with ``repro serve``.  The loop is deliberately
tiny::

    lease a shard  ->  compute it  ->  complete it  ->  repeat

with a heartbeat thread keeping the lease alive while the shard computes.
Everything hard lives elsewhere: the shard payload is exactly what
:func:`~repro.sweeps.scheduler.run_sweep` hands its own pool workers, and
it is executed by the *same* function
(:func:`~repro.sweeps.scheduler._run_shard`), so a row computed on a
remote machine is bit-identical to one computed locally — which is what
lets the board discard stale duplicates and requeue dead workers' shards
without ever producing a different table.

Failure behaviour:

* **killed worker** — the lease stops being heartbeaten, expires on the
  daemon, and the shard is requeued for the next lease request.  Nothing
  to clean up: the worker holds no durable state.
* **stale completion** — a worker that comes back from a long GC pause or
  network partition and completes an expired lease gets HTTP 409; it
  counts the discard and moves on.
* **unreachable daemon** — transient transport errors back the worker off
  and count toward ``--max-idle``; a restarted daemon is picked up
  transparently (leases are daemon-state, so pre-restart leases 404 and
  are likewise dropped).
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Optional

from ..sweeps.scheduler import _run_shard
from ..telemetry import NullLogger, StructuredLogger
from ..telemetry.spans import NO_SPANS, SpanRecorder, decode_traceparent
from ..telemetry.tracing import JsonlTraceSink
from .api import ServiceError
from .client import ServiceClient

__all__ = ["RemoteWorker", "run_worker"]


class RemoteWorker:
    """One shard-pulling agent bound to a daemon.

    Parameters
    ----------
    connect:
        Daemon base URL, or a ready :class:`ServiceClient`.
    worker_id:
        Name reported with each lease (shows up in shard diagnostics and
        the daemon's per-job worker count); a random one by default.
    poll:
        Idle sleep between lease attempts when the board is empty.
    lease_ttl:
        Per-lease TTL override (the daemon's default otherwise); the
        heartbeat interval is a third of the granted TTL.
    max_idle:
        Exit after this many seconds without work (None: run until
        killed) — what lets tests and CI runs terminate naturally.
    max_shards:
        Exit after completing this many shards (None: unlimited).
    spans:
        A :class:`~repro.telemetry.spans.SpanRecorder` for the worker's
        own spans (``worker --spans-out`` builds one over JSONL).  Shard
        payloads carry the daemon's lease-span context as ``traceparent``,
        so the worker's compute spans join the daemon's trace — merging
        both JSONL files yields one connected tree.
    """

    def __init__(self, connect: str | ServiceClient, *,
                 worker_id: Optional[str] = None, poll: float = 0.5,
                 lease_ttl: Optional[float] = None,
                 max_idle: Optional[float] = None,
                 max_shards: Optional[int] = None,
                 log: Optional[StructuredLogger] = None,
                 spans: SpanRecorder = NO_SPANS):
        self.client = (connect if isinstance(connect, ServiceClient)
                       else ServiceClient(connect, spans=spans))
        self.spans = spans
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.poll = poll
        self.lease_ttl = lease_ttl
        self.max_idle = max_idle
        self.max_shards = max_shards
        self.log = log or NullLogger()
        self.stats: dict[str, Any] = {
            "worker_id": self.worker_id,
            "shards_completed": 0,
            "points_computed": 0,
            "stale_results": 0,
            "transport_errors": 0,
        }
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the run loop to exit after the current shard."""
        self._stop.set()

    # ------------------------------------------------------------------
    def run(self) -> dict[str, Any]:
        """Pull and execute shards until told (or configured) to stop."""
        self.log.log("worker_started", worker_id=self.worker_id,
                     daemon=self.client.base_url)
        last_work = time.monotonic()
        while not self._stop.is_set():
            try:
                shard = self.client.lease_shard(self.worker_id,
                                                ttl=self.lease_ttl)
            except ServiceError as error:
                if error.status is not None:
                    raise  # a definitive daemon answer: misconfiguration
                self.stats["transport_errors"] += 1
                self.log.log("daemon_unreachable", error=str(error))
                shard = None
            if shard is None:
                if self.max_idle is not None \
                        and time.monotonic() - last_work >= self.max_idle:
                    self.log.log("worker_idle_exit",
                                 idle_seconds=self.max_idle)
                    break
                self._stop.wait(self.poll)
                continue
            self._execute(shard)
            last_work = time.monotonic()
            if self.max_shards is not None \
                    and self.stats["shards_completed"] >= self.max_shards:
                self.log.log("worker_shard_limit", shards=self.max_shards)
                break
        self.log.log("worker_stopped", **self.stats)
        return dict(self.stats)

    # ------------------------------------------------------------------
    def _execute(self, shard: dict[str, Any]) -> None:
        lease_id = shard["lease_id"]
        self.log.log("shard_leased", shard_id=shard["shard_id"],
                     lease_id=lease_id, points=len(shard["indices"]),
                     attempt=shard["attempt"])
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, float(shard["lease_ttl"]), stop_heartbeat),
            name=f"{self.worker_id}-heartbeat", daemon=True)
        heartbeat.start()
        # Parent this worker's compute span to the daemon's lease span via
        # the traceparent the lease payload carries — the cross-host hop
        # that keeps daemon and worker span files one connected tree.
        lease_context = decode_traceparent(shard.get("traceparent"))
        with self.spans.span("worker.shard", parent=lease_context,
                             attrs={"worker": self.worker_id,
                                    "shard_id": shard["shard_id"],
                                    "attempt": shard["attempt"]}) as span:
            try:
                rows, metrics, shard_spans = _run_shard(
                    (shard["spec"], shard["indices"],
                     ({"trace_id": span.trace_id, "span_id": span.span_id}
                      if self.spans.enabled else None)))
                if shard_spans:
                    self.spans.adopt(shard_spans)
            finally:
                stop_heartbeat.set()
                heartbeat.join()
            try:
                self.client.complete_shard(lease_id, rows, metrics=metrics)
            except ServiceError as error:
                if error.status in (404, 409):
                    # Our lease expired (slow shard, paused process) and
                    # the shard was requeued — the current holder
                    # recomputes the identical rows, so ours are safely
                    # discarded.
                    self.stats["stale_results"] += 1
                    span.set_status("stale")
                    self.log.log("shard_result_stale", lease_id=lease_id,
                                 error=str(error))
                    return
                raise
        self.stats["shards_completed"] += 1
        self.stats["points_computed"] += len(rows)
        self.log.log("shard_completed", shard_id=shard["shard_id"],
                     points=len(rows))

    def _heartbeat_loop(self, lease_id: str, ttl: float,
                        stop: threading.Event) -> None:
        interval = max(0.05, ttl / 3.0)
        while not stop.wait(interval):
            try:
                self.client.shard_heartbeat(lease_id)
            except ServiceError:
                # Stale lease or unreachable daemon: the completion call
                # will find out authoritatively; just stop renewing.
                return


def run_worker(connect: str, *, worker_id: Optional[str] = None,
               poll: float = 0.5, lease_ttl: Optional[float] = None,
               max_idle: Optional[float] = None,
               max_shards: Optional[int] = None,
               log: Optional[StructuredLogger] = None,
               spans_out: Optional[str] = None) -> dict[str, Any]:
    """Run one :class:`RemoteWorker` to completion (the CLI entry).

    ``spans_out`` records the worker's side of the distributed trace to a
    JSONL file; merge it with the daemon's for ``repro trace``.
    """
    spans = (SpanRecorder(JsonlTraceSink(spans_out))
             if spans_out else NO_SPANS)
    worker = RemoteWorker(connect, worker_id=worker_id, poll=poll,
                          lease_ttl=lease_ttl, max_idle=max_idle,
                          max_shards=max_shards, log=log, spans=spans)
    try:
        return worker.run()
    finally:
        spans.close()
