"""Wire-level plumbing shared by the sweep-service server and client.

The submit payload (``POST /v1/sweeps``) takes one of two shapes::

    {"spec": { ...SweepSpec.to_dict()... }, "priority": 5}
    {"preset": "logn", "quick": true, "seed": 7,
     "overrides": {"replicas": 16}, "priority": 0}

:func:`resolve_spec` normalises both into a validated
:class:`~repro.sweeps.spec.SweepSpec`; every malformed input raises a
:class:`~repro.errors.ReproError` whose message goes verbatim into the
HTTP 400 body, so the curl user and the :class:`ServiceClient` user see the
same diagnosis.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..errors import ReproError
from ..presets import get_sweep_preset
from ..sweeps import SweepSpec

__all__ = ["ServiceError", "resolve_mode", "resolve_spec"]

#: Fields a submit payload may carry (anything else is rejected by name,
#: mirroring SweepSpec.from_dict's unknown-field policy).
_SUBMIT_FIELDS = {"spec", "preset", "quick", "seed", "overrides", "priority",
                  "mode"}

#: How a submitted sweep is executed: by the daemon's in-process worker
#: pool, or sharded out to leased ``repro worker`` agents over HTTP.
_MODES = ("local", "remote")


class ServiceError(ReproError):
    """A sweep-service failure, tagged with the HTTP status it maps to.

    ``status`` is the HTTP code the server responds with (the client
    re-raises with the received code); ``None`` means the failure happened
    before any HTTP exchange (e.g. the daemon is unreachable).
    ``last_error`` carries the final underlying transport exception when
    the client exhausted its retries (``None`` otherwise).
    """

    def __init__(self, message: str, *, status: Optional[int] = 400,
                 last_error: Optional[BaseException] = None):
        super().__init__(message)
        self.status = status
        self.last_error = last_error


def resolve_mode(payload: Any) -> str:
    """The execution mode of a submit payload (default ``"local"``)."""
    if not isinstance(payload, Mapping):
        return "local"  # resolve_spec rejects the payload with the details
    mode = payload.get("mode", "local")
    if mode not in _MODES:
        raise ServiceError(f"'mode' must be one of {list(_MODES)}, "
                           f"got {mode!r}")
    return mode


def resolve_spec(payload: Any) -> tuple[SweepSpec, int]:
    """Turn a submit payload into a validated ``(spec, priority)`` pair."""
    if not isinstance(payload, Mapping):
        raise ServiceError("the submit body must be a JSON object, got "
                           f"{type(payload).__name__}")
    unknown = set(payload) - _SUBMIT_FIELDS
    if unknown:
        raise ServiceError(f"unknown submit field(s) {sorted(unknown)}; "
                           f"known: {sorted(_SUBMIT_FIELDS)}")
    if ("spec" in payload) == ("preset" in payload):
        raise ServiceError("a submit payload needs exactly one of "
                           "'spec' or 'preset'")

    if "spec" in payload:
        for field in ("quick", "seed", "overrides"):
            if field in payload:
                raise ServiceError(f"{field!r} applies to preset submissions "
                                   "only; fold it into 'spec' instead")
        spec = SweepSpec.from_dict(payload["spec"])
    else:
        preset = payload["preset"]
        if not isinstance(preset, str):
            raise ServiceError("'preset' must be a string")
        spec = get_sweep_preset(preset,
                                quick=bool(payload.get("quick", True)),
                                seed=payload.get("seed"))
        overrides = payload.get("overrides") or {}
        if not isinstance(overrides, Mapping):
            raise ServiceError("'overrides' must be a JSON object")
        if overrides:
            # Unknown override names fail inside from_dict, by name.
            spec = SweepSpec.from_dict({**spec.to_dict(), **overrides})

    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ServiceError("'priority' must be an integer")
    spec.validate()
    return spec, priority
