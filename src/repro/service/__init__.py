"""Sweep-as-a-service: a daemon + client serving the sweep store.

Until this package existed, every consumer of sweep results paid full
compute cost per ``python -m repro`` invocation, and the on-disk
:class:`~repro.sweeps.store.SweepStore` allowed one writer at a time.  The
service turns the sweep layer into a *serving* layer — equilibrium and
hitting-time queries become cheap repeated reads against a shared store,
multiplexed through one long-running process:

* :mod:`~repro.service.jobs` — priority job queue + registry with
  in-flight dedup by spec content hash and per-spec-directory
  serialization (:class:`JobQueue`, :class:`Job`, :class:`JobState`),
  plus the shard lease board for remote execution (:class:`ShardBoard`);
* :mod:`~repro.service.workers` — background execution of queued sweeps
  through :func:`~repro.sweeps.scheduler.run_sweep`
  (:class:`WorkerPool`);
* :mod:`~repro.service.remote` — the leased shard-pulling worker agent
  (:class:`RemoteWorker`, the ``repro worker`` verb);
* :mod:`~repro.service.server` — the stdlib-only threaded HTTP daemon and
  the transport-independent :class:`SweepService` application object;
* :mod:`~repro.service.client` — the typed urllib
  :class:`ServiceClient`;
* :mod:`~repro.service.api` — payload resolution and
  :class:`ServiceError`.

CLI verbs: ``python -m repro serve | worker | submit | status | fetch``.
The full API reference (curl examples, cache/dedup semantics, lease
protocol, deployment notes) lives in ``docs/SERVICE.md``.
"""

from .api import ServiceError, resolve_mode, resolve_spec
from .client import ServiceClient
from .jobs import Job, JobQueue, JobState, Shard, ShardBoard, ShardState
from .remote import RemoteWorker, run_worker
from .server import SweepService, make_server, run_service
from .workers import WorkerPool

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "RemoteWorker",
    "ServiceClient",
    "ServiceError",
    "Shard",
    "ShardBoard",
    "ShardState",
    "SweepService",
    "WorkerPool",
    "make_server",
    "resolve_mode",
    "resolve_spec",
    "run_service",
    "run_worker",
]
