"""Sweep-as-a-service: a daemon + client serving the sweep store.

Until this package existed, every consumer of sweep results paid full
compute cost per ``python -m repro`` invocation, and the on-disk
:class:`~repro.sweeps.store.SweepStore` allowed one writer at a time.  The
service turns the sweep layer into a *serving* layer — equilibrium and
hitting-time queries become cheap repeated reads against a shared store,
multiplexed through one long-running process:

* :mod:`~repro.service.jobs` — priority job queue + registry with
  in-flight dedup by spec content hash and per-spec-directory
  serialization (:class:`JobQueue`, :class:`Job`, :class:`JobState`);
* :mod:`~repro.service.workers` — background execution of queued sweeps
  through :func:`~repro.sweeps.scheduler.run_sweep`
  (:class:`WorkerPool`);
* :mod:`~repro.service.server` — the stdlib-only threaded HTTP daemon and
  the transport-independent :class:`SweepService` application object;
* :mod:`~repro.service.client` — the typed urllib
  :class:`ServiceClient`;
* :mod:`~repro.service.api` — payload resolution and
  :class:`ServiceError`.

CLI verbs: ``python -m repro serve | submit | status | fetch``.  The full
API reference (curl examples, cache/dedup semantics, deployment notes)
lives in ``docs/SERVICE.md``.
"""

from .api import ServiceError, resolve_spec
from .client import ServiceClient
from .jobs import Job, JobQueue, JobState
from .server import SweepService, make_server, run_service
from .workers import WorkerPool

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "ServiceClient",
    "ServiceError",
    "SweepService",
    "WorkerPool",
    "make_server",
    "resolve_spec",
    "run_service",
]
