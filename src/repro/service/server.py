"""The sweep service: a stdlib-only threaded HTTP daemon over the store.

Two layers:

* :class:`SweepService` — the transport-independent application object
  (submit/cached lookup/rows/aggregate/health).  Tests and embedders call
  it directly; it owns the :class:`~repro.service.jobs.JobQueue`, the
  :class:`~repro.service.workers.WorkerPool` and the
  :class:`~repro.sweeps.store.SweepStore`.
* :func:`make_server` / :func:`run_service` — the
  :class:`http.server.ThreadingHTTPServer` front end mapping the REST
  surface onto it.

Routes (all JSON unless noted)::

    GET  /v1/healthz                   daemon liveness + runtime info + metrics
    GET  /v1/metrics                   Prometheus text exposition (text/plain)
    GET  /v1/presets                   registered sweep presets
    POST /v1/sweeps                    submit a spec or preset (+overrides)
    GET  /v1/jobs                      every job, submission order
    GET  /v1/jobs/<id>                 one job
    POST /v1/jobs/<id>/cancel          cancel a queued job
    GET  /v1/sweeps/<hash>/rows        committed rows, streamed JSONL
    GET  /v1/sweeps/<hash>/aggregate   group-by reduction over the rows
    POST /v1/shards/lease              lease a pending shard (remote worker)
    POST /v1/shards/<lease>/heartbeat  renew a shard lease
    POST /v1/shards/<lease>/complete   commit a leased shard's rows

Every request increments ``repro_http_requests_total{method,route,status}``
and lands in the ``repro_http_request_seconds{route}`` latency histogram
(routes are normalised to templates — ``/v1/jobs/{id}`` — so job ids never
explode the label space).  ``--access-log`` additionally emits one
structured JSON line per request to stderr (docs/OBSERVABILITY.md).

The cache contract: ``POST /v1/sweeps`` whose spec is fully committed in
the store answers ``{"cached": true, ...}`` *without enqueueing a job* —
the hot path of a warm service is a disk read, never a recompute.  Partial
results enqueue a job that resumes from the committed points.

Failures surface as the matching status code with ``{"error": "<message>"}``
— the message of the underlying :class:`~repro.errors.ReproError`, so curl
and :class:`~repro.service.client.ServiceClient` report identical causes.
"""

from __future__ import annotations

import json
import os
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable, Iterator, Optional
from urllib.parse import parse_qs, urlparse

from ..errors import ReproError
from ..info import runtime_info
from ..presets import preset_summaries
from ..sweeps import SweepSpec, SweepStore, aggregate_rows
from ..sweeps.aggregate import DEFAULT_STATS
from ..telemetry import MetricsRegistry, NullLogger, StructuredLogger
from ..telemetry.spans import NO_SPANS, SpanRecorder, decode_traceparent
from ..telemetry.tracing import JsonlTraceSink
from .api import ServiceError, resolve_mode, resolve_spec
from .jobs import JobQueue, ShardBoard
from .workers import WorkerPool

__all__ = ["SweepService", "make_server", "run_service"]


class SweepService:
    """The application behind the daemon (usable without HTTP).

    Parameters
    ----------
    store:
        A :class:`~repro.sweeps.store.SweepStore` or its root path.
    workers:
        Concurrent jobs (service-level parallelism).
    sweep_workers:
        Processes per job's :func:`~repro.sweeps.scheduler.run_sweep`.
    runner:
        Test seam: replaces ``run_sweep`` in the worker pool.
    lease_ttl:
        Seconds a remote worker's shard lease lives between heartbeats;
        an expired lease requeues its shard for the next worker.
    shard_points:
        Points per remote shard (defaults to the scheduler's own
        granularity, ~4 shards per assumed worker).
    spans:
        A :class:`~repro.telemetry.spans.SpanRecorder` shared by the HTTP
        layer, queue, pool and board (the daemon half of distributed
        tracing; ``serve --spans-out`` builds one over a JSONL sink).
        Defaults to the disabled recorder — zero overhead.
    """

    def __init__(self, store: SweepStore | str | os.PathLike, *,
                 workers: int = 1, sweep_workers: int = 1,
                 runner: Optional[Callable] = None,
                 lease_ttl: float = 30.0,
                 shard_points: Optional[int] = None,
                 spans: SpanRecorder = NO_SPANS):
        self.store = store if isinstance(store, SweepStore) else SweepStore(store)
        #: One registry for the whole daemon: the queue's job lifecycle
        #: counters, the pool's execution timings, the shard board's fabric
        #: counters and the HTTP layer's request metrics all land here, so
        #: ``/v1/metrics`` is one read.
        self.registry = MetricsRegistry()
        self.spans = spans
        self.queue = JobQueue(registry=self.registry, spans=spans)
        self.pool = WorkerPool(self.queue, self.store, workers=workers,
                               sweep_workers=sweep_workers, runner=runner,
                               registry=self.registry, spans=spans)
        self.board = ShardBoard(self.queue, self.store, lease_ttl=lease_ttl,
                                shard_points=shard_points,
                                registry=self.registry, spans=spans)
        #: Every spec this process has resolved, by content hash — lets the
        #: rows/aggregate endpoints serve cached submissions that never
        #: created a job.  Store manifests cover everything older.
        self._specs: dict[str, SweepSpec] = {}
        self.started_at = time.time()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "SweepService":
        """Start the worker pool."""
        self.pool.start()
        return self

    def stop(self, timeout: float = 10.0) -> bool:
        """Drain and stop the worker pool; True if fully drained."""
        return self.pool.stop(timeout)

    # --------------------------------------------------------------- submit
    def submit(self, payload: Any) -> dict[str, Any]:
        """Handle one submit payload; the response dict is the HTTP body.

        Cached specs (every grid point committed) are answered from the
        store without touching the queue.  Otherwise the job queue dedups
        by content hash, so duplicate in-flight submits share one job —
        regardless of mode: if the spec is already being computed (either
        way), the submit joins that job.  New ``mode="remote"`` jobs are
        sharded onto the lease board instead of the worker-pool heap.
        """
        mode = resolve_mode(payload)
        spec, priority = resolve_spec(payload)
        spec_hash = spec.content_hash()
        self._specs[spec_hash] = spec
        cached_points = self._committed_points(spec)
        if cached_points == spec.num_points:
            return {
                "spec_hash": spec_hash,
                "spec_name": spec.name,
                "cached": True,
                "created": False,
                "points": cached_points,
                "job": None,
            }
        job, created = self.queue.submit(spec, priority=priority, mode=mode)
        if created and mode == "remote":
            try:
                self.board.activate(job)
            except ReproError as error:
                self.queue.finish(job, error=str(error))
                raise
        return {
            "spec_hash": spec_hash,
            "spec_name": spec.name,
            "cached": False,
            "created": created,
            "points": spec.num_points,
            "job": job.to_dict(),
        }

    def _committed_points(self, spec: SweepSpec) -> int:
        """How many of ``spec``'s points the store already holds."""
        committed = self.store.completed_keys(spec)
        return sum(1 for point in spec.expand() if point.key in committed)

    # ----------------------------------------------------------------- rows
    def spec_for_hash(self, spec_hash: str) -> SweepSpec:
        """Resolve a content hash to its spec (404 if never seen).

        In-memory specs win (they include cached submissions); store
        manifests make the lookup survive daemon restarts and cover sweeps
        written by the CLI directly against the same root.
        """
        spec = self._specs.get(spec_hash)
        if spec is not None:
            return spec
        for manifest in self.store.runs():
            if manifest.get("spec_hash") == spec_hash:
                spec = SweepSpec.from_dict(manifest["spec"])
                if spec.content_hash() != spec_hash:
                    # A manifest whose recorded spec no longer reproduces
                    # its own hash (e.g. written by a code version with a
                    # different canonicalisation) would point at the wrong
                    # directory — treat it as unknown rather than serve
                    # the wrong rows.
                    continue
                self._specs[spec_hash] = spec
                return spec
        raise ServiceError(f"unknown sweep {spec_hash!r}; submit it first "
                           "(or check the hash against /v1/jobs)", status=404)

    def rows(self, spec_hash: str) -> list[dict[str, Any]]:
        """The committed rows of a sweep, in point-expansion order."""
        spec = self.spec_for_hash(spec_hash)
        return sorted(self.store.load_rows(spec),
                      key=lambda row: row["point_index"])

    def row_lines(self, spec_hash: str) -> Iterator[str]:
        """The rows as JSONL lines, byte-identical to the store encoding.

        Unknown hashes raise *before* the iterator is returned (not lazily
        inside it), so the HTTP layer can still answer 404 — once the 200
        header of a stream is out, there is no way to signal the error.
        """
        rows = self.rows(spec_hash)
        return (json.dumps(row) for row in rows)

    def aggregate(self, spec_hash: str, *, by: list[str],
                  value: str = "rounds_mean",
                  stats: Optional[list[str]] = None) -> list[dict[str, Any]]:
        """Group-by reduction over a sweep's committed rows."""
        rows = self.rows(spec_hash)
        if not rows:
            raise ServiceError(
                f"sweep {spec_hash} has no committed rows yet", status=409)
        return aggregate_rows(rows, by=by, value=value,
                              stats=stats or DEFAULT_STATS)

    # --------------------------------------------------------------- health
    def healthz(self) -> dict[str, Any]:
        """Liveness payload: queue tally, :func:`runtime_info`, metrics."""
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "store_root": str(self.store.root),
            "service_workers": self.pool.workers,
            "sweep_workers": self.pool.sweep_workers,
            "store_backend": self.store.scheme,
            "jobs": self.queue.counts(),
            "fabric": self.board.describe(),
            "metrics": self.registry.snapshot().flat(),
            **runtime_info(),
        }

    def metrics_text(self) -> str:
        """The daemon's metrics in Prometheus text exposition format."""
        return self.registry.render_prometheus()


# ----------------------------------------------------------------- HTTP --

#: Known path shapes -> metric route templates.  Everything else maps to
#: "/other" so arbitrary probe paths cannot explode the label space.
def _route_template(parts: list[str]) -> str:
    if parts[:1] == ["v1"]:
        if len(parts) == 2 and parts[1] in ("healthz", "metrics", "presets",
                                            "jobs", "sweeps"):
            return "/v1/" + parts[1]
        if len(parts) == 3 and parts[1] == "shards" and parts[2] == "lease":
            return "/v1/shards/lease"
        if len(parts) == 3 and parts[1] == "jobs":
            return "/v1/jobs/{id}"
        if len(parts) == 4 and parts[1] == "jobs" and parts[3] == "cancel":
            return "/v1/jobs/{id}/cancel"
        if len(parts) == 4 and parts[1] == "shards" \
                and parts[3] in ("heartbeat", "complete"):
            return "/v1/shards/{lease}/" + parts[3]
        if len(parts) == 4 and parts[1] == "sweeps" \
                and parts[3] in ("rows", "aggregate"):
            return "/v1/sweeps/{hash}/" + parts[3]
    return "/other"


class _Handler(BaseHTTPRequestHandler):
    """Routes the REST surface onto a bound :class:`SweepService`."""

    # Set on the subclass built by make_server().
    service: SweepService = None  # type: ignore[assignment]
    quiet: bool = True
    access_log: Any = NullLogger()

    protocol_version = "HTTP/1.1"
    server_version = "repro-sweep-service"

    MAX_BODY = 8 * 1024 * 1024  # spec payloads are small; reject abuse

    # ------------------------------------------------------------ plumbing
    def log_request(self, code="-", size="-") -> None:
        # Superseded: the instrumented dispatch emits a richer structured
        # access event (route template, latency) per request.
        pass

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # http.server's own diagnostics (malformed requests, broken pipes)
        # used to vanish here; route them through the structured logger.
        self.access_log.log("http_log", client=self.address_string(),
                            message=format % args)
        if not self.quiet:
            sys.stderr.write("%s - %s\n" % (self.address_string(),
                                            format % args))

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        self._status = code  # captured for the request metrics
        super().send_response(code, message)

    def _dispatch(self, method: str, route_handler: Callable[[], None]) -> None:
        """Time and count one request around the actual route handler."""
        self._status = 0
        registry = self.service.registry
        parts = [part for part in urlparse(self.path).path.split("/") if part]
        route = _route_template(parts)
        # Adopt the caller's trace, if it sent one: the server span becomes
        # a child of the client span, and everything the handler does
        # (submit, lease, complete) nests under it via the ambient context.
        parent = decode_traceparent(self.headers.get("traceparent"))
        attempt = self.headers.get("x-repro-attempt")
        if attempt is not None:
            try:
                if int(attempt) > 1:
                    # A client resending this request: retry storms become
                    # visible at /v1/metrics even though the retry loop
                    # itself runs in the client process.
                    registry.counter(
                        "client_retries_total",
                        "Requests that arrived as a client retry "
                        "(x-repro-attempt > 1)", route=route).inc()
            except ValueError:
                pass
        started = time.perf_counter()
        try:
            with self.service.spans.span(
                    f"http.{method.lower()}", parent=parent,
                    attrs={"route": route}) as span:
                route_handler()
                span.set_attr("status", self._status)
        finally:
            elapsed = time.perf_counter() - started
            registry.counter(
                "http_requests_total", "HTTP requests served",
                method=method, route=route, status=str(self._status)).inc()
            registry.histogram(
                "http_request_seconds", "HTTP request latency",
                route=route).observe(elapsed)
            self.access_log.log(
                "http_request", client=self.address_string(), method=method,
                path=self.path, route=route, status=self._status,
                duration_ms=round(elapsed * 1000, 3))

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_jsonl(self, lines: Iterable[str]) -> None:
        """Stream lines as chunked ``application/x-ndjson``."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for line in lines:
            data = (line + "\n").encode("utf-8")
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    def _send_error(self, error: Exception) -> None:
        status = 400
        if isinstance(error, ServiceError) and error.status is not None:
            status = error.status
        self._send_json({"error": str(error)}, status=status)

    def _read_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            self._body_consumed = True
            raise ServiceError("unparseable Content-Length header") from None
        if length <= 0:
            raise ServiceError("the request needs a JSON body "
                               "(Content-Length missing or zero)")
        if length > self.MAX_BODY:
            # Refusing to read megabytes of abuse means the connection is
            # desynced — close it instead of draining.
            self.close_connection = True
            self._body_consumed = True
            raise ServiceError("request body too large", status=413)
        self._body_consumed = True
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as decode_error:
            raise ServiceError(
                f"request body is not valid JSON: {decode_error}") from None

    def _drain_body(self) -> None:
        """Consume an unread request body so HTTP/1.1 keep-alive stays in
        sync (routes that ignore their body — cancel, 404s — would
        otherwise leave its bytes to be parsed as the next request)."""
        if getattr(self, "_body_consumed", False):
            return
        self._body_consumed = True
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True
            return
        if length > self.MAX_BODY:
            self.close_connection = True
            return
        while length > 0:
            chunk = self.rfile.read(min(length, 1 << 16))
            if not chunk:
                break
            length -= len(chunk)

    # -------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET", self._do_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST", self._do_post)

    def _do_get(self) -> None:
        try:
            self._route_get()
        except ReproError as error:
            self._send_error(error)

    def _do_post(self) -> None:
        self._body_consumed = False
        try:
            self._route_post()
        except ReproError as error:
            self._send_error(error)
        finally:
            self._drain_body()

    def _route_get(self) -> None:
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts == ["v1", "healthz"]:
            self._send_json(self.service.healthz())
        elif parts == ["v1", "metrics"]:
            body = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif parts == ["v1", "presets"]:
            self._send_json({"presets": preset_summaries()})
        elif parts == ["v1", "jobs"]:
            self._send_json({"jobs": [job.to_dict()
                                      for job in self.service.queue.jobs()]})
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._send_json(self.service.queue.describe(parts[2]))
        elif len(parts) == 4 and parts[:2] == ["v1", "sweeps"] \
                and parts[3] == "rows":
            self._send_jsonl(self.service.row_lines(parts[2]))
        elif len(parts) == 4 and parts[:2] == ["v1", "sweeps"] \
                and parts[3] == "aggregate":
            self._send_json({"rows": self._aggregate(parts[2], url.query)})
        else:
            raise ServiceError(f"no such resource: GET {url.path}",
                               status=404)

    def _route_post(self) -> None:
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts == ["v1", "sweeps"]:
            response = self.service.submit(self._read_body())
            self._send_json(response, status=202 if response["created"] else 200)
        elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                and parts[3] == "cancel":
            self._send_json(self.service.queue.cancel(parts[2]).to_dict())
        elif parts == ["v1", "shards", "lease"]:
            body = self._read_body()
            if not isinstance(body, dict):
                raise ServiceError("the lease body must be a JSON object")
            ttl = body.get("ttl")
            lease = self.service.board.lease(
                body.get("worker"),
                ttl=float(ttl) if ttl is not None else None)
            self._send_json({"shard": lease})
        elif len(parts) == 4 and parts[:2] == ["v1", "shards"] \
                and parts[3] == "heartbeat":
            self._drain_body()
            self._send_json(self.service.board.heartbeat(parts[2]))
        elif len(parts) == 4 and parts[:2] == ["v1", "shards"] \
                and parts[3] == "complete":
            body = self._read_body()
            if not isinstance(body, dict) \
                    or not isinstance(body.get("rows"), list):
                raise ServiceError("the completion body must be a JSON "
                                   "object with a 'rows' array")
            self._send_json(self.service.board.complete(
                parts[2], body["rows"], metrics=body.get("metrics")))
        else:
            raise ServiceError(f"no such resource: POST {url.path}",
                               status=404)

    def _aggregate(self, spec_hash: str, query: str) -> list[dict[str, Any]]:
        params = parse_qs(query)
        by = [column for chunk in params.get("by", [])
              for column in chunk.split(",") if column]
        if not by:
            raise ServiceError("aggregate needs at least one group-by "
                               "column: ?by=<col>[,<col>]")
        value = (params.get("value") or ["rounds_mean"])[0]
        stats = [stat for chunk in params.get("stats", [])
                 for stat in chunk.split(",") if stat] or None
        return self.service.aggregate(spec_hash, by=by, value=value,
                                      stats=stats)


def make_server(service: SweepService, *, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True,
                access_log: bool = False) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server to ``service`` (``port=0`` picks one).

    ``access_log=True`` emits one structured JSON line per request (and per
    http.server diagnostic) to stderr; off by default so tests stay quiet.
    The caller owns the lifecycle: ``serve_forever()`` it (usually on a
    thread), ``shutdown()`` + ``server_close()`` it when done.
    """
    logger = (StructuredLogger(sys.stderr, component="http")
              if access_log else NullLogger())
    handler = type("BoundSweepServiceHandler", (_Handler,),
                   {"service": service, "quiet": quiet,
                    "access_log": logger})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def _install_shutdown_signals() -> None:
    """Make SIGTERM (and SIGINT, even when inherited ignored) interrupt
    the serve loop.

    ``kill <pid>`` sends SIGTERM, whose default disposition would skip the
    clean-shutdown path; and a daemon started as a shell background job
    inherits SIGINT *ignored* (POSIX job control), so Ctrl-C-style signals
    would otherwise be dropped entirely.  Both are redirected to
    :class:`KeyboardInterrupt`.  Signal handlers only work on the main
    thread — embedders calling :func:`run_service` elsewhere keep their
    own arrangements.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return

    def _interrupt(signum, frame):  # noqa: ARG001 - signal API
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _interrupt)
    signal.signal(signal.SIGINT, _interrupt)


def run_service(store: SweepStore | str | os.PathLike, *,
                host: str = "127.0.0.1", port: int = 8080,
                workers: int = 1, sweep_workers: int = 1,
                lease_ttl: float = 30.0, shard_points: Optional[int] = None,
                quiet: bool = True, access_log: bool = False,
                spans_out: Optional[str] = None,
                ready: Optional[Callable[[ThreadingHTTPServer], Any]] = None,
                ) -> int:
    """Run the daemon until interrupted (the ``serve`` CLI verb).

    ``ready`` is called with the bound server before the serve loop starts
    (tests use it to learn the ephemeral port).  SIGINT/SIGTERM-as-
    KeyboardInterrupt triggers a clean shutdown: the HTTP loop stops, the
    worker pool drains its running jobs, and the store is left consistent
    (shard commits are atomic, so an interrupted sweep simply resumes on
    the next submit).

    ``spans_out`` enables distributed tracing: every request, job, lease
    and sweep records spans to that JSONL file (``repro trace`` reads it).
    """
    spans = (SpanRecorder(JsonlTraceSink(spans_out))
             if spans_out else NO_SPANS)
    service = SweepService(store, workers=workers,
                           sweep_workers=sweep_workers,
                           lease_ttl=lease_ttl,
                           shard_points=shard_points,
                           spans=spans).start()
    server = make_server(service, host=host, port=port, quiet=quiet,
                         access_log=access_log)
    _install_shutdown_signals()
    bound_host, bound_port = server.server_address[:2]
    print(f"sweep service listening on http://{bound_host}:{bound_port} "
          f"(store: {service.store.url}, workers: {workers}, "
          f"sweep workers: {sweep_workers})", flush=True)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if service.stop():
            print("sweep service shut down cleanly", flush=True)
        else:
            print("sweep service shut down with jobs still running; "
                  "interrupted sweeps resume from their last shard commit "
                  "on re-submit", flush=True)
        spans.close()
    return 0
