"""Background sweep execution: worker threads draining the job queue.

Two independent parallelism knobs:

* ``workers`` — service-level: how many *jobs* execute concurrently (one
  thread each, claiming from the :class:`~repro.service.jobs.JobQueue`);
* ``sweep_workers`` — job-level: how many processes each job's
  :func:`~repro.sweeps.scheduler.run_sweep` shards its grid over.

A worker thread is a thin loop: claim → ``run_sweep(spec, store=...)`` →
finish with a summary (or the error message).  Everything durable — rows,
manifests, resume state — lives in the shared
:class:`~repro.sweeps.store.SweepStore`; the thread itself holds nothing
worth persisting, which is what makes daemon restarts trivial.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..sweeps import SweepStore
from ..sweeps.scheduler import SweepRunResult, run_sweep
from ..telemetry import DEFAULT_DURATION_BUCKETS, MetricsRegistry
from ..telemetry.spans import NO_SPANS, SpanContext, SpanRecorder
from .jobs import Job, JobQueue

__all__ = ["WorkerPool"]


class WorkerPool:
    """``workers`` threads executing queued sweeps against one store."""

    def __init__(self, queue: JobQueue, store: SweepStore, *,
                 workers: int = 1, sweep_workers: int = 1,
                 runner: Optional[Callable[..., SweepRunResult]] = None,
                 registry: Optional[MetricsRegistry] = None,
                 spans: SpanRecorder = NO_SPANS):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if sweep_workers < 1:
            raise ValueError("sweep_workers must be positive")
        self.queue = queue
        self.store = store
        self.workers = workers
        self.sweep_workers = sweep_workers
        self._runner = runner if runner is not None else run_sweep
        self._spans = spans
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []  # guarded-by: _lock
        registry = registry or MetricsRegistry()
        self._job_seconds = registry.histogram(
            "job_seconds", "Wall time per executed job",
            DEFAULT_DURATION_BUCKETS)
        self._busy = registry.gauge(
            "workers_busy", "Worker threads currently executing a job")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent, and safe to race)."""
        with self._lock:
            if self._threads:
                return
            for index in range(self.workers):
                thread = threading.Thread(target=self._drain, daemon=True,
                                          name=f"sweep-worker-{index}")
                thread.start()
                self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> bool:
        """Close the queue and join the workers; True if fully drained.

        A worker mid-sweep keeps running its current job and is given
        ``timeout`` seconds to finish it.  ``False`` means a job outlived
        the wait and its (daemon) thread will die with the process — safe
        for the *store* (shard commits are atomic, the job resumes from
        its last commit on re-submit) but not a clean drain, and callers
        should say so.
        """
        self.queue.close()
        with self._lock:  # snapshot, then join without holding the lock
            threads = list(self._threads)
        drained = True
        for thread in threads:
            thread.join(timeout)
            if thread.is_alive():
                drained = False
        if drained:
            with self._lock:
                self._threads = []
        return drained

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while True:
            job = self.queue.claim()
            if job is None:
                return
            self._execute(job)

    def _execute(self, job: Job) -> None:
        started = time.perf_counter()
        self._busy.inc()
        # Parent the execution span to the submit that created the job —
        # run_sweep sees it as the ambient context, so the whole sweep
        # (shards, points, commits) joins the submitter's trace.
        parent = (SpanContext(**job.trace_context)
                  if job.trace_context else None)
        try:
            with self._spans.span("job.execute", parent=parent,
                                  attrs={"job_id": job.job_id,
                                         "mode": job.mode,
                                         "spec_hash": job.spec_hash}):
                result = self._runner(job.spec, workers=self.sweep_workers,
                                      store=self.store, resume=True)
        except Exception as error:  # noqa: BLE001 - reported on the job
            self.queue.finish(
                job, error=f"{type(error).__name__}: {error}")
        else:
            self.queue.finish(job, summary={
                "points": len(result.rows),
                "computed": result.computed,
                "cached": result.cached,
                "workers": result.workers,
                "elapsed_seconds": round(result.elapsed_seconds, 6),
            })
        finally:
            self._busy.dec()
            self._job_seconds.observe(time.perf_counter() - started)
