"""A typed client for the sweep service (urllib-based, no dependencies).

>>> client = ServiceClient("http://127.0.0.1:8080")   # doctest: +SKIP
>>> response = client.submit(preset="logn", quick=True)  # doctest: +SKIP
>>> job = client.wait(response["job"]["job_id"])      # doctest: +SKIP
>>> rows = client.rows(response["spec_hash"])         # doctest: +SKIP

Every failure is raised as a :class:`~repro.service.api.ServiceError`
carrying the HTTP status and the server's error message; transport
failures (daemon not running, connection refused) carry ``status=None``.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Optional, Sequence, Union

from ..sweeps import SweepSpec
from ..telemetry.spans import (
    NO_SPANS,
    SpanRecorder,
    current_span_context,
    encode_traceparent,
)
from .api import ServiceError

__all__ = ["ServiceClient"]

#: Job states that terminate a wait() poll loop.
_TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceClient:
    """Talks to one sweep-service daemon at ``base_url``.

    Transient transport failures (connection refused/reset, a daemon
    mid-restart) on **idempotent GETs** are retried ``retries`` times with
    exponential backoff plus jitter before surfacing; POSTs are never
    retried automatically — a submit or shard completion that half-landed
    must not be silently replayed by the transport layer (the server-side
    dedup/409 machinery handles *deliberate* replays).  The final
    :class:`~repro.service.api.ServiceError` carries the last underlying
    exception as ``last_error``.
    """

    #: First backoff step; doubles per attempt (then jitter is applied).
    RETRY_BACKOFF = 0.1

    def __init__(self, base_url: str = "http://127.0.0.1:8080", *,
                 timeout: float = 30.0, retries: int = 2,
                 spans: SpanRecorder = NO_SPANS):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.spans = spans

    # ----------------------------------------------------------- transport
    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> urllib.request.addinfourl:
        # One span per *logical* request: transport retries stay inside it
        # (the final `attempts` attr says how many it took), and every
        # attempt carries the span's context as `traceparent` plus its
        # ordinal as `x-repro-attempt`, so the daemon can both adopt the
        # trace and count arriving retries.
        with self.spans.span("client.request",
                             attrs={"method": method, "path": path}) as span:
            attempts_left = self.retries if method == "GET" else 0
            backoff = self.RETRY_BACKOFF
            attempt = 0
            while True:
                attempt += 1
                span.set_attr("attempts", attempt)
                try:
                    return self._request_once(method, path, payload,
                                              attempt=attempt)
                except ServiceError as error:
                    # status=None + a recorded transport error marks the
                    # transient class; HTTP-level errors (any status) are
                    # definitive answers and are never retried.
                    if attempts_left <= 0 or error.status is not None \
                            or error.last_error is None:
                        raise
                    attempts_left -= 1
                time.sleep(backoff * (0.5 + random.random()))
                backoff *= 2

    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None, *,
                      attempt: int = 1) -> urllib.request.addinfourl:
        url = f"{self.base_url}{path}"
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers: dict[str, str] = (
            {"Content-Type": "application/json"} if body else {})
        if self.spans.enabled:
            context = current_span_context()
            if context is not None:
                headers["traceparent"] = encode_traceparent(context)
                headers["x-repro-attempt"] = str(attempt)
        request = urllib.request.Request(
            url, data=body, method=method, headers=headers)
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            raise ServiceError(self._error_message(error),
                               status=error.code) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach sweep service at {self.base_url}: "
                f"{error.reason}", status=None, last_error=error) from error
        except (ConnectionResetError, http.client.HTTPException) as error:
            # urlopen lets a mid-response reset (or a server closing the
            # socket between keep-alive requests) escape unwrapped.
            raise ServiceError(
                f"cannot reach sweep service at {self.base_url}: "
                f"{type(error).__name__}: {error}",
                status=None, last_error=error) from error

    @staticmethod
    def _error_message(error: urllib.error.HTTPError) -> str:
        try:
            return json.loads(error.read())["error"]
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            return f"HTTP {error.code}: {error.reason}"

    def _json(self, method: str, path: str,
              payload: Optional[dict] = None) -> Any:
        with self._request(method, path, payload) as response:
            return json.loads(response.read())

    # ------------------------------------------------------------- surface
    def healthz(self) -> dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._json("GET", "/v1/healthz")

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — raw Prometheus text exposition."""
        with self._request("GET", "/v1/metrics") as response:
            return response.read().decode("utf-8")

    def presets(self) -> list[dict[str, Any]]:
        """``GET /v1/presets``."""
        return self._json("GET", "/v1/presets")["presets"]

    def submit(self, spec: Union[SweepSpec, dict, None] = None, *,
               preset: Optional[str] = None, quick: bool = True,
               seed: Optional[int] = None,
               overrides: Optional[dict] = None,
               priority: int = 0,
               mode: Optional[str] = None) -> dict[str, Any]:
        """``POST /v1/sweeps`` with a spec or a preset (+overrides).

        Returns the submit response: ``cached`` (served instantly from the
        store, ``job`` is ``None``), ``created`` (a new job was enqueued)
        or neither (an in-flight job for the same spec was joined).
        ``mode="remote"`` shards the job onto the lease board for
        ``repro worker`` agents instead of the daemon's own pool.
        """
        if (spec is None) == (preset is None):
            raise ServiceError("submit() needs exactly one of spec= or "
                               "preset=", status=None)
        if spec is not None:
            payload: dict[str, Any] = {
                "spec": spec.to_dict() if isinstance(spec, SweepSpec) else spec,
            }
        else:
            payload = {"preset": preset, "quick": quick}
            if seed is not None:
                payload["seed"] = seed
            if overrides:
                payload["overrides"] = dict(overrides)
        if priority:
            payload["priority"] = priority
        if mode is not None:
            payload["mode"] = mode
        return self._json("POST", "/v1/sweeps", payload)

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/<id>``."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /v1/jobs``."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``POST /v1/jobs/<id>/cancel``."""
        return self._json("POST", f"/v1/jobs/{job_id}/cancel", {})

    # --------------------------------------------------------------- shards
    def lease_shard(self, worker: Optional[str] = None, *,
                    ttl: Optional[float] = None) -> Optional[dict[str, Any]]:
        """``POST /v1/shards/lease`` — a shard lease, or None when idle."""
        payload: dict[str, Any] = {"worker": worker}
        if ttl is not None:
            payload["ttl"] = ttl
        return self._json("POST", "/v1/shards/lease", payload)["shard"]

    def shard_heartbeat(self, lease_id: str) -> dict[str, Any]:
        """``POST /v1/shards/<lease>/heartbeat`` — renew a lease.

        Raises :class:`ServiceError` with status 409 when the lease is no
        longer current (expired and requeued), 404 when unknown.
        """
        return self._json("POST", f"/v1/shards/{lease_id}/heartbeat", {})

    def complete_shard(self, lease_id: str, rows: list[dict[str, Any]], *,
                       metrics: Optional[dict[str, Any]] = None
                       ) -> dict[str, Any]:
        """``POST /v1/shards/<lease>/complete`` — commit a shard's rows.

        A 409 means the lease expired (or was already completed) and the
        rows were discarded — idempotently safe, since the requeued shard
        recomputes the identical bytes.
        """
        payload: dict[str, Any] = {"rows": rows}
        if metrics is not None:
            payload["metrics"] = metrics
        return self._json("POST", f"/v1/shards/{lease_id}/complete", payload)

    def wait(self, job_id: str, *, timeout: Optional[float] = None,
             poll: float = 0.1) -> dict[str, Any]:
        """Poll a job until it reaches a terminal state.

        Returns the final job payload for ``done`` jobs; raises
        :class:`ServiceError` when the job failed, was cancelled, or
        ``timeout`` elapsed first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            state = payload["state"]
            if state in _TERMINAL_STATES:
                if state != "done":
                    detail = payload.get("error") or "no error recorded"
                    raise ServiceError(
                        f"job {job_id} {state}: {detail}", status=None)
                return payload
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {state} after {timeout:.1f}s",
                    status=None)
            time.sleep(poll)

    def submit_and_wait(self, *, timeout: Optional[float] = None,
                        poll: float = 0.1, **submit_kwargs) -> dict[str, Any]:
        """Submit, then wait unless the answer came from cache.

        Returns the submit response with ``"job"`` replaced by the final
        job payload (for cached responses it stays ``None``).
        """
        response = self.submit(**submit_kwargs)
        if not response["cached"]:
            response["job"] = self.wait(response["job"]["job_id"],
                                        timeout=timeout, poll=poll)
        return response

    # ---------------------------------------------------------------- rows
    def iter_row_lines(self, spec_hash: str) -> Iterator[str]:
        """``GET /v1/sweeps/<hash>/rows`` as raw JSONL lines.

        The lines are byte-identical to the store's encoding (and to what
        ``json.dumps`` produces for a direct ``run_sweep``'s rows), so
        comparing serving paths never trips over formatting.
        """
        with self._request("GET", f"/v1/sweeps/{spec_hash}/rows") as response:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line:
                    yield line

    def rows(self, spec_hash: str) -> list[dict[str, Any]]:
        """The committed rows of a sweep, parsed."""
        return [json.loads(line) for line in self.iter_row_lines(spec_hash)]

    def aggregate(self, spec_hash: str, *, by: Sequence[str],
                  value: str = "rounds_mean",
                  stats: Optional[Sequence[str]] = None
                  ) -> list[dict[str, Any]]:
        """``GET /v1/sweeps/<hash>/aggregate``."""
        query = f"by={','.join(by)}&value={value}"
        if stats:
            query += f"&stats={','.join(stats)}"
        return self._json("GET",
                          f"/v1/sweeps/{spec_hash}/aggregate?{query}")["rows"]
