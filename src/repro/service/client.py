"""A typed client for the sweep service (urllib-based, no dependencies).

>>> client = ServiceClient("http://127.0.0.1:8080")   # doctest: +SKIP
>>> response = client.submit(preset="logn", quick=True)  # doctest: +SKIP
>>> job = client.wait(response["job"]["job_id"])      # doctest: +SKIP
>>> rows = client.rows(response["spec_hash"])         # doctest: +SKIP

Every failure is raised as a :class:`~repro.service.api.ServiceError`
carrying the HTTP status and the server's error message; transport
failures (daemon not running, connection refused) carry ``status=None``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Optional, Sequence, Union

from ..sweeps import SweepSpec
from .api import ServiceError

__all__ = ["ServiceClient"]

#: Job states that terminate a wait() poll loop.
_TERMINAL_STATES = ("done", "failed", "cancelled")


class ServiceClient:
    """Talks to one sweep-service daemon at ``base_url``."""

    def __init__(self, base_url: str = "http://127.0.0.1:8080", *,
                 timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ----------------------------------------------------------- transport
    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> urllib.request.addinfourl:
        url = f"{self.base_url}{path}"
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {})
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            raise ServiceError(self._error_message(error),
                               status=error.code) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach sweep service at {self.base_url}: "
                f"{error.reason}", status=None) from None

    @staticmethod
    def _error_message(error: urllib.error.HTTPError) -> str:
        try:
            return json.loads(error.read())["error"]
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            return f"HTTP {error.code}: {error.reason}"

    def _json(self, method: str, path: str,
              payload: Optional[dict] = None) -> Any:
        with self._request(method, path, payload) as response:
            return json.loads(response.read())

    # ------------------------------------------------------------- surface
    def healthz(self) -> dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._json("GET", "/v1/healthz")

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — raw Prometheus text exposition."""
        with self._request("GET", "/v1/metrics") as response:
            return response.read().decode("utf-8")

    def presets(self) -> list[dict[str, Any]]:
        """``GET /v1/presets``."""
        return self._json("GET", "/v1/presets")["presets"]

    def submit(self, spec: Union[SweepSpec, dict, None] = None, *,
               preset: Optional[str] = None, quick: bool = True,
               seed: Optional[int] = None,
               overrides: Optional[dict] = None,
               priority: int = 0) -> dict[str, Any]:
        """``POST /v1/sweeps`` with a spec or a preset (+overrides).

        Returns the submit response: ``cached`` (served instantly from the
        store, ``job`` is ``None``), ``created`` (a new job was enqueued)
        or neither (an in-flight job for the same spec was joined).
        """
        if (spec is None) == (preset is None):
            raise ServiceError("submit() needs exactly one of spec= or "
                               "preset=", status=None)
        if spec is not None:
            payload: dict[str, Any] = {
                "spec": spec.to_dict() if isinstance(spec, SweepSpec) else spec,
            }
        else:
            payload = {"preset": preset, "quick": quick}
            if seed is not None:
                payload["seed"] = seed
            if overrides:
                payload["overrides"] = dict(overrides)
        if priority:
            payload["priority"] = priority
        return self._json("POST", "/v1/sweeps", payload)

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/<id>``."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /v1/jobs``."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``POST /v1/jobs/<id>/cancel``."""
        return self._json("POST", f"/v1/jobs/{job_id}/cancel", {})

    def wait(self, job_id: str, *, timeout: Optional[float] = None,
             poll: float = 0.1) -> dict[str, Any]:
        """Poll a job until it reaches a terminal state.

        Returns the final job payload for ``done`` jobs; raises
        :class:`ServiceError` when the job failed, was cancelled, or
        ``timeout`` elapsed first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            state = payload["state"]
            if state in _TERMINAL_STATES:
                if state != "done":
                    detail = payload.get("error") or "no error recorded"
                    raise ServiceError(
                        f"job {job_id} {state}: {detail}", status=None)
                return payload
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {state} after {timeout:.1f}s",
                    status=None)
            time.sleep(poll)

    def submit_and_wait(self, *, timeout: Optional[float] = None,
                        poll: float = 0.1, **submit_kwargs) -> dict[str, Any]:
        """Submit, then wait unless the answer came from cache.

        Returns the submit response with ``"job"`` replaced by the final
        job payload (for cached responses it stays ``None``).
        """
        response = self.submit(**submit_kwargs)
        if not response["cached"]:
            response["job"] = self.wait(response["job"]["job_id"],
                                        timeout=timeout, poll=poll)
        return response

    # ---------------------------------------------------------------- rows
    def iter_row_lines(self, spec_hash: str) -> Iterator[str]:
        """``GET /v1/sweeps/<hash>/rows`` as raw JSONL lines.

        The lines are byte-identical to the store's encoding (and to what
        ``json.dumps`` produces for a direct ``run_sweep``'s rows), so
        comparing serving paths never trips over formatting.
        """
        with self._request("GET", f"/v1/sweeps/{spec_hash}/rows") as response:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line:
                    yield line

    def rows(self, spec_hash: str) -> list[dict[str, Any]]:
        """The committed rows of a sweep, parsed."""
        return [json.loads(line) for line in self.iter_row_lines(spec_hash)]

    def aggregate(self, spec_hash: str, *, by: Sequence[str],
                  value: str = "rounds_mean",
                  stats: Optional[Sequence[str]] = None
                  ) -> list[dict[str, Any]]:
        """``GET /v1/sweeps/<hash>/aggregate``."""
        query = f"by={','.join(by)}&value={value}"
        if stats:
            query += f"&stats={','.join(stats)}"
        return self._json("GET",
                          f"/v1/sweeps/{spec_hash}/aggregate?{query}")["rows"]
