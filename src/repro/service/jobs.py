"""The service's job queue: a priority queue plus a job registry.

Three invariants turn "a queue of sweeps" into something safe to run behind
an HTTP daemon:

* **dedup by content hash** — while a job for a spec is queued or running,
  submitting the same spec (same :meth:`SweepSpec.content_hash`, which
  covers the grid, seeds *and* :data:`CODE_VERSION`) returns the existing
  job instead of creating a second one, so concurrent identical submits
  coalesce into one computation;
* **per-spec-directory serialization** — :meth:`JobQueue.claim` never hands
  out a job whose store directory (``spec.slug()``) is currently being
  executed, so in-process workers cannot race on one directory (the
  cross-process half of that story is the store's advisory
  :class:`~repro.sweeps.store.DirectoryLock`).  Today this is implied by
  the dedup invariant — two active jobs cannot share a slug because the
  slug embeds the content hash — so the busy-set is defense in depth: it
  keeps the invariant *local* to the queue instead of resting on the hash
  scheme, surviving e.g. a future forced-recompute submission path;
* **priority with FIFO ties** — higher ``priority`` runs first, equal
  priorities run in submission order.

Jobs are in-memory only: the durable artefact is the
:class:`~repro.sweeps.store.SweepStore`, which is why a restarted daemon
answers re-submitted specs from cache instead of replaying a journal.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from ..sweeps import SweepSpec
from ..telemetry import MetricsRegistry
from .api import ServiceError

__all__ = ["Job", "JobQueue", "JobState"]


class JobState(str, Enum):
    """Lifecycle of a job: queued → running → done/failed, or cancelled."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States in which a spec hash is considered in-flight (dedup targets).
ACTIVE_STATES = (JobState.QUEUED, JobState.RUNNING)


@dataclass
class Job:
    """One submitted sweep and its execution record."""

    job_id: str
    spec: SweepSpec
    spec_hash: str
    priority: int = 0
    state: JobState = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    summary: Optional[dict[str, Any]] = None

    def to_dict(self) -> dict[str, Any]:
        """JSON payload of the job (what ``GET /v1/jobs/<id>`` returns)."""
        return {
            "job_id": self.job_id,
            "spec_hash": self.spec_hash,
            "spec_name": self.spec.name,
            "num_points": self.spec.num_points,
            "priority": self.priority,
            "state": self.state.value,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "summary": self.summary,
        }


class JobQueue:
    """Thread-safe priority job queue with in-flight dedup.

    All state transitions happen under one lock; workers block in
    :meth:`claim` on the associated condition variable and are woken by
    submissions, finishes (which may unblock a same-directory job) and
    :meth:`close`.
    """

    def __init__(self, *, registry: Optional[MetricsRegistry] = None):
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, str]] = []
        self._jobs: dict[str, Job] = {}
        self._active_by_hash: dict[str, str] = {}
        self._busy_directories: set[str] = set()
        self._ids = itertools.count(1)
        self._ticket = itertools.count(1)
        self._closed = False
        # Lifecycle metrics (a shared registry when embedded in a service;
        # a private one otherwise, so the call sites stay branch-free).
        # The registry has its own lock — safe to touch under self._lock.
        registry = registry or MetricsRegistry()
        self._submitted = registry.counter(
            "jobs_submitted_total", "Jobs accepted into the queue")
        self._dedup_hits = registry.counter(
            "jobs_dedup_hits_total",
            "Submits coalesced onto an in-flight job of the same spec hash")
        self._finished = {
            state: registry.counter("jobs_finished_total",
                                    "Jobs leaving the queue, by final state",
                                    state=state.value)
            for state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)
        }
        self._gauge_queued = registry.gauge("jobs_queued", "Queue depth")
        self._gauge_running = registry.gauge("jobs_running",
                                             "Jobs currently executing")

    # ------------------------------------------------------------- submit
    def submit(self, spec: SweepSpec, *, priority: int = 0
               ) -> tuple[Job, bool]:
        """Enqueue ``spec``; returns ``(job, created)``.

        ``created`` is ``False`` when an active (queued/running) job for
        the same content hash already exists — that job is returned
        instead, so duplicate submits coalesce.
        """
        spec_hash = spec.content_hash()
        with self._wakeup:
            if self._closed:
                raise ServiceError("the job queue is shut down", status=503)
            active_id = self._active_by_hash.get(spec_hash)
            if active_id is not None:
                self._dedup_hits.inc()
                return self._jobs[active_id], False
            job = Job(job_id=f"job-{next(self._ids):06d}", spec=spec,
                      spec_hash=spec_hash, priority=priority)
            self._jobs[job.job_id] = job
            self._active_by_hash[spec_hash] = job.job_id
            heapq.heappush(self._heap,
                           (-priority, next(self._ticket), job.job_id))
            self._submitted.inc()
            self._gauge_queued.inc()
            self._wakeup.notify()
            return job, True

    # -------------------------------------------------------------- claim
    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a runnable job is available and mark it running.

        Returns ``None`` when the queue is closed or ``timeout`` elapses.
        A queued job whose store directory is being executed by another
        worker stays queued until that directory frees up.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wakeup:
            while True:
                if self._closed:
                    return None
                job = self._pop_runnable()
                if job is not None:
                    job.state = JobState.RUNNING
                    job.started_at = time.time()
                    self._busy_directories.add(job.spec.slug())
                    self._gauge_queued.dec()
                    self._gauge_running.inc()
                    return job
                if deadline is None:
                    self._wakeup.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._wakeup.wait(remaining):
                        return None

    def _pop_runnable(self) -> Optional[Job]:
        """Highest-priority queued job whose directory is free (or None)."""
        deferred: list[tuple[int, int, str]] = []
        found: Optional[Job] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            job = self._jobs[entry[2]]
            if job.state is not JobState.QUEUED:
                continue  # cancelled while queued; drop the entry
            if job.spec.slug() in self._busy_directories:
                deferred.append(entry)
                continue
            found = job
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return found

    # ------------------------------------------------------------- finish
    def finish(self, job: Job, *, summary: Optional[dict[str, Any]] = None,
               error: Optional[str] = None) -> None:
        """Mark a running job done (or failed when ``error`` is given)."""
        with self._wakeup:
            job.finished_at = time.time()
            job.summary = summary
            job.error = error
            job.state = JobState.FAILED if error else JobState.DONE
            self._finished[job.state].inc()
            self._gauge_running.dec()
            self._busy_directories.discard(job.spec.slug())
            if self._active_by_hash.get(job.spec_hash) == job.job_id:
                del self._active_by_hash[job.spec_hash]
            # A queued job for the freed directory may be runnable now.
            self._wakeup.notify_all()

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (idempotent; running jobs cannot be)."""
        with self._wakeup:
            job = self._get(job_id)
            if job.state is JobState.CANCELLED:
                return job
            if job.state is not JobState.QUEUED:
                raise ServiceError(
                    f"job {job_id} is {job.state.value} and cannot be "
                    "cancelled", status=409)
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            self._finished[JobState.CANCELLED].inc()
            self._gauge_queued.dec()
            if self._active_by_hash.get(job.spec_hash) == job.job_id:
                del self._active_by_hash[job.spec_hash]
            return job

    # ------------------------------------------------------------ queries
    def _get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}", status=404) from None

    def get(self, job_id: str) -> Job:
        """The job registered under ``job_id`` (404 ServiceError if none)."""
        with self._lock:
            return self._get(job_id)

    def describe(self, job_id: str) -> dict[str, Any]:
        """A consistent JSON snapshot of one job."""
        with self._lock:
            return self._get(job_id).to_dict()

    def jobs(self) -> list[Job]:
        """Every job ever submitted, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.job_id)

    def active_job_for(self, spec_hash: str) -> Optional[Job]:
        """The in-flight job of a spec hash, if any."""
        with self._lock:
            job_id = self._active_by_hash.get(spec_hash)
            return self._jobs[job_id] if job_id is not None else None

    def counts(self) -> dict[str, int]:
        """Job tally per state (the healthz summary)."""
        with self._lock:
            tally = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                tally[job.state.value] += 1
            return tally

    # ------------------------------------------------------------- close
    def close(self) -> None:
        """Stop accepting work and wake every blocked :meth:`claim`."""
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()
