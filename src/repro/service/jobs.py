"""The service's job queue: a priority queue plus a job registry.

Three invariants turn "a queue of sweeps" into something safe to run behind
an HTTP daemon:

* **dedup by content hash** — while a job for a spec is queued or running,
  submitting the same spec (same :meth:`SweepSpec.content_hash`, which
  covers the grid, seeds *and* :data:`CODE_VERSION`) returns the existing
  job instead of creating a second one, so concurrent identical submits
  coalesce into one computation;
* **per-spec-directory serialization** — :meth:`JobQueue.claim` never hands
  out a job whose store directory (``spec.slug()``) is currently being
  executed, so in-process workers cannot race on one directory (the
  cross-process half of that story is the store's advisory
  :class:`~repro.sweeps.store.DirectoryLock`).  Today this is implied by
  the dedup invariant — two active jobs cannot share a slug because the
  slug embeds the content hash — so the busy-set is defense in depth: it
  keeps the invariant *local* to the queue instead of resting on the hash
  scheme, surviving e.g. a future forced-recompute submission path;
* **priority with FIFO ties** — higher ``priority`` runs first, equal
  priorities run in submission order.

Jobs are in-memory only: the durable artefact is the
:class:`~repro.sweeps.store.SweepStore`, which is why a restarted daemon
answers re-submitted specs from cache instead of replaying a journal.
"""

from __future__ import annotations

import heapq
import itertools
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from ..sweeps import SweepSpec, SweepStore
from ..sweeps.scheduler import default_chunk_size, partition
from ..telemetry import DEFAULT_DURATION_BUCKETS, MetricsRegistry
from ..telemetry.logs import StructuredLogger
from ..telemetry.spans import (
    NO_SPANS,
    Span,
    SpanContext,
    SpanRecorder,
    encode_traceparent,
)
from .api import ServiceError

__all__ = ["Job", "JobQueue", "JobState", "Shard", "ShardBoard", "ShardState"]

#: Fabric-level structured events (same JSON-lines stream as the store's
#: lock events) — a failed shard commit must leave a trace even though the
#: error also propagates to the completing worker's HTTP response.
_FABRIC_EVENTS = StructuredLogger(sys.stderr, component="service.fabric")


class JobState(str, Enum):
    """Lifecycle of a job: queued → running → done/failed, or cancelled."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States in which a spec hash is considered in-flight (dedup targets).
ACTIVE_STATES = (JobState.QUEUED, JobState.RUNNING)


@dataclass
class Job:
    """One submitted sweep and its execution record."""

    job_id: str
    spec: SweepSpec
    spec_hash: str
    priority: int = 0
    #: "local" jobs are claimed by the in-process worker pool; "remote"
    #: jobs are sharded onto the :class:`ShardBoard` and executed by
    #: leased ``repro worker`` agents over HTTP.
    mode: str = "local"
    state: JobState = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    summary: Optional[dict[str, Any]] = None
    #: Span context of the submit that created this job (``{"trace_id",
    #: "span_id"}``) — execution spans parent to it, which is how a trace
    #: crosses the submit-now/execute-later boundary.  Not part of the
    #: JSON payload: purely a telemetry side channel.
    trace_context: Optional[dict[str, str]] = field(default=None, repr=False)

    def to_dict(self) -> dict[str, Any]:
        """JSON payload of the job (what ``GET /v1/jobs/<id>`` returns)."""
        return {
            "job_id": self.job_id,
            "spec_hash": self.spec_hash,
            "spec_name": self.spec.name,
            "num_points": self.spec.num_points,
            "priority": self.priority,
            "mode": self.mode,
            "state": self.state.value,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "summary": self.summary,
        }


class JobQueue:
    """Thread-safe priority job queue with in-flight dedup.

    All state transitions happen under one lock; workers block in
    :meth:`claim` on the associated condition variable and are woken by
    submissions, finishes (which may unblock a same-directory job) and
    :meth:`close`.
    """

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 spans: SpanRecorder = NO_SPANS):
        self._spans = spans
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        # _wakeup wraps _lock, so holding either guards these fields
        # (checked statically by lint rule LOCK001, see docs/LINT.md).
        self._heap: list[tuple[int, int, str]] = []  # guarded-by: _lock, _wakeup
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock, _wakeup
        self._active_by_hash: dict[str, str] = {}  # guarded-by: _lock, _wakeup
        self._busy_directories: set[str] = set()  # guarded-by: _lock, _wakeup
        self._ids = itertools.count(1)  # atomic; no guard needed
        self._ticket = itertools.count(1)  # only advanced under _wakeup
        self._closed = False  # guarded-by: _lock, _wakeup
        # Lifecycle metrics (a shared registry when embedded in a service;
        # a private one otherwise, so the call sites stay branch-free).
        # The registry has its own lock — safe to touch under self._lock.
        registry = registry or MetricsRegistry()
        self._submitted = registry.counter(
            "jobs_submitted_total", "Jobs accepted into the queue")
        self._dedup_hits = registry.counter(
            "jobs_dedup_hits_total",
            "Submits coalesced onto an in-flight job of the same spec hash")
        self._finished = {
            state: registry.counter("jobs_finished_total",
                                    "Jobs leaving the queue, by final state",
                                    state=state.value)
            for state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)
        }
        self._gauge_queued = registry.gauge("jobs_queued", "Queue depth")
        self._gauge_running = registry.gauge("jobs_running",
                                             "Jobs currently executing")

    # ------------------------------------------------------------- submit
    def submit(self, spec: SweepSpec, *, priority: int = 0,
               mode: str = "local") -> tuple[Job, bool]:
        """Enqueue ``spec``; returns ``(job, created)``.

        ``created`` is ``False`` when an active (queued/running) job for
        the same content hash already exists — that job is returned
        instead, so duplicate submits coalesce (regardless of ``mode``:
        the spec is already being computed, by somebody).

        ``mode="remote"`` registers the job without putting it on the
        worker-pool heap: remote jobs are executed shard-by-shard by
        leased workers via the :class:`ShardBoard`, which transitions
        them to running through :meth:`activate_remote`.
        """
        spec_hash = spec.content_hash()
        with self._spans.span("job.submit",
                              attrs={"mode": mode,
                                     "spec_hash": spec_hash}) as span:
            with self._wakeup:
                if self._closed:
                    raise ServiceError("the job queue is shut down",
                                       status=503)
                active_id = self._active_by_hash.get(spec_hash)
                if active_id is not None:
                    self._dedup_hits.inc()
                    span.set_attr("job_id", active_id)
                    span.set_attr("dedup", True)
                    return self._jobs[active_id], False
                job = Job(job_id=f"job-{next(self._ids):06d}", spec=spec,
                          spec_hash=spec_hash, priority=priority, mode=mode)
                span.set_attr("job_id", job.job_id)
                if self._spans.enabled:
                    job.trace_context = {"trace_id": span.trace_id,
                                         "span_id": span.span_id}
                self._jobs[job.job_id] = job
                self._active_by_hash[spec_hash] = job.job_id
                if mode == "local":
                    heapq.heappush(
                        self._heap,
                        (-priority, next(self._ticket), job.job_id))
                self._submitted.inc()
                self._gauge_queued.inc()
                self._wakeup.notify()
                return job, True

    def activate_remote(self, job: Job) -> None:
        """Transition a queued remote job to running (board activation).

        The board calls this once, before publishing the job's shards for
        lease.  The slug joins the busy-directory set so a *local* job for
        the same store directory cannot start while remote workers are
        committing into it.
        """
        with self._wakeup:
            if job.mode != "remote":
                raise ServiceError(
                    f"job {job.job_id} is a {job.mode} job; only remote "
                    "jobs are activated by the shard board", status=409)
            if job.state is not JobState.QUEUED:
                raise ServiceError(
                    f"job {job.job_id} is {job.state.value}; it cannot be "
                    "activated", status=409)
            job.state = JobState.RUNNING
            job.started_at = time.time()
            self._busy_directories.add(job.spec.slug())
            self._gauge_queued.dec()
            self._gauge_running.inc()

    # -------------------------------------------------------------- claim
    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a runnable job is available and mark it running.

        Returns ``None`` when the queue is closed or ``timeout`` elapses.
        A queued job whose store directory is being executed by another
        worker stays queued until that directory frees up.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wakeup:
            while True:
                if self._closed:
                    return None
                job = self._pop_runnable()
                if job is not None:
                    job.state = JobState.RUNNING
                    job.started_at = time.time()
                    self._busy_directories.add(job.spec.slug())
                    self._gauge_queued.dec()
                    self._gauge_running.inc()
                    return job
                if deadline is None:
                    self._wakeup.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._wakeup.wait(remaining):
                        return None

    def _pop_runnable(self) -> Optional[Job]:  # guarded-by: _lock
        """Highest-priority queued job whose directory is free (or None)."""
        deferred: list[tuple[int, int, str]] = []
        found: Optional[Job] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            job = self._jobs[entry[2]]
            if job.state is not JobState.QUEUED:
                continue  # cancelled while queued; drop the entry
            if job.spec.slug() in self._busy_directories:
                deferred.append(entry)
                continue
            found = job
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return found

    # ------------------------------------------------------------- finish
    def finish(self, job: Job, *, summary: Optional[dict[str, Any]] = None,
               error: Optional[str] = None) -> None:
        """Mark a running job done (or failed when ``error`` is given)."""
        with self._wakeup:
            job.finished_at = time.time()
            job.summary = summary
            job.error = error
            job.state = JobState.FAILED if error else JobState.DONE
            self._finished[job.state].inc()
            self._gauge_running.dec()
            self._busy_directories.discard(job.spec.slug())
            if self._active_by_hash.get(job.spec_hash) == job.job_id:
                del self._active_by_hash[job.spec_hash]
            # A queued job for the freed directory may be runnable now.
            self._wakeup.notify_all()

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (idempotent; running jobs cannot be)."""
        with self._wakeup:
            job = self._get(job_id)
            if job.state is JobState.CANCELLED:
                return job
            if job.state is not JobState.QUEUED:
                raise ServiceError(
                    f"job {job_id} is {job.state.value} and cannot be "
                    "cancelled", status=409)
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            self._finished[JobState.CANCELLED].inc()
            self._gauge_queued.dec()
            if self._active_by_hash.get(job.spec_hash) == job.job_id:
                del self._active_by_hash[job.spec_hash]
            return job

    # ------------------------------------------------------------ queries
    def _get(self, job_id: str) -> Job:  # guarded-by: _lock
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}", status=404) from None

    def get(self, job_id: str) -> Job:
        """The job registered under ``job_id`` (404 ServiceError if none)."""
        with self._lock:
            return self._get(job_id)

    def describe(self, job_id: str) -> dict[str, Any]:
        """A consistent JSON snapshot of one job."""
        with self._lock:
            return self._get(job_id).to_dict()

    def jobs(self) -> list[Job]:
        """Every job ever submitted, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.job_id)

    def active_job_for(self, spec_hash: str) -> Optional[Job]:
        """The in-flight job of a spec hash, if any."""
        with self._lock:
            job_id = self._active_by_hash.get(spec_hash)
            return self._jobs[job_id] if job_id is not None else None

    def counts(self) -> dict[str, int]:
        """Job tally per state (the healthz summary)."""
        with self._lock:
            tally = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                tally[job.state.value] += 1
            return tally

    # ------------------------------------------------------------- close
    def close(self) -> None:
        """Stop accepting work and wake every blocked :meth:`claim`."""
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()


# ------------------------------------------------------------------------
# The shard board: leases for remote workers.
# ------------------------------------------------------------------------

class ShardState(str, Enum):
    """Lifecycle of one shard: pending → leased → done (or back)."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"


@dataclass
class Shard:
    """One leased unit of a remote job: a contiguous slice of grid points."""

    shard_id: str
    job_id: str
    indices: list[int]
    #: The point keys this shard must produce — completions are validated
    #: against this set, so a confused worker cannot commit foreign rows.
    expected_keys: frozenset[str]
    state: ShardState = ShardState.PENDING
    attempts: int = 0
    lease_id: Optional[str] = None
    worker: Optional[str] = None
    ttl: float = 0.0
    leased_at: Optional[float] = None
    expires_at: Optional[float] = None
    #: Open span of the current lease (telemetry side channel, not part of
    #: the JSON payload) and the context of the last lease that died
    #: (expired / commit-failed) — the replacement lease's span links to
    #: it, which is what attributes a recompute to the kill that caused it.
    lease_span: Optional[Span] = field(default=None, repr=False, compare=False)
    prev_lease_context: Optional[SpanContext] = field(
        default=None, repr=False, compare=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "job_id": self.job_id,
            "indices": list(self.indices),
            "state": self.state.value,
            "attempts": self.attempts,
            "worker": self.worker,
            "expires_at": self.expires_at,
        }


class ShardBoard:
    """Shard-level leases turning remote jobs into exactly-once tables.

    A remote job is activated into shards (contiguous point-index slices,
    exactly the shards :func:`~repro.sweeps.scheduler.run_sweep` would
    build).  Workers *lease* a shard, *heartbeat* to keep the lease alive
    while computing, and *complete* it with the computed rows.  The board
    enforces the coordination invariants the distributed fabric rests on:

    * **requeue on expiry** — a lease whose holder stops heartbeating
      (killed worker, dead machine, network partition) expires and its
      shard returns to pending for the next lease request.  Expiry is
      *lazy*: every board entry point sweeps overdue leases first, so no
      background timer thread is needed.
    * **stale completions are rejected, idempotently** — a completion (or
      heartbeat) quoting a lease that expired, was superseded, or already
      completed gets HTTP 409 and its rows are discarded.  Rows are safe
      to discard precisely because shards are deterministic functions of
      ``(spec, indices)``: whoever holds the current lease produces the
      identical bytes.  (And the store's first-commit-wins contract makes
      even a racing duplicate commit harmless — the 409 is the fabric
      being *tidy*, the store is what makes it *correct*.)
    * **single transition to done** — a shard is marked done under the
      board lock *before* its rows are committed, so a concurrent expiry
      sweep can never requeue a shard whose commit is in flight; a failed
      commit reverts it to pending.

    All mutation happens under one lock; store commits happen outside it.
    """

    def __init__(self, queue: JobQueue, store: SweepStore, *,
                 lease_ttl: float = 30.0,
                 shard_points: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None,
                 spans: SpanRecorder = NO_SPANS):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if shard_points is not None and shard_points < 1:
            raise ValueError("shard_points must be positive")
        self.queue = queue
        self.store = store
        self.lease_ttl = float(lease_ttl)
        self.shard_points = shard_points
        self._spans = spans
        self._lock = threading.Lock()
        self._shards: dict[str, Shard] = {}  # guarded-by: _lock
        self._lease_order: list[str] = []  # FIFO shard ids; guarded-by: _lock
        self._leases: dict[str, str] = {}  # lease id -> shard id; guarded-by: _lock
        #: Terminal leases and why they ended ("expired" / "completed" /
        #: "commit-failed") — the 409 diagnosis for late completions.
        self._closed_leases: dict[str, str] = {}  # guarded-by: _lock
        self._entries: dict[str, dict[str, Any]] = {}  # per-job accounting; guarded-by: _lock
        self._registry = registry or MetricsRegistry()
        self._leased_total = self._registry.counter(
            "shards_leased_total", "Shard leases granted to remote workers")
        self._completed_total = self._registry.counter(
            "shards_completed_total", "Shards completed by remote workers")
        self._requeued_total = self._registry.counter(
            "shards_requeued_total",
            "Shards returned to pending after their lease expired")
        self._heartbeats_total = self._registry.counter(
            "shard_heartbeats_total", "Lease renewals from remote workers")
        self._gauge_pending = self._registry.gauge(
            "shards_pending", "Shards awaiting a worker lease")
        self._gauge_leased = self._registry.gauge(
            "shards_leased", "Shards currently leased out")
        self._lease_seconds = self._registry.histogram(
            "shard_lease_seconds",
            "Lease-to-completion wall time per shard",
            DEFAULT_DURATION_BUCKETS)
        self._commit_seconds = self._registry.histogram(
            "store_commit_seconds", "Wall time per shard store commit",
            DEFAULT_DURATION_BUCKETS, backend=store.scheme)

    def _rejected(self, reason: str) -> None:
        self._registry.counter(
            "shard_completions_rejected_total",
            "Stale shard completions discarded (lease no longer current)",
            reason=reason).inc()

    # ----------------------------------------------------------- activate
    def activate(self, job: Job) -> Job:
        """Shard a freshly submitted remote job and publish its leases.

        Pending points are what the store does not hold yet (resume
        semantics identical to ``run_sweep``); a job with nothing pending
        finishes immediately as a pure cache hit.
        """
        self.queue.activate_remote(job)
        spec = job.spec
        points = spec.expand()
        committed = self.store.completed_keys(spec)
        pending = [point for point in points if point.key not in committed]
        # The job-level span brackets the whole remote execution (activate
        # through last shard commit); every lease span parents to it, so
        # the trace stays one connected tree across workers and hosts.
        parent = (SpanContext(**job.trace_context)
                  if job.trace_context else None)
        job_span = self._spans.start_span(
            "job.execute", parent=parent,
            attrs={"job_id": job.job_id, "mode": "remote",
                   "spec_hash": job.spec_hash,
                   "points_total": len(points),
                   "points_cached": len(points) - len(pending)})
        entry = {
            "job": job,
            "total": len(points),
            "cached": len(points) - len(pending),
            "computed": 0,
            "committed_shards": 0,
            "requeued": 0,
            "workers": set(),
            "registry": MetricsRegistry(),
            "started": time.time(),
            "shard_ids": [],
            "span": job_span,
        }
        if not pending:
            self._spans.end_span(job_span, status="cached")
            self.queue.finish(job, summary=self._summary(entry))
            return job
        chunk = self.shard_points or default_chunk_size(len(pending), 4)
        key_of = {point.index: point.key for point in points}
        with self._lock:
            self._entries[job.job_id] = entry
            for number, indices in enumerate(
                    partition([point.index for point in pending], chunk)):
                shard = Shard(
                    shard_id=f"{job.job_id}-s{number:03d}",
                    job_id=job.job_id, indices=indices,
                    expected_keys=frozenset(key_of[i] for i in indices))
                self._shards[shard.shard_id] = shard
                self._lease_order.append(shard.shard_id)
                entry["shard_ids"].append(shard.shard_id)
                self._gauge_pending.inc()
        return job

    # -------------------------------------------------------------- lease
    def lease(self, worker: Optional[str] = None, *,
              ttl: Optional[float] = None) -> Optional[dict[str, Any]]:
        """Grant the oldest pending shard to ``worker`` (None when idle).

        The returned payload is everything a worker needs to compute the
        shard bit-identically: the full spec dict plus the point indices —
        the exact payload ``run_sweep`` hands its pool workers.
        """
        ttl = self.lease_ttl if ttl is None else float(ttl)
        if ttl <= 0:
            raise ServiceError("lease ttl must be positive")
        with self._lock:
            self._expire_overdue_locked()
            shard = next((self._shards[shard_id]
                          for shard_id in self._lease_order
                          if self._shards[shard_id].state
                          is ShardState.PENDING), None)
            if shard is None:
                return None
            lease_id = uuid.uuid4().hex
            now = time.time()
            shard.state = ShardState.LEASED
            shard.lease_id = lease_id
            shard.worker = worker
            shard.ttl = ttl
            shard.leased_at = now
            shard.expires_at = now + ttl
            shard.attempts += 1
            self._leases[lease_id] = shard.shard_id
            self._leased_total.inc()
            self._gauge_pending.dec()
            self._gauge_leased.inc()
            entry = self._entries[shard.job_id]
            job = entry["job"]
            job_span: Span = entry["span"]
            shard.lease_span = self._spans.start_span(
                "shard.lease", parent=job_span.context,
                attrs={"shard_id": shard.shard_id, "lease_id": lease_id,
                       "worker": worker, "attempt": shard.attempts,
                       "points": len(shard.indices)})
            if shard.prev_lease_context is not None:
                # The causal edge the ISSUE's kill scenario needs: this
                # lease exists *because* the previous one died.
                shard.lease_span.link(shard.prev_lease_context,
                                      reason="requeued")
            return {
                "lease_id": lease_id,
                "shard_id": shard.shard_id,
                "job_id": shard.job_id,
                "spec_hash": job.spec_hash,
                "spec": job.spec.to_dict(),
                "indices": list(shard.indices),
                "lease_ttl": ttl,
                "attempt": shard.attempts,
                "traceparent": (
                    encode_traceparent(shard.lease_span.context)
                    if self._spans.enabled else None),
            }

    def _lookup_active(self, lease_id: str) -> Shard:  # guarded-by: _lock
        """The shard of a *current* lease (404 unknown, 409 stale)."""
        shard_id = self._leases.get(lease_id)
        if shard_id is not None:
            return self._shards[shard_id]
        reason = self._closed_leases.get(lease_id)
        if reason is None:
            raise ServiceError(f"unknown shard lease {lease_id!r}",
                               status=404)
        raise ServiceError(
            f"shard lease {lease_id} is no longer current ({reason}); "
            "its shard has been requeued or already committed", status=409)

    # ---------------------------------------------------------- heartbeat
    def heartbeat(self, lease_id: str) -> dict[str, Any]:
        """Renew a lease for another TTL window (404/409 when stale)."""
        with self._lock:
            self._expire_overdue_locked()
            shard = self._lookup_active(lease_id)
            shard.expires_at = time.time() + shard.ttl
            self._heartbeats_total.inc()
            if shard.lease_span is not None:
                with self._spans.span("shard.heartbeat",
                                      parent=shard.lease_span.context,
                                      attrs={"shard_id": shard.shard_id}):
                    pass
            return {
                "lease_id": lease_id,
                "shard_id": shard.shard_id,
                "state": shard.state.value,
                "expires_at": shard.expires_at,
            }

    # ----------------------------------------------------------- complete
    def complete(self, lease_id: str, rows: list[dict[str, Any]], *,
                 metrics: Optional[dict[str, Any]] = None) -> dict[str, Any]:
        """Commit a leased shard's rows; 409 for stale leases (discarded).

        The rows' point keys must be exactly the leased shard's — a
        mismatch is a protocol error (400) and leaves the lease running.
        """
        with self._lock:
            self._expire_overdue_locked()
            try:
                shard = self._lookup_active(lease_id)
            except ServiceError as error:
                if error.status == 409:
                    self._rejected(self._closed_leases[lease_id])
                raise
            got = {row.get("point_key") for row in rows}
            if got != set(shard.expected_keys):
                raise ServiceError(
                    f"completion for shard {shard.shard_id} carries the "
                    f"wrong rows ({len(got)} keys, expected "
                    f"{len(shard.expected_keys)}); the lease stays live",
                    status=400)
            # Done *before* the commit below: an expiry sweep racing this
            # completion must not requeue a shard whose rows are landing.
            shard.state = ShardState.DONE
            shard.expires_at = None
            del self._leases[lease_id]
            self._closed_leases[lease_id] = "completed"
            self._gauge_leased.dec()
            self._completed_total.inc()
            if shard.leased_at is not None:
                self._lease_seconds.observe(time.time() - shard.leased_at)
            entry = self._entries[shard.job_id]
            entry["computed"] += len(rows)
            entry["workers"].add(shard.worker or "anonymous")
            if metrics:
                entry["registry"].merge(metrics)
            job = entry["job"]
            lease_span = shard.lease_span
            shard.lease_span = None
        try:
            started = time.perf_counter()
            commit_parent = (lease_span.context if lease_span is not None
                             else None)
            with self._spans.span("store.commit", parent=commit_parent,
                                  attrs={"backend": self.store.scheme,
                                         "rows": len(rows)}):
                self.store.commit(job.spec, rows)
            self._commit_seconds.observe(time.perf_counter() - started)
            if lease_span is not None:
                self._spans.end_span(lease_span, status="completed")
        except Exception as error:
            # The error propagates to the completing worker's HTTP response,
            # but the *server* must keep its own record: without this event a
            # failed commit is indistinguishable from a slow worker.
            _FABRIC_EVENTS.log(
                "shard_commit_failed",
                shard_id=shard.shard_id, job_id=job.job_id,
                lease_id=lease_id, rows=len(rows),
                error=f"{type(error).__name__}: {error}")
            with self._lock:  # give the shard back; another worker retries
                shard.state = ShardState.PENDING
                shard.lease_id = None
                shard.worker = None
                self._closed_leases[lease_id] = "commit-failed"
                self._gauge_pending.inc()
                entry["computed"] -= len(rows)
                if lease_span is not None:
                    shard.prev_lease_context = lease_span.context
                    self._spans.end_span(lease_span, status="commit-failed")
            raise
        # The job finishes only when every shard's rows are *committed*
        # (not merely approved): whoever increments the count to the total
        # knows all other commits already landed, so a client that sees
        # state=done immediately reads the complete table.
        with self._lock:
            entry["committed_shards"] += 1
            remaining = len(entry["shard_ids"]) - entry["committed_shards"]
        if remaining == 0:
            self._finish_job(entry)
        return {
            "lease_id": lease_id,
            "shard_id": shard.shard_id,
            "job_id": job.job_id,
            "state": shard.state.value,
            "job_state": job.state.value,
            "remaining_shards": remaining,
        }

    def _finish_job(self, entry: dict[str, Any]) -> None:
        job = entry["job"]
        job_span = entry.get("span")
        if job_span is not None:
            job_span.set_attr("requeued_shards", entry["requeued"])
            self._spans.end_span(job_span)
        snapshot = entry["registry"].snapshot().to_dict()
        self.store.record_telemetry(job.spec, {
            "elapsed_seconds": time.time() - entry["started"],
            "workers": len(entry["workers"]),
            "computed": entry["computed"],
            "cached": entry["cached"],
            "mode": "remote",
            "metrics": snapshot,
        })
        self.queue.finish(job, summary=self._summary(entry))

    @staticmethod
    def _summary(entry: dict[str, Any]) -> dict[str, Any]:
        return {
            "points": entry["total"],
            "computed": entry["computed"],
            "cached": entry["cached"],
            "workers": max(1, len(entry["workers"])),
            "elapsed_seconds": round(time.time() - entry["started"], 6),
            "mode": "remote",
            "requeued_shards": entry["requeued"],
        }

    # -------------------------------------------------------------- sweep
    def _expire_overdue_locked(self) -> None:  # guarded-by: _lock
        now = time.time()
        for shard in self._shards.values():
            if shard.state is not ShardState.LEASED:
                continue
            if shard.expires_at is not None and shard.expires_at < now:
                self._closed_leases[shard.lease_id] = "expired"
                del self._leases[shard.lease_id]
                shard.state = ShardState.PENDING
                shard.lease_id = None
                shard.worker = None
                shard.expires_at = None
                if shard.lease_span is not None:
                    # Remember the dead lease's identity: the replacement
                    # lease's span will link to it (see lease()).
                    shard.prev_lease_context = shard.lease_span.context
                    self._spans.end_span(shard.lease_span, status="expired")
                    shard.lease_span = None
                self._requeued_total.inc()
                self._gauge_leased.dec()
                self._gauge_pending.inc()
                self._entries[shard.job_id]["requeued"] += 1

    def expire_overdue(self) -> None:
        """Requeue every overdue lease now (normally done lazily)."""
        with self._lock:
            self._expire_overdue_locked()

    # ------------------------------------------------------------ queries
    def describe(self) -> dict[str, Any]:
        """The fabric stanza of ``/v1/healthz``."""
        with self._lock:
            self._expire_overdue_locked()
            tally = {state.value: 0 for state in ShardState}
            for shard in self._shards.values():
                tally[shard.state.value] += 1
            return {
                "lease_ttl": self.lease_ttl,
                "shard_points": self.shard_points,
                "shards": tally,
                "active_leases": len(self._leases),
            }

    def shards_for(self, job_id: str) -> list[dict[str, Any]]:
        """Shard snapshots of one job (diagnostics and tests)."""
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is None:
                return []
            return [self._shards[shard_id].to_dict()
                    for shard_id in entry["shard_ids"]]
