"""LOCK — ``# guarded-by:`` field discipline.

The telemetry registry, the job queue and the shard board all follow the
same single-lock design: every mutable field is touched only under one
lock, and correctness arguments in their docstrings ("all state
transitions happen under one lock") assume it.  This rule makes the
assumption checkable: a field *declared* with a ``# guarded-by: <lock>``
comment may only be read or written inside a ``with self.<lock>:`` block
of its class.

Conventions understood by the checker:

* ``self._jobs: dict = {}  # guarded-by: _lock`` — on the declaration
  (normally in ``__init__``); comma-separated alternatives
  (``# guarded-by: _lock, _wakeup``) accept any of the named locks, the
  idiom for a lock plus the :class:`threading.Condition` wrapping it;
* ``def _pop_runnable(self):  # guarded-by: _lock`` — a helper documented
  to run with the lock already held: its whole body counts as guarded
  (the annotation *is* the documentation);
* ``__init__`` is exempt — fields are created before the object is
  shared, and the declarations themselves live there;
* nested functions and lambdas do **not** inherit the enclosing ``with``:
  a closure can outlive the critical section that created it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .findings import Finding
from .rules import ModuleContext, Rule, register

__all__ = ["GuardedByRule"]


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _header_guards(ctx: ModuleContext,
                   node: ast.FunctionDef | ast.AsyncFunctionDef,
                   ) -> frozenset[str]:
    """Locks granted by a ``# guarded-by:`` comment on the def header.

    The header may span several lines (multi-line signatures); any line
    from ``def`` to the first body statement counts.
    """
    first_body = node.body[0].lineno if node.body else node.lineno
    for line in range(node.lineno, first_body):
        guards = ctx.guarded_by(line)
        if guards:
            return guards
    return frozenset()


@register
class GuardedByRule(Rule):
    """Annotated fields accessed outside their declared lock."""

    id = "LOCK001"
    name = "guarded-by"
    protects = ("single-lock discipline in MetricsRegistry, JobQueue and "
                "ShardBoard: a field mutated outside its lock corrupts "
                "counters, loses wakeups or double-leases shards")
    hint = ("wrap the access in `with self.<lock>:`, annotate the helper's "
            "def line with `# guarded-by: <lock>` if callers always hold "
            "it, or suppress with a reason if the access is provably safe")

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.tree is not None

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    # ------------------------------------------------------------------
    def _check_class(self, ctx: ModuleContext,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        guarded = self._declared_fields(ctx, cls)
        if not guarded:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue
            held = _header_guards(ctx, item)
            yield from self._check_body(ctx, item.body, guarded, held,
                                        item.name)

    def _declared_fields(self, ctx: ModuleContext, cls: ast.ClassDef,
                         ) -> dict[str, frozenset[str]]:
        """``self.<field>`` assignments annotated ``# guarded-by:``.

        Declarations are searched in every method of the class (idiomatic
        location: ``__init__``), keyed off the statement's first line.
        """
        fields: dict[str, frozenset[str]] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                else:
                    continue
                guards = ctx.guarded_by(stmt.lineno)
                if not guards:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr:
                        fields[attr] = guards
        return fields

    def _check_body(self, ctx: ModuleContext, body: list[ast.stmt],
                    guarded: dict[str, frozenset[str]],
                    held: frozenset[str],
                    where: str) -> Iterable[Finding]:
        for stmt in body:
            yield from self._check_node(ctx, stmt, guarded, held, where)

    def _check_node(self, ctx: ModuleContext, node: ast.AST,
                    guarded: dict[str, frozenset[str]],
                    held: frozenset[str],
                    where: str) -> Iterable[Finding]:
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr:
                    acquired.add(attr)
            inner = held | frozenset(acquired)
            for expr in (item.context_expr for item in node.items):
                yield from self._check_node(ctx, expr, guarded, held, where)
            for stmt in node.body:
                yield from self._check_node(ctx, stmt, guarded, inner, where)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A closure may escape the critical section: it gets only the
            # locks its own header declares, never the lexical ones.
            grants = (_header_guards(ctx, node)
                      if not isinstance(node, ast.Lambda) else frozenset())
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                yield from self._check_node(ctx, stmt, guarded, grants,
                                            where)
            return
        attr = _self_attr(node)
        if attr is not None and attr in guarded:
            if not (guarded[attr] & held):
                locks = ", ".join(sorted(guarded[attr]))
                yield ctx.finding(
                    self, node,
                    f"field `self.{attr}` (guarded-by: {locks}) accessed "
                    f"in `{where}` without holding the lock")
            return  # the attribute chain below self.<attr> is covered
        for child in ast.iter_child_nodes(node):
            yield from self._check_node(ctx, child, guarded, held, where)
