"""EXC — exception hygiene.

The repo's error contract (``repro/errors.py``) is that everything a user
can trip over raises a :class:`ReproError` subclass, so the CLI and the
service can catch one type and render a clean message, while genuine bugs
surface as stdlib exceptions with full tracebacks.  Two anti-patterns
erode that contract from opposite ends: handlers that swallow errors
silently (the lease-seconds observation path in ``service/jobs.py`` once
dropped commit failures on the floor), and raises of bare ``Exception`` /
ad-hoc classes that the structured handlers upstream cannot classify.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable, Optional

from .findings import Finding
from .rules import ModuleContext, PackageIndex, Rule, base_name, register

__all__ = []

#: Every exception type the interpreter ships with (computed, not listed,
#: so new Python versions stay covered).
_BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException))

_TOO_BROAD = frozenset({"Exception", "BaseException"})


class _AstRule(Rule):
    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.tree is not None


@register
class BareExceptRule(_AstRule):
    """``except:`` with no exception type."""

    id = "EXC001"
    name = "bare-except"
    protects = ("debuggability and clean shutdown: a bare except catches "
                "SystemExit and KeyboardInterrupt, turning Ctrl-C into a "
                "swallowed no-op inside worker loops")
    hint = "catch Exception (or a narrower type) explicitly"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare `except:` catches BaseException, including "
                    "KeyboardInterrupt and SystemExit")


def _handler_names(node: ast.ExceptHandler) -> list[str]:
    """The caught type names (one, or each member of a tuple)."""
    if node.type is None:
        return []
    exprs = node.type.elts if isinstance(node.type, ast.Tuple) \
        else [node.type]
    names = []
    for expr in exprs:
        name = base_name(expr)
        if name:
            names.append(name)
    return names


def _is_silent(body: list[ast.stmt]) -> bool:
    """True when a handler body does nothing at all (``pass`` / ``...``)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant) and \
                stmt.value.value is Ellipsis:
            continue
        return False
    return True


@register
class SilentSwallowRule(_AstRule):
    """``except Exception: pass`` — errors dropped without a trace."""

    id = "EXC002"
    name = "silent-swallow"
    protects = ("observability of the fabric: a swallowed commit/lease "
                "error looks identical to success until rows go missing "
                "(the original jobs.py lease-observation bug)")
    hint = ("log the error via telemetry.logs.StructuredLogger (see "
            "service/jobs.py `shard_commit_failed`), narrow the type, or "
            "re-raise")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_names(node)
            if not names:
                continue  # bare except is EXC001's finding
            broad = _TOO_BROAD.intersection(names)
            if broad and _is_silent(node.body):
                yield ctx.finding(
                    self, node,
                    f"`except {sorted(broad)[0]}` with a pass-only body "
                    "silently swallows the error")


@register
class RaiseHygieneRule(_AstRule):
    """Raised classes must derive from ReproError or a stdlib exception."""

    id = "EXC003"
    name = "raise-hygiene"
    protects = ("the one-type error contract of the CLI and service: "
                "handlers catch ReproError for user errors and let stdlib "
                "exceptions traceback as bugs; anything else falls through "
                "both nets")
    hint = ("derive the class from ReproError (repro/errors.py), or raise "
            "a specific stdlib exception instead of bare Exception")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = base_name(target)
            if name is None:
                continue  # computed expression — not resolvable statically
            if name in _TOO_BROAD:
                yield ctx.finding(
                    self, node,
                    f"raise of bare `{name}`: callers cannot distinguish "
                    "it from an arbitrary bug")
                continue
            verdict = _derives_from_known(name, ctx.index)
            if verdict is False:
                yield ctx.finding(
                    self, node,
                    f"raised class `{name}` derives from neither "
                    "ReproError nor a stdlib exception")


def _derives_from_known(name: str, index: PackageIndex,
                        _visited: Optional[set[str]] = None,
                        ) -> Optional[bool]:
    """True = sanctioned, False = definitely not, None = unresolvable.

    A re-raised local variable or a class imported from a third-party
    package resolves to None and is given the benefit of the doubt — the
    rule only flags what it can *prove* is outside the hierarchy.
    """
    if name == "ReproError" or name in _BUILTIN_EXCEPTIONS:
        return True
    visited = _visited or set()
    if name in visited:
        return None
    visited.add(name)
    bases = index.class_bases.get(name)
    if bases is None:
        return None  # not defined in the scanned package
    if not bases:
        return False  # plain `class Foo:` — not an exception at all
    verdicts = [_derives_from_known(base, index, visited) for base in bases]
    if any(v is True for v in verdicts):
        return True
    if any(v is None for v in verdicts):
        return None
    return False
