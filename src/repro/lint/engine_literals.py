"""ENG — engine-name string literals must be real engines.

``repro.engines.ENGINES`` is the single source of truth for engine names
(``"loop"``, ``"batch"``, ``"native"``); the spec, CLI, service and store
all validate against it at runtime.  A typo'd literal (``engine="batch "``,
``backend="natiev"``) compiles fine and only explodes when that code path
runs — or worse, a comparison like ``engine == "nativ"`` is just silently
never true.  This rule checks every *syntactic position where a string is
being used as an engine name* against the live tuple, so the check can
never drift from the registry.

``engines.py`` itself, the lint package, and the store/backends modules
are exempt: the latter reuse the word "backend" for *store* backends
(``"dir"``, ``"sqlite"``, …), a different namespace.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..engines import ENGINES
from .findings import Finding
from .rules import ModuleContext, Rule, register

__all__ = []

#: Modules where the words engine/backend mean something else (or define
#: the registry itself).
_EXEMPT = (
    "engines.py",
    "lint/",
    "sweeps/store.py",      # store backends: "dir", "sqlite", ...
    "sweeps/backends/",
)

_ENGINE_NAMES = ("engine", "backend")


def _engine_like(name: str) -> bool:
    return name in _ENGINE_NAMES or \
        name.endswith(("_engine", "_backend"))


def _target_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _str_const(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register
class EngineLiteralRule(Rule):
    """String literals in engine-name positions not in ``ENGINES``."""

    id = "ENG001"
    name = "engine-literal"
    protects = ("the engine registry contract: a typo'd engine literal "
                "either raises at runtime far from the typo, or makes a "
                "comparison silently always-false")
    hint = ("use one of repro.engines.ENGINES "
            f"({', '.join(repr(e) for e in ENGINES)}), or rename the "
            "variable if the string is not an engine name")

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.tree is not None and \
            not any(ctx.rel.startswith(prefix) for prefix in _EXEMPT)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node, literal in self._engine_literals(ctx.tree):
            if literal not in ENGINES:
                yield ctx.finding(
                    self, node,
                    f"engine name literal {literal!r} is not in "
                    f"repro.engines.ENGINES {tuple(ENGINES)}")

    # ------------------------------------------------------------------
    def _engine_literals(self, tree: ast.AST,
                         ) -> Iterator[tuple[ast.expr, str]]:
        """Every (node, string) pair occupying an engine-name position."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._from_call(node)
            elif isinstance(node, ast.Compare):
                yield from self._from_compare(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._from_binding(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._from_binding(node.target, node.value)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._from_defaults(node)
            elif isinstance(node, ast.Dict):
                yield from self._from_dict(node)

    def _from_call(self, node: ast.Call) -> Iterator[tuple[ast.expr, str]]:
        for keyword in node.keywords:
            if keyword.arg and _engine_like(keyword.arg):
                literal = _str_const(keyword.value)
                if literal is not None:
                    yield keyword.value, literal
        func = _target_name(node.func)
        if func == "validate_engine" and node.args:
            literal = _str_const(node.args[0])
            if literal is not None:
                yield node.args[0], literal

    def _from_compare(self, node: ast.Compare,
                      ) -> Iterator[tuple[ast.expr, str]]:
        operands = [node.left, *node.comparators]
        ops_ok = all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if not ops_ok:
            return
        names = [_target_name(op) for op in operands]
        if not any(name and _engine_like(name) for name in names):
            return
        for operand in operands:
            literal = _str_const(operand)
            if literal is not None:
                yield operand, literal

    def _from_binding(self, target: ast.expr, value: ast.expr,
                      ) -> Iterator[tuple[ast.expr, str]]:
        name = _target_name(target)
        if name and _engine_like(name):
            literal = _str_const(value)
            if literal is not None:
                yield value, literal

    def _from_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                       ) -> Iterator[tuple[ast.expr, str]]:
        posargs = node.args.posonlyargs + node.args.args
        for arg, default in zip(reversed(posargs),
                                reversed(node.args.defaults)):
            if _engine_like(arg.arg):
                literal = _str_const(default)
                if literal is not None:
                    yield default, literal
        for arg, default in zip(node.args.kwonlyargs,
                                node.args.kw_defaults):
            if default is not None and _engine_like(arg.arg):
                literal = _str_const(default)
                if literal is not None:
                    yield default, literal

    def _from_dict(self, node: ast.Dict,
                   ) -> Iterator[tuple[ast.expr, str]]:
        for key, value in zip(node.keys, node.values):
            if key is None:
                continue
            key_str = _str_const(key)
            if key_str and _engine_like(key_str):
                literal = _str_const(value)
                if literal is not None:
                    yield value, literal
