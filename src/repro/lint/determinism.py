"""DET — RNG and wall-clock discipline on the deterministic path.

The whole reproduction rests on one contract: every row, trajectory and
content hash is a pure function of the seeds in a :class:`SweepSpec`
(docs/SWEEPS.md).  One stray ``random.random()`` or ``time.time()`` on the
compute path silently breaks worker/shard independence — the exact class
of bug the parity tests can only catch when they happen to disagree.

Module scoping: the service, telemetry, store and backend layers are
*legitimately* wall-clock (lease TTLs, timestamps, jitter, tmp names) and
are exempt from the whole family via :data:`WALL_CLOCK_EXEMPT`.  On the
deterministic path the sanctioned exceptions are inline-suppressed with a
reason — ``repro/rng.py`` (the ``seed=None`` entropy contract) and
``repro/core/native.py`` (numba's nopython RNG) are the canonical examples.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .findings import Finding
from .rules import ModuleContext, Rule, dotted_name, import_map, iter_calls, \
    register

__all__ = ["WALL_CLOCK_EXEMPT", "on_deterministic_path"]

#: Package-relative path prefixes exempt from the DET family: modules that
#: are *off* the deterministic compute path and legitimately touch wall
#: clocks, entropy and jitter.
WALL_CLOCK_EXEMPT = (
    "service/",        # lease TTLs, retry jitter, uptime, job timestamps
    "telemetry/",      # event timestamps, wall-time histograms
    "sweeps/store.py",  # lock stamps, manifest timestamps
    "sweeps/backends/",  # tmp-object names, created_at stanzas
    "bench_history.py",
    "info.py",
    "lint/",           # the linter itself is tooling, not compute
)

#: numpy.random attributes that are seeded-stream plumbing, not draws from
#: the hidden global generator.
_NUMPY_SEEDED_API = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Wall-clock / entropy calls that have no place on the deterministic path.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "uuid.uuid1", "uuid.uuid3", "uuid.uuid4", "uuid.uuid5",
    "os.urandom",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})


def on_deterministic_path(rel: str) -> bool:
    """True when a module must obey the DET family."""
    return not any(rel.startswith(prefix) for prefix in WALL_CLOCK_EXEMPT)


class _DeterminismRule(Rule):
    """Base: applies only on the deterministic path."""

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.tree is not None and on_deterministic_path(ctx.rel)


@register
class StdlibRandomRule(_DeterminismRule):
    """Calls into the stdlib ``random`` module's hidden global state."""

    id = "DET001"
    name = "stdlib-random"
    protects = ("seed-to-row determinism: stdlib random draws from an "
                "unseeded process-global generator, so results depend on "
                "import order and worker count")
    hint = ("draw from a numpy Generator handed down from the point's "
            "SeedSequence (see repro/rng.py)")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = import_map(ctx.tree)
        for call in iter_calls(ctx.tree):
            dotted = dotted_name(call.func, imports)
            # `random.` with a dot: a bare local name `random` (e.g. a
            # user-defined function) never resolves with a dot, so only
            # genuine stdlib-module access matches.
            if dotted and dotted.startswith("random."):
                yield ctx.finding(
                    self, call,
                    f"call to stdlib `{dotted}` uses the process-global "
                    "random state")


@register
class NumpyGlobalRngRule(_DeterminismRule):
    """Draws from numpy's legacy module-level generator."""

    id = "DET002"
    name = "numpy-global-rng"
    protects = ("worker/shard topology independence: np.random.<fn> module "
                "calls share one hidden global stream across everything in "
                "the process")
    hint = ("use a Generator from spawn_rngs/spawn_seed_sequences; the "
            "numba kernels that must use np.random are inline-suppressed "
            "with their seeding discipline (repro/core/native.py)")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = import_map(ctx.tree)
        for call in iter_calls(ctx.tree):
            dotted = dotted_name(call.func, imports)
            if not dotted or not dotted.startswith("numpy.random."):
                continue
            attr = dotted.split(".")[-1]
            if attr in _NUMPY_SEEDED_API:
                continue
            yield ctx.finding(
                self, call,
                f"`{dotted}` draws from numpy's module-level global "
                "generator")


@register
class UnseededDefaultRngRule(_DeterminismRule):
    """``default_rng()`` without a seed: fresh OS entropy per call."""

    id = "DET003"
    name = "unseeded-default-rng"
    protects = ("reproducibility from a single master seed: an unseeded "
                "default_rng() yields different rows on every run")
    hint = ("pass a seed/SeedSequence; if fresh entropy is the *contract* "
            "(rng=None), suppress with `# lint: disable=DET003 -- reason` "
            "as repro/rng.py does")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = import_map(ctx.tree)
        for call in iter_calls(ctx.tree):
            dotted = dotted_name(call.func, imports)
            if dotted != "numpy.random.default_rng":
                continue
            unseeded = (not call.args and not call.keywords) or (
                len(call.args) == 1 and not call.keywords
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value is None)
            if unseeded:
                yield ctx.finding(
                    self, call,
                    "default_rng() called without a seed draws fresh OS "
                    "entropy")


@register
class WallClockRule(_DeterminismRule):
    """Wall-clock / entropy reads on the deterministic path.

    ``time.perf_counter``/``time.monotonic`` stay legal everywhere: they
    feed elapsed-time telemetry (a side channel) and never key a result.
    """

    id = "DET004"
    name = "wall-clock"
    protects = ("byte-stable rows and content hashes: wall-clock values "
                "(time.time, uuid4, urandom) leak host/run identity into "
                "anything they touch")
    hint = ("move the timestamp to the telemetry side channel (perf_counter "
            "durations, StructuredLogger events), or relocate the code to "
            "a service/telemetry module")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = import_map(ctx.tree)
        for call in iter_calls(ctx.tree):
            dotted = dotted_name(call.func, imports)
            if not dotted:
                continue
            if dotted in _WALL_CLOCK_CALLS or dotted.startswith("secrets."):
                yield ctx.finding(
                    self, call,
                    f"`{dotted}` reads wall-clock/entropy on the "
                    "deterministic path")
