"""Finding records: what one rule violation looks like.

A :class:`Finding` is deliberately line-*aware* but line-*independent* in
identity: its :meth:`fingerprint` hashes the rule id, the file, the
enclosing scope (function/class qualname), the message and an occurrence
counter — never the line number — so a committed baseline keeps matching
after unrelated edits shift the code around.  The line/column are carried
for display only.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Mapping

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location.

    Attributes
    ----------
    rule:
        Rule identifier, e.g. ``"DET003"``.
    severity:
        ``"error"`` or ``"warning"`` (today every shipped rule is an
        error; the field keeps the output schema stable if that changes).
    path:
        Path of the offending module, relative to the linted package root
        (posix separators), e.g. ``"service/jobs.py"``.
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        One-sentence statement of the violation.  Messages never embed
        line numbers — they enter the baseline fingerprint.
    hint:
        How to fix (or legitimately suppress) the finding.
    scope:
        Qualname of the innermost enclosing function/class
        (``"<module>"`` at module level) — part of the fingerprint.
    index:
        Disambiguates multiple identical findings in one scope (0, 1, …
        in line order); assigned by the runner after collection.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    scope: str = "<module>"
    index: int = 0

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline (16 hex chars)."""
        blob = "\x1f".join((self.rule, self.path, self.scope, self.message,
                            str(self.index)))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["fingerprint"] = self.fingerprint()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        known = set(cls.__dataclass_fields__)
        return cls(**{key: payload[key] for key in payload if key in known})

    def render(self) -> str:
        """The one-line text form: ``path:line:col RULE severity message``."""
        text = (f"{self.path}:{self.line}:{self.col}  {self.rule}  "
                f"{self.severity}  {self.message}")
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)
