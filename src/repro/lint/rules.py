"""The rule engine: module contexts, the rule registry, AST helpers.

A :class:`ModuleContext` is one parsed source file plus everything the AST
throws away that the rules still need — the raw source lines, the comment
on every line (``# guarded-by:`` declarations live in comments), and the
inline suppressions (``# lint: disable=RULE -- reason``).  A
:class:`PackageIndex` carries the little cross-module knowledge some rules
need (today: the package-wide exception class hierarchy for EXC003).

Rules subclass :class:`Rule` and register themselves with
:func:`register`; the registry order is the documentation order of
``docs/LINT.md`` and the iteration order of the runner.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from ..errors import ReproError
from .findings import Finding

__all__ = ["LintError", "ModuleContext", "PackageIndex", "Rule",
           "register", "all_rules", "get_rule", "dotted_name",
           "import_map", "scope_map"]


class LintError(ReproError):
    """Raised for lint misuse: unreadable targets, unknown rule ids, a
    baseline file that is not valid JSON.  Syntax errors in *linted* files
    are findings, not exceptions — a broken file must fail the lint run,
    not crash it."""


_SUPPRESS_PATTERN = re.compile(
    r"lint:\s*disable=([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)")
_GUARDED_BY_PATTERN = re.compile(
    r"guarded-by:\s*([A-Za-z0-9_.]+(?:\s*,\s*[A-Za-z0-9_.]+)*)")


def _extract_comments(source: str) -> dict[int, str]:
    """Map line number -> comment text (without the ``#``), via tokenize.

    Tokenize sees comments exactly where the compiler would, so a ``#``
    inside a string literal is never mistaken for one.
    """
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse will report the syntax error as a finding; comments
        # gathered so far are still useful.
        pass
    return comments


def _extract_suppressions(comments: dict[int, str]) -> dict[int, set[str]]:
    """Per-line inline suppressions: ``# lint: disable=DET003 -- why``."""
    suppressions: dict[int, set[str]] = {}
    for line, text in comments.items():
        match = _SUPPRESS_PATTERN.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            suppressions[line] = rules
    return suppressions


@dataclass
class ModuleContext:
    """One parsed module plus its comment/suppression side tables."""

    path: Path
    rel: str                      # package-relative posix path
    source: str
    tree: Optional[ast.AST]       # None when the file does not parse
    comments: dict[int, str]
    suppressions: dict[int, set[str]]
    syntax_error: Optional[SyntaxError] = None
    index: "PackageIndex" = field(default_factory=lambda: PackageIndex())

    @classmethod
    def parse(cls, source: str, *, rel: str,
              path: Optional[Path] = None) -> "ModuleContext":
        comments = _extract_comments(source)
        tree: Optional[ast.AST] = None
        error: Optional[SyntaxError] = None
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            error = exc
        return cls(path=path or Path(rel), rel=rel, source=source,
                   tree=tree, comments=comments,
                   suppressions=_extract_suppressions(comments),
                   syntax_error=error)

    # ----------------------------------------------------------- helpers
    def guarded_by(self, lineno: int) -> Optional[frozenset[str]]:
        """The ``# guarded-by:`` lock names declared on ``lineno``, if any.

        Comma-separated alternatives (``# guarded-by: _lock, _wakeup``)
        mean "any of these" — the idiom for a lock and the condition
        variable wrapping the same lock.  A leading ``self.`` is stripped.
        """
        text = self.comments.get(lineno)
        if not text:
            return None
        match = _GUARDED_BY_PATTERN.search(text)
        if not match:
            return None
        names = frozenset(
            part.strip().removeprefix("self.")
            for part in match.group(1).split(",") if part.strip())
        return names or None

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "*" in rules or finding.rule in rules

    def finding(self, rule: "Rule", node: ast.AST, message: str,
                *, hint: str = "") -> Finding:
        return Finding(rule=rule.id, severity=rule.severity, path=self.rel,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message, hint=hint or rule.hint)


@dataclass
class PackageIndex:
    """Cross-module facts shared by every context of one lint run.

    ``class_bases`` maps every class name defined anywhere in the scanned
    files to the names of its declared bases (attribute bases reduced to
    their final segment, so ``errors.ReproError`` chases like
    ``ReproError``).  Name collisions across modules merge their base
    sets, which errs on the permissive side — acceptable for a linter
    that must never crash on real code.
    """

    class_bases: dict[str, set[str]] = field(default_factory=dict)

    def add_tree(self, tree: Optional[ast.AST]) -> None:
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = self.class_bases.setdefault(node.name, set())
                for base in node.bases:
                    name = base_name(base)
                    if name:
                        bases.add(name)


def base_name(node: ast.expr) -> Optional[str]:
    """The comparable name of a base-class expression (last segment)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

def import_map(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted module/object they were imported as.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` ->
    ``{"default_rng": "numpy.random.default_rng"}``.  Relative imports
    keep their leading dots (callers only match absolute stdlib/numpy
    names, so they never collide).
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname:
                    mapping[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                mapping[alias.asname or alias.name] = \
                    f"{module}.{alias.name}" if module else alias.name
    return mapping


def dotted_name(node: ast.expr,
                imports: dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to its absolute dotted name, or None.

    ``np.random.binomial`` with ``np -> numpy`` resolves to
    ``"numpy.random.binomial"``; a chain whose head is not a plain name
    (e.g. a call result) resolves to None.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = imports.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


def scope_map(tree: ast.AST) -> list[tuple[int, int, str]]:
    """``(first_line, last_line, qualname)`` for every def/class, innermost
    usable by picking the *narrowest* interval containing a line."""
    spans: list[tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", child.lineno)
                spans.append((child.lineno, end, qualname))
                visit(child, qualname)
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


def scope_of(spans: list[tuple[int, int, str]], line: int) -> str:
    """Innermost enclosing qualname of ``line`` (``"<module>"`` if none)."""
    best = "<module>"
    best_width = None
    for first, last, qualname in spans:
        if first <= line <= last:
            width = last - first
            if best_width is None or width < best_width:
                best, best_width = qualname, width
    return best


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

class Rule:
    """One lint rule: an id, metadata, and a :meth:`check` pass.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies` gates the rule per module (path-scoped families
    override it).  ``protects`` names the repo invariant the rule guards —
    it is what ``--list-rules`` and docs/LINT.md print.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    protects: str = ""
    hint: str = ""

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id:
        raise LintError(f"rule class {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in registration (= documentation) order."""
    return list(_REGISTRY.values())


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(
            f"unknown lint rule {rule_id!r}; known rules: "
            f"{sorted(_REGISTRY)}") from None


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
