"""HASH — stability of content-hash inputs.

The store, the cache/dedup layer and the job fabric all key on
``SweepSpec.content_hash()`` / :func:`point_key` digests, and run
correlation keys on :func:`make_run_id` (PRs 5/7/8).  A digest is only as
stable as the bytes fed into it: JSON serialised without ``sort_keys``
moves with dict insertion order, and anything iterated out of a ``set``
moves with hash randomisation (``PYTHONHASHSEED``) — both turn "same spec,
same key" into "same spec, key roulette".

The family is scoped to the modules that *produce* hash inputs
(:data:`HASH_SCOPE`); elsewhere unsorted JSON is a perfectly good wire or
log format.  The two sanctioned exceptions are inline-suppressed where
they live: ``SweepSpec.to_json`` (the wire format deliberately preserves
axis declaration order) and ``JsonlTraceSink.emit`` (an event stream, not
a hash input).
"""

from __future__ import annotations

import ast
from typing import Iterable

from .findings import Finding
from .rules import ModuleContext, Rule, dotted_name, import_map, iter_calls, \
    register

__all__ = ["HASH_SCOPE"]

#: Package-relative paths whose serialisation feeds content hashes.
HASH_SCOPE = (
    "sweeps/spec.py",        # canonical_json, point_key, content_hash
    "telemetry/tracing.py",  # make_run_id
)


class _HashScopeRule(Rule):
    """Base: applies only in the hash-producing modules."""

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.tree is not None and ctx.rel in HASH_SCOPE


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


@register
class UnsortedJsonRule(_HashScopeRule):
    """``json.dumps`` without ``sort_keys=True`` in a hash-input module."""

    id = "HASH001"
    name = "unsorted-json"
    protects = ("byte-stable content hashes: without sort_keys the dumped "
                "bytes follow dict insertion order, so equal specs can key "
                "different store directories")
    hint = ("pass sort_keys=True (use canonical_json), or suppress with a "
            "reason when the output is a wire/log format rather than a "
            "hash input (see SweepSpec.to_json)")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = import_map(ctx.tree)
        for call in iter_calls(ctx.tree):
            dotted = dotted_name(call.func, imports)
            if dotted not in ("json.dumps", "json.dump"):
                continue
            sort_keys = _keyword(call, "sort_keys")
            if sort_keys is not None and \
                    isinstance(sort_keys, ast.Constant) and \
                    sort_keys.value is True:
                continue
            yield ctx.finding(
                self, call,
                f"`{dotted}` without sort_keys=True in a hash-input module")


@register
class SetIterationRule(_HashScopeRule):
    """Iterating a bare set expression in a hash-input module."""

    id = "HASH002"
    name = "set-iteration"
    protects = ("hash-input determinism: set iteration order follows "
                "PYTHONHASHSEED, so values drained from a set reach the "
                "digest in a per-process order")
    hint = ("wrap the set in sorted(...) before iterating; constructing a "
            "set for membership/len is fine — only draining one is not")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        imports = import_map(ctx.tree)
        iterables: list[ast.expr] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, ast.comprehension):
                iterables.append(node.iter)
        for expr in iterables:
            if self._is_bare_set(expr, imports):
                yield ctx.finding(
                    self, expr,
                    "iteration over a bare set: element order follows "
                    "hash randomisation")

    @staticmethod
    def _is_bare_set(expr: ast.expr, imports: dict[str, str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func, imports)
            return dotted in ("set", "frozenset")
        return False
