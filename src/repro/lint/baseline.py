"""Baseline files: accepted findings that do not fail the build.

A baseline is a JSON document listing findings that are *known and
accepted* — the escape hatch for adopting a new rule on an old codebase
without fixing every hit in one commit.  ``repro lint --baseline FILE``
subtracts baselined findings from the exit code (they are still counted
and reported); ``--write-baseline FILE`` snapshots the current findings.

Matching is by :meth:`Finding.fingerprint` — rule, file, enclosing scope,
message and occurrence index, but never the line number — so a baseline
keeps matching while unrelated edits shift code around, yet stops
matching (and fails the build) when the finding multiplies or moves to a
different function.

The committed ``lint-baseline.json`` is empty: the repo lints clean, and
the sanctioned exceptions are inline-suppressed next to the code they
excuse, where reviewers can see the reason.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding
from .rules import LintError

__all__ = ["load_baseline", "write_baseline", "partition"]

_VERSION = 1


def load_baseline(path: str | Path) -> set[str]:
    """The set of accepted fingerprints in a baseline file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise LintError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise LintError(
            f"baseline file {path} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "findings" not in payload:
        raise LintError(
            f"baseline file {path} must be an object with a 'findings' "
            "list (write one with --write-baseline)")
    fingerprints: set[str] = set()
    for entry in payload["findings"]:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and "fingerprint" in entry:
            fingerprints.add(str(entry["fingerprint"]))
        else:
            raise LintError(
                f"baseline file {path}: each finding must be a fingerprint "
                "string or an object with a 'fingerprint' key")
    return fingerprints


def write_baseline(path: str | Path,
                   findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` as the new accepted baseline.

    Full finding records are stored (not just fingerprints) so a reviewer
    can read what is being accepted; only the fingerprint is matched.
    """
    payload = {
        "version": _VERSION,
        "findings": [finding.to_dict()
                     for finding in sorted(findings,
                                           key=Finding.sort_key)],
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    Path(path).write_text(text + "\n", encoding="utf-8")


def partition(findings: Iterable[Finding], accepted: set[str],
              ) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined) by fingerprint."""
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        if finding.fingerprint() in accepted:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
