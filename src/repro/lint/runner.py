"""The lint driver: collect files, run rules, report, gate.

:func:`lint_paths` is the programmatic entry point (the CLI and CI call
it); :func:`lint_sources` lints in-memory sources and is what
``tests/test_lint.py`` feeds its fixtures through.  Output formats and the
baseline gate live here so the CLI verb stays a thin argument parser.

Exit-code contract (what CI keys on):

* ``0`` — no findings outside the baseline;
* ``1`` — at least one new finding (or a syntax error in a linted file);
* a :class:`LintError` for lint *misuse* (unknown rule id, unreadable
  baseline) — the CLI reports it like any other ReproError and exits 1.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path
from typing import Mapping, Optional, Sequence, TextIO

from .findings import Finding
from .rules import LintError, ModuleContext, PackageIndex, Rule, \
    all_rules, get_rule, scope_map, scope_of
# Imported for their @register side effects: each module adds its rule
# family to the registry in documentation order.
from . import determinism as _determinism        # noqa: F401  (DET)
from . import locks as _locks                    # noqa: F401  (LOCK)
from . import hashing as _hashing                # noqa: F401  (HASH)
from . import exceptions as _exceptions          # noqa: F401  (EXC)
from . import engine_literals as _engine         # noqa: F401  (ENG)
from .baseline import load_baseline, partition, write_baseline

__all__ = ["LintReport", "PACKAGE_ROOT", "lint_paths", "lint_sources",
           "render_text", "render_json", "list_rules_text"]

#: Default lint target: the installed ``repro`` package itself.
PACKAGE_ROOT = Path(__file__).resolve().parents[1]

#: Pseudo rule id for files that do not parse — a broken file must fail
#: the run, not crash it.
SYNTAX_RULE = "SYNTAX"


@dataclasses.dataclass
class LintReport:
    """Everything one lint run produced."""

    root: str
    files: int
    rules: list[str]
    findings: list[Finding]        # survived inline suppression
    new: list[Finding]             # findings minus the baseline
    baselined: list[Finding]
    suppressed_inline: int

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "root": self.root,
            "files_scanned": self.files,
            "rules": self.rules,
            "findings": [f.to_dict() for f in self.findings],
            "new": [f.fingerprint() for f in self.new],
            "baselined": [f.fingerprint() for f in self.baselined],
            "suppressed_inline": self.suppressed_inline,
            "exit_code": self.exit_code,
        }


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------

def _collect_files(paths: Sequence[Path], root: Path) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise LintError(f"not a python file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if "__pycache__" in resolved.parts or resolved in seen:
                continue
            seen.add(resolved)
            files.append(resolved)
    if not files:
        raise LintError(f"no python files found under {[str(p) for p in paths]}")
    return files


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.name


def _select_rules(rule_ids: Optional[Sequence[str]]) -> list[Rule]:
    if not rule_ids:
        return all_rules()
    wanted = {get_rule(rule_id).id for rule_id in rule_ids}
    return [rule for rule in all_rules() if rule.id in wanted]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

def _lint_contexts(contexts: Sequence[ModuleContext],
                   rules: Sequence[Rule],
                   ) -> tuple[list[Finding], int]:
    """Run ``rules`` over ``contexts``: (kept findings, inline-suppressed
    count).  Findings come back scoped, indexed and sorted."""
    index = PackageIndex()
    for ctx in contexts:
        index.add_tree(ctx.tree)
        ctx.index = index

    raw: list[tuple[ModuleContext, Finding]] = []
    for ctx in contexts:
        if ctx.syntax_error is not None:
            raw.append((ctx, Finding(
                rule=SYNTAX_RULE, severity="error", path=ctx.rel,
                line=ctx.syntax_error.lineno or 1,
                col=(ctx.syntax_error.offset or 1) - 1,
                message=f"file does not parse: {ctx.syntax_error.msg}",
                hint="fix the syntax error; no rules ran on this file")))
            continue
        for rule in rules:
            if not rule.applies(ctx):
                continue
            for finding in rule.check(ctx):
                raw.append((ctx, finding))

    kept: list[Finding] = []
    suppressed = 0
    for ctx, finding in raw:
        if ctx.is_suppressed(finding):
            suppressed += 1
            continue
        if ctx.tree is not None:
            spans = _spans_of(ctx)
            finding = dataclasses.replace(
                finding, scope=scope_of(spans, finding.line))
        kept.append(finding)

    kept.sort(key=Finding.sort_key)
    counters: dict[tuple, int] = {}
    indexed: list[Finding] = []
    for finding in kept:
        key = (finding.rule, finding.path, finding.scope, finding.message)
        occurrence = counters.get(key, 0)
        counters[key] = occurrence + 1
        indexed.append(dataclasses.replace(finding, index=occurrence))
    return indexed, suppressed


def _spans_of(ctx: ModuleContext) -> list[tuple[int, int, str]]:
    cached = getattr(ctx, "_spans", None)
    if cached is None:
        cached = scope_map(ctx.tree)
        ctx._spans = cached
    return cached


def lint_paths(paths: Optional[Sequence[str | Path]] = None, *,
               rule_ids: Optional[Sequence[str]] = None,
               baseline_path: Optional[str | Path] = None) -> LintReport:
    """Lint files/directories (default: the ``repro`` package)."""
    root = PACKAGE_ROOT
    targets = [Path(p).resolve() for p in paths] if paths else [root]
    files = _collect_files(targets, root)
    rules = _select_rules(rule_ids)
    contexts = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"cannot read {path}: {error}") from error
        contexts.append(ModuleContext.parse(
            source, rel=_relative(path, root), path=path))

    findings, suppressed = _lint_contexts(contexts, rules)
    accepted = load_baseline(baseline_path) if baseline_path else set()
    new, baselined = partition(findings, accepted)
    return LintReport(root=str(root), files=len(files),
                      rules=[rule.id for rule in rules],
                      findings=findings, new=new, baselined=baselined,
                      suppressed_inline=suppressed)


def lint_sources(sources: Mapping[str, str], *,
                 rule_ids: Optional[Sequence[str]] = None) -> list[Finding]:
    """Lint in-memory sources (``rel path -> source``) — the test hook.

    Returns the kept findings only; inline suppressions apply, baselines
    do not.
    """
    contexts = [ModuleContext.parse(source, rel=rel)
                for rel, source in sources.items()]
    findings, _ = _lint_contexts(contexts, _select_rules(rule_ids))
    return findings


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def render_text(report: LintReport,
                stream: Optional[TextIO] = None) -> None:
    stream = stream if stream is not None else sys.stdout
    for finding in report.findings:
        marker = "  [baselined]" if finding in report.baselined else ""
        stream.write(finding.render() + marker + "\n")
    summary = (f"{len(report.new)} new finding(s), "
               f"{len(report.baselined)} baselined, "
               f"{report.suppressed_inline} suppressed inline "
               f"across {report.files} file(s)")
    stream.write(summary + "\n")


def render_json(report: LintReport,
                stream: Optional[TextIO] = None) -> None:
    stream = stream if stream is not None else sys.stdout
    json.dump(report.to_dict(), stream, indent=2, sort_keys=True)
    stream.write("\n")


def list_rules_text(stream: Optional[TextIO] = None) -> None:
    """``--list-rules``: the rule catalogue, registry order."""
    stream = stream if stream is not None else sys.stdout
    for rule in all_rules():
        stream.write(f"{rule.id}  {rule.name}  [{rule.severity}]\n")
        stream.write(f"    protects: {rule.protects}\n")
        stream.write(f"    fix: {rule.hint}\n")


def run(paths: Optional[Sequence[str]] = None, *,
        output_format: str = "text",
        baseline_path: Optional[str] = None,
        write_baseline_path: Optional[str] = None,
        rule_ids: Optional[Sequence[str]] = None,
        stream: Optional[TextIO] = None) -> int:
    """The CLI verb's whole behaviour; returns the process exit code."""
    stream = stream if stream is not None else sys.stdout
    report = lint_paths(paths, rule_ids=rule_ids,
                        baseline_path=baseline_path)
    if write_baseline_path:
        write_baseline(write_baseline_path, report.findings)
        stream.write(f"wrote {len(report.findings)} finding(s) to "
                     f"{write_baseline_path}\n")
        return 0
    if output_format == "json":
        render_json(report, stream)
    else:
        render_text(report, stream)
    return report.exit_code
