"""``repro.lint`` — the repo's invariant checker.

A stdlib-``ast`` static-analysis pass over ``src/repro`` guarding the
invariants the test suite cannot express directly (docs/LINT.md):

* **DET** — RNG/wall-clock discipline on the deterministic path;
* **LOCK** — ``# guarded-by:`` single-lock field discipline;
* **HASH** — byte-stable content-hash inputs;
* **EXC** — exception hygiene (no silent swallows, ReproError raises);
* **ENG** — engine-name literals validated against ``ENGINES``.

Run it with ``python -m repro lint``; suppress a sanctioned violation
inline with ``# lint: disable=RULE -- reason``.
"""

from .baseline import load_baseline, partition, write_baseline
from .findings import Finding
from .rules import LintError, ModuleContext, Rule, all_rules, get_rule
from .runner import LintReport, lint_paths, lint_sources, run

__all__ = [
    "Finding",
    "LintError",
    "LintReport",
    "ModuleContext",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "partition",
    "run",
    "write_baseline",
]
