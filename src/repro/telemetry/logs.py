"""Structured JSON event logging.

One :class:`StructuredLogger` writes one JSON object per line to a stream
(stderr by default) — the replacement for the service's former
``log_message`` no-op.  Events carry a wall-clock ``ts`` (Unix seconds),
an ``event`` name, and arbitrary keyword fields; the format is the same
line-oriented JSON the trace sinks use, so one ``jq`` invocation reads
either.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Optional, TextIO

__all__ = ["StructuredLogger", "NullLogger"]


class StructuredLogger:
    """Thread-safe JSON-lines event logger."""

    def __init__(self, stream: Optional[TextIO] = None, *,
                 component: str = ""):
        self.stream = stream if stream is not None else sys.stderr
        self.component = component
        self._lock = threading.Lock()

    def log(self, event: str, **fields: Any) -> None:
        record: dict[str, Any] = {"ts": round(time.time(), 6),
                                  "event": event}
        if self.component:
            record["component"] = self.component
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self.stream.write(line + "\n")
            try:
                self.stream.flush()
            except (ValueError, OSError):  # stream already closed
                pass


class NullLogger:
    """Drop-in silent logger (the default when logging is not enabled)."""

    def log(self, event: str, **fields: Any) -> None:
        pass
