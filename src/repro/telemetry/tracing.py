"""Round tracing: per-round JSONL events from a running dynamics.

The engines in :mod:`repro.core` expose an opt-in ``trace=`` hook that
accepts a :class:`RoundTracer`.  When attached, the tracer emits one JSON
object per (sampled) round to its sink — round index, live replica count,
migration volume, potential and social-cost means with deltas, and wall
time since the run started — bracketed by ``run_started`` /
``run_finished`` events that carry a correlation ``run_id``.

Two invariants the engine integration relies on:

* **no RNG** — the tracer never touches a random generator, so a traced
  run consumes exactly the same random stream as an untraced one and the
  final states stay bit-identical (asserted per engine parity tier in
  ``tests/test_telemetry.py``);
* **near-zero cost when absent** — the engines guard every tracer call
  with a single ``if trace is not None`` per round, and the native kernel
  only reports at chunk boundaries (outside the jitted region), so the
  benchmark guard in ``benchmarks/test_bench_telemetry.py`` can hold the
  disabled-path overhead under 5%.

The JSONL schema is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import socket
import threading
import time
from typing import Any, Optional, TextIO

import numpy as np

from ..errors import TelemetryError
from .spans import current_span_context

__all__ = [
    "JsonlTraceSink",
    "ListTraceSink",
    "NullTraceSink",
    "RoundTracer",
    "default_run_id",
    "make_run_id",
    "parse_run_id",
]


def make_run_id(payload: Any) -> str:
    """A short, deterministic correlation id for a run.

    Hashes the canonical JSON of ``payload`` (typically a sweep spec's
    content-hash string, a point key, or a parameter dict) to 12 hex
    characters — stable across processes, short enough to grep for.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


class NullTraceSink:
    """Discards every event (useful to measure tracer-side overhead)."""

    def emit(self, event: dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class ListTraceSink:
    """Buffers events in memory — the test-friendly sink."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlTraceSink:
    """Appends one compact JSON object per line to ``path``.

    The file handle opens lazily on the first event and is line-buffered
    so a crashed run still leaves a readable prefix.  Thread-safe: the
    service's worker threads may share one sink.
    """

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None

    def emit(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":"), default=float)  # lint: disable=HASH001 -- trace event stream, not a hash input
        with self._lock:
            if self._handle is None:
                parent = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(parent, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8",
                                    buffering=1)
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


_RUN_COUNTER = itertools.count(1)


def _hostname() -> str:
    """Hostname with whitespace collapsed (same shape DirectoryLock uses)."""
    return "-".join(socket.gethostname().split()) or "unknown-host"


def default_run_id() -> str:
    """Process-local default run id, qualified by hostname.

    Pids collide across fabric hosts, so JSONL merged from two workers
    could interleave two runs under one ``run-{pid}-{n}`` id.  The current
    form is ``run-{host}-{pid}-{n}``; since hostnames may themselves
    contain dashes, parse these from the *right* (``rsplit("-", 2)``) —
    which also still accepts the pre-PR-10 ``run-{pid}-{n}`` form (the
    host field is then empty).
    """
    return f"run-{_hostname()}-{os.getpid()}-{next(_RUN_COUNTER)}"


def parse_run_id(run_id: str) -> Optional[dict[str, Any]]:
    """Split a default-form run id into host/pid/counter, if it is one.

    Handles both ``run-{host}-{pid}-{n}`` (hostnames may contain dashes)
    and the legacy ``run-{pid}-{n}``.  Returns ``None`` for custom ids
    (e.g. the 12-hex :func:`make_run_id` form).
    """
    if not run_id.startswith("run-"):
        return None
    parts = run_id[len("run-"):].rsplit("-", 2)
    if len(parts) == 3 and parts[0]:
        host, pid, counter = parts
    elif len(parts) >= 2:
        host, pid, counter = None, parts[-2], parts[-1]
    else:
        return None
    try:
        return {"host": host, "pid": int(pid), "counter": int(counter)}
    except ValueError:
        return None


class RoundTracer:
    """Emits per-round trace events for one or more runs.

    Parameters
    ----------
    sink:
        Any object with ``emit(dict)`` (and optionally ``close()``).
    run_id:
        Correlation id stamped on every event.  Defaults to a process-local
        sequential id; pass :func:`make_run_id` of the spec content hash to
        correlate traces with sweep artifacts.
    every:
        Sample one round event out of every ``every`` rounds (the
        ``run_started``/``run_finished`` brackets and the final round are
        always emitted).  Deltas are relative to the previously *emitted*
        event, so downsampled traces still integrate correctly.
    """

    def __init__(self, sink: Any, *, run_id: Optional[str] = None,
                 every: int = 1):
        if every < 1:
            raise TelemetryError(f"trace every= must be >= 1, got {every}")
        self.sink = sink
        self.run_id = run_id or default_run_id()
        self.every = int(every)
        self._started_at: Optional[float] = None
        self._last_potential: Optional[float] = None
        self._last_cost: Optional[float] = None
        self.rounds_emitted = 0

    # ------------------------------------------------------------- helpers
    def _wall(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    @staticmethod
    def _batch_means(game, counts: np.ndarray,
                     active: Optional[np.ndarray]) -> tuple[float, float, int]:
        """Mean potential / social cost over the live replicas."""
        batch = np.atleast_2d(np.asarray(counts))
        live = int(batch.shape[0])
        if active is not None:
            live = int(len(active))
            if live > 0:  # all-retired: means over the final snapshot
                batch = batch[np.asarray(active)]
        potential = float(np.mean(game.potential_batch(batch)))
        cost = float(np.mean(game.social_cost_batch(batch)))
        return potential, cost, live

    def _emit(self, event: dict[str, Any]) -> None:
        event["run_id"] = self.run_id
        event["wall_seconds"] = round(self._wall(), 9)
        # Join the ambient distributed trace, if one is open: round events
        # then appear under the per-point span in `repro trace` output.
        context = current_span_context()
        if context is not None:
            event["trace_id"] = context.trace_id
            event["span_id"] = context.span_id
        self.sink.emit(event)

    # -------------------------------------------------------------- events
    def run_started(self, game, *, engine: str, replicas: int,
                    max_rounds: int) -> None:
        self._started_at = time.perf_counter()
        self._last_potential = None
        self._last_cost = None
        self._emit({
            "event": "run_started",
            "engine": engine,
            "replicas": int(replicas),
            "max_rounds": int(max_rounds),
            "players": int(game.num_players),
            "strategies": int(game.num_strategies),
        })

    def round_completed(self, game, counts: np.ndarray,
                        active: Optional[np.ndarray], round_index: int,
                        migrations: int, *, kind: str = "round") -> None:
        """Record one completed round (or, for the native engine, one
        kernel chunk — ``kind="chunk"`` with ``round_index`` = rounds so
        far and ``migrations`` = moves accumulated over the chunk)."""
        if kind == "round" and round_index % self.every != 0:
            return
        potential, cost, live = self._batch_means(game, counts, active)
        event: dict[str, Any] = {
            "event": kind,
            "round": int(round_index),
            "live_replicas": live,
            "migrations": int(migrations),
            "potential_mean": potential,
            "social_cost_mean": cost,
        }
        if self._last_potential is not None:
            event["potential_delta"] = potential - self._last_potential
            event["social_cost_delta"] = cost - self._last_cost
        self._last_potential = potential
        self._last_cost = cost
        self.rounds_emitted += 1
        self._emit(event)

    def chunk_completed(self, game, counts: np.ndarray,
                        active: Optional[np.ndarray], rounds_done: int,
                        migrations: int) -> None:
        """Coarse per-chunk event from the native kernel (the fine-grained
        per-round hook would force sync=1 and deoptimize the hot loop)."""
        self.round_completed(game, counts, active, rounds_done, migrations,
                             kind="chunk")

    def run_finished(self, game, counts: np.ndarray,
                     active: Optional[np.ndarray], *, rounds: int,
                     total_migrations: int, converged: bool) -> None:
        potential, cost, live = self._batch_means(game, counts, active)
        self._emit({
            "event": "run_finished",
            "rounds": int(rounds),
            "live_replicas": live,
            "total_migrations": int(total_migrations),
            "potential_mean": potential,
            "social_cost_mean": cost,
            "converged": bool(converged),
        })

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "RoundTracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
